"""Figure 11: additional space cost and offline preprocessing amortization."""

from __future__ import annotations

from conftest import DATASET_NAMES, dataset, record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.incremental.ingress import IngressEngine
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig
from repro.workloads.updates import random_edge_delta


def test_fig11a_additional_space_cost(benchmark):
    def build_all():
        return {
            name: LayeredGraph.build(make_algorithm("sssp"), dataset(name), LayphConfig())
            for name in DATASET_NAMES
        }

    layered_graphs = run_once(benchmark, build_all)
    rows = []
    for name in DATASET_NAMES:
        graph = dataset(name)
        layered = layered_graphs[name]
        shortcuts = layered.shortcut_count()
        ratio = shortcuts / graph.num_edges()
        rows.append([name, graph.num_edges(), shortcuts, f"{100 * ratio:.1f}%"])
        # The paper reports 0.3%-62% extra space; at this scale the layered
        # graph must at least stay within the same order as the original.
        assert shortcuts < 3 * graph.num_edges()
    table = format_table(
        ["dataset", "edges in original graph", "shortcuts in layered graph", "extra space"],
        rows,
        title="Figure 11a: additional space cost of the layered graph",
    )
    print("\n" + table)
    record("fig11_overheads", table)


def test_fig11b_offline_cost_amortization(benchmark):
    """Cumulative Layph time (offline + incremental runs) vs Ingress."""
    graph = dataset("uk")
    runs = 15

    def measure():
        layph = LayphEngine(make_algorithm("sssp"), LayphConfig())
        layph.initialize(graph)
        ingress = IngressEngine(make_algorithm("sssp"))
        ingress.initialize(graph)
        layph_cumulative = [layph.offline_seconds]
        ingress_cumulative = [0.0]
        current = graph
        for index in range(runs):
            delta = random_edge_delta(current, 5, 5, seed=1000 + index, protect=0)
            layph_result = layph.apply_delta(delta)
            ingress_result = ingress.apply_delta(delta)
            current = delta.apply(current)
            layph_cumulative.append(layph_cumulative[-1] + layph_result.wall_seconds)
            ingress_cumulative.append(ingress_cumulative[-1] + ingress_result.wall_seconds)
        return layph_cumulative, ingress_cumulative

    layph_cumulative, ingress_cumulative = run_once(benchmark, measure)
    rows = [
        [index, f"{layph_cumulative[index] * 1000:.1f} ms", f"{ingress_cumulative[index] * 1000:.1f} ms"]
        for index in range(0, runs + 1, 3)
    ]
    table = format_table(
        ["# incremental runs", "Layph offline + acc. inc.", "Ingress acc. inc."],
        rows,
        title="Figure 11b: offline preprocessing amortization over repeated runs (SSSP on uk)",
    )
    print("\n" + table)
    record("fig11_overheads", table)
    assert len(layph_cumulative) == runs + 1
