"""Figure 11: additional space cost and offline preprocessing amortization.

The PR 10 row extends the overhead accounting to the parallel pipeline: the
persistent slab arenas' shared-memory residency cost — bytes copied for the
one-time full export vs the O(changed) bytes of a steady-state delta patch.
"""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, dataset, record, run_once, weight_only_delta

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.engine.dense_propagation import build_propagation_slab
from repro.graph.csr_cache import CSRCache
from repro.incremental.ingress import IngressEngine
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig
from repro.parallel import shm
from repro.parallel.arena import SlabArenaCache
from repro.workloads.updates import random_edge_delta


def test_fig11a_additional_space_cost(benchmark):
    def build_all():
        return {
            name: LayeredGraph.build(make_algorithm("sssp"), dataset(name), LayphConfig())
            for name in DATASET_NAMES
        }

    layered_graphs = run_once(benchmark, build_all)
    rows = []
    for name in DATASET_NAMES:
        graph = dataset(name)
        layered = layered_graphs[name]
        shortcuts = layered.shortcut_count()
        ratio = shortcuts / graph.num_edges()
        rows.append([name, graph.num_edges(), shortcuts, f"{100 * ratio:.1f}%"])
        # The paper reports 0.3%-62% extra space; at this scale the layered
        # graph must at least stay within the same order as the original.
        assert shortcuts < 3 * graph.num_edges()
    table = format_table(
        ["dataset", "edges in original graph", "shortcuts in layered graph", "extra space"],
        rows,
        title="Figure 11a: additional space cost of the layered graph",
    )
    print("\n" + table)
    record("fig11_overheads", table)


def test_fig11b_offline_cost_amortization(benchmark):
    """Cumulative Layph time (offline + incremental runs) vs Ingress."""
    graph = dataset("uk")
    runs = 15

    def measure():
        layph = LayphEngine(make_algorithm("sssp"), LayphConfig())
        layph.initialize(graph)
        ingress = IngressEngine(make_algorithm("sssp"))
        ingress.initialize(graph)
        layph_cumulative = [layph.offline_seconds]
        ingress_cumulative = [0.0]
        current = graph
        for index in range(runs):
            delta = random_edge_delta(current, 5, 5, seed=1000 + index, protect=0)
            layph_result = layph.apply_delta(delta)
            ingress_result = ingress.apply_delta(delta)
            current = delta.apply(current)
            layph_cumulative.append(layph_cumulative[-1] + layph_result.wall_seconds)
            ingress_cumulative.append(ingress_cumulative[-1] + ingress_result.wall_seconds)
        return layph_cumulative, ingress_cumulative

    layph_cumulative, ingress_cumulative = run_once(benchmark, measure)
    rows = [
        [index, f"{layph_cumulative[index] * 1000:.1f} ms", f"{ingress_cumulative[index] * 1000:.1f} ms"]
        for index in range(0, runs + 1, 3)
    ]
    table = format_table(
        ["# incremental runs", "Layph offline + acc. inc.", "Ingress acc. inc."],
        rows,
        title="Figure 11b: offline preprocessing amortization over repeated runs (SSSP on uk)",
    )
    print("\n" + table)
    record("fig11_overheads", table)
    assert len(layph_cumulative) == runs + 1


def test_fig11c_arena_residency_overhead(benchmark):
    """Shared-memory arena cost per dataset: one full CSR-block export, then
    O(changed) bytes per steady-state weight delta."""
    if not shm.shm_available():
        pytest.skip("shared memory unavailable; serial fallback covered in tests/")
    spec = make_algorithm("sssp", source=0)

    def measure():
        rows = []
        for name in DATASET_NAMES:
            graph = dataset(name)
            cache = CSRCache()
            arena = SlabArenaCache()
            try:
                built = build_propagation_slab(
                    spec, cache.adjacency(spec, graph), {}, {0: 0.0}
                )
                assert built is not None
                assert arena.refs_for(built[0]) is not None
                export_bytes = arena.bytes_copied()
                delta = weight_only_delta(graph, num_changes=4, seed=41)
                new_graph = delta.apply(graph)
                cache.apply_delta(spec, graph, new_graph, delta)
                built = build_propagation_slab(
                    spec, cache.adjacency(spec, new_graph), {}, {0: 0.0}
                )
                assert built is not None
                assert arena.refs_for(built[0]) is not None
                patch_bytes = arena.bytes_copied() - export_bytes
            finally:
                arena.reset()
            rows.append((name, export_bytes, patch_bytes))
        return rows

    rows = run_once(benchmark, measure)
    formatted = []
    for name, export_bytes, patch_bytes in rows:
        # steady-state deltas must ship a small fraction of the full block
        assert patch_bytes < export_bytes / 4, (
            f"{name}: patch shipped {patch_bytes} of {export_bytes} bytes"
        )
        formatted.append(
            [
                name,
                f"{export_bytes}",
                f"{patch_bytes}",
                f"{100 * patch_bytes / export_bytes:.1f}%",
            ]
        )
    table = format_table(
        ["dataset", "full export (bytes)", "per-delta patch (bytes)", "patch/export"],
        formatted,
        title="Figure 11c: persistent arena residency vs per-delta patch bytes (SSSP)",
    )
    print("\n" + table)
    record("fig11_overheads", table)
