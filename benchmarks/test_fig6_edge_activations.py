"""Figure 6: normalized edge activations across datasets and workloads."""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, grid_cell, record, run_once, vertex_update_cell

from repro.bench.reporting import format_table

ALGORITHM_FIGURES = {
    "sssp": "fig6a",
    "bfs": "fig6b",
    "pagerank": "fig6c",
    "php": "fig6d",
}


@pytest.mark.parametrize("algorithm", list(ALGORITHM_FIGURES))
def test_fig6_normalized_edge_activations(benchmark, algorithm):
    def run_row():
        return {name: grid_cell(name, algorithm) for name in DATASET_NAMES}

    cells = run_once(benchmark, run_row)
    engines = sorted(cells[DATASET_NAMES[0]].normalized_activations())
    rows = []
    for name in DATASET_NAMES:
        normalized = cells[name].normalized_activations(baseline="layph")
        rows.append([name] + [f"{normalized[engine]:.2f}" for engine in engines])
    table = format_table(
        ["dataset"] + engines,
        rows,
        title=f"Figure {ALGORITHM_FIGURES[algorithm]}: edge activations normalized to Layph ({algorithm})",
    )
    print("\n" + table)
    record("fig6_edge_activations", table)
    # Shape: on every dataset the memoization engines of the wrong kind
    # (GraphBolt/DZiG for accumulative, KickStarter for selective) activate at
    # least as many edges as Ingress.
    for name in DATASET_NAMES:
        runs = cells[name].by_engine()
        if algorithm in ("pagerank", "php"):
            assert runs["graphbolt"].edge_activations >= runs["ingress"].edge_activations
        else:
            assert runs["kickstarter"].edge_activations >= runs["ingress"].edge_activations


def test_fig6e_pagerank_vertex_updates(benchmark):
    def run_row():
        return {name: vertex_update_cell(name) for name in DATASET_NAMES}

    cells = run_once(benchmark, run_row)
    rows = []
    for name in DATASET_NAMES:
        normalized = cells[name].normalized_activations(baseline="layph")
        rows.append([name, f"{normalized['ingress']:.2f}", f"{normalized['layph']:.2f}"])
    table = format_table(
        ["dataset", "ingress", "layph"],
        rows,
        title="Figure 6e: PageRank vertex updates, activations normalized to Layph",
    )
    print("\n" + table)
    record("fig6_edge_activations", table)
