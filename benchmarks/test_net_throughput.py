"""Network front-end throughput: HTTP loopback ingest vs in-process submit.

The :mod:`repro.service.net` front end puts the streaming service behind a
hand-rolled asyncio HTTP/1.1 server.  This benchmark measures what the wire
costs on top of the WAL'd submit path: the same event stream is ingested
(a) straight through ``UpdateService.submit`` (the PR-8 baseline), (b) over
loopback HTTP one event per request, and (c) over loopback HTTP in grid
batches — then the read path is sampled with ``/value`` round-trips for a
wire-level query p50/p99.  Every HTTP 200 is a durable ack, so the deltas
between rows are pure protocol overhead, not durability shortcuts.
"""

from __future__ import annotations

import asyncio
import tempfile
import time

import pytest

from conftest import dataset, record, run_once

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.service import AsyncServiceClient, UpdateService, serve
from repro.workloads.updates import poisoned_event_stream

NUM_EVENTS = 200
BATCH = 8
QUERY_SAMPLES = 100


def _service(directory):
    graph = dataset("uk")
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    engine.initialize(graph)
    events = list(
        poisoned_event_stream(
            graph, num_events=NUM_EVENTS, seed=11, poison_rate=0.0, protect=0
        )
    )
    service = UpdateService(engine, directory, batch_size=BATCH, max_queue=512)
    return service, events


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _inprocess_row():
    service, events = _service(tempfile.mkdtemp(prefix="net-bench-local-"))
    started = time.perf_counter()
    try:
        for update in events:
            service.submit(update)
        service.drain(timeout=300.0)
        elapsed = time.perf_counter() - started
        latencies = []
        for _ in range(QUERY_SAMPLES):
            t0 = time.perf_counter()
            service.snapshot().value(0)
            latencies.append(time.perf_counter() - t0)
    finally:
        service.close()
    return {
        "path": "in-process",
        "updates_per_s": NUM_EVENTS / elapsed,
        "query_p50_us": _percentile(latencies, 0.50) * 1e6,
        "query_p99_us": _percentile(latencies, 0.99) * 1e6,
    }


async def _wire_rows():
    service, events = _service(tempfile.mkdtemp(prefix="net-bench-wire-"))
    rows = []
    try:
        server = await serve(service, "127.0.0.1", 0)
        client = AsyncServiceClient("127.0.0.1", server.port)
        try:
            half = NUM_EVENTS // 2
            # (b) one event per HTTP request
            started = time.perf_counter()
            for seq, update in enumerate(events[:half], start=1):
                status, _doc = await client.submit(update, seq=seq)
                assert status == 200
            elapsed = time.perf_counter() - started
            rows.append({"path": "HTTP singles", "updates_per_s": half / elapsed})
            # (c) grid-aligned batches per request
            started = time.perf_counter()
            for base in range(half, NUM_EVENTS, BATCH):
                chunk = events[base : base + BATCH]
                status, doc = await client.submit_batch(
                    [(base + i + 1, update) for i, update in enumerate(chunk)]
                )
                assert status == 200 and len(doc["acks"]) == len(chunk)
            elapsed = time.perf_counter() - started
            rows.append(
                {"path": f"HTTP batches of {BATCH}", "updates_per_s": (NUM_EVENTS - half) / elapsed}
            )
            status, _doc = await client.drain(timeout=300.0)
            assert status == 200
            latencies = []
            for _ in range(QUERY_SAMPLES):
                t0 = time.perf_counter()
                status, doc = await client.value(0)
                latencies.append(time.perf_counter() - t0)
                assert status == 200
            for row in rows:
                row["query_p50_us"] = _percentile(latencies, 0.50) * 1e6
                row["query_p99_us"] = _percentile(latencies, 0.99) * 1e6
            status, doc = await client.health()
            assert status == 200 and doc["published_seq"] == NUM_EVENTS
        finally:
            await client.close()
            await server.aclose()
    finally:
        if not service.health()["dead"]:
            service.close()
    return rows


def _run():
    rows = [_inprocess_row()]
    rows.extend(asyncio.run(_wire_rows()))
    return rows


def test_net_throughput(benchmark):
    rows = run_once(benchmark, _run)
    assert len(rows) == 3
    table = format_table(
        ["ingest path", "updates/s", "query p50 (µs)", "query p99 (µs)"],
        [
            [
                row["path"],
                f"{row['updates_per_s']:.0f}",
                f"{row['query_p50_us']:.1f}",
                f"{row['query_p99_us']:.1f}",
            ]
            for row in rows
        ],
        title=(
            "Network front end (kickstarter/sssp on uk): loopback HTTP ingest "
            "and query vs in-process, every 200 a durable WAL'd ack"
        ),
    )
    print("\n" + table)
    record("net_throughput", table)
