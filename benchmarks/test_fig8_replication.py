"""Figure 8: effect of vertex replication on skeleton size and runtime."""

from __future__ import annotations

from conftest import DATASET_NAMES, dataset, edge_delta, record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig
from repro.workloads.datasets import DATASETS


def test_fig8a_graph_and_skeleton_sizes(benchmark):
    def build_all():
        sizes = {}
        for name in DATASET_NAMES:
            graph = dataset(name)
            plain = LayeredGraph.build(
                make_algorithm("sssp"), graph, LayphConfig(enable_replication=False)
            )
            reshaped = LayeredGraph.build(
                make_algorithm("sssp"), graph, LayphConfig(enable_replication=True)
            )
            sizes[name] = (graph, plain, reshaped)
        return sizes

    sizes = run_once(benchmark, build_all)
    rows = []
    for name in DATASET_NAMES:
        graph, plain, reshaped = sizes[name]
        original_links = graph.num_edges()
        plain_links = plain.upper_size()[1]
        reshaped_links = reshaped.upper_size()[1]
        rows.append(
            [
                name,
                original_links,
                plain_links,
                reshaped_links,
                f"{plain_links / original_links:.2f}",
                f"{reshaped_links / original_links:.2f}",
            ]
        )
        # Web-like datasets must shrink; the social-like dataset (wb) has no
        # dense communities, so its skeleton can match the original graph —
        # exactly the regime where the paper reports the smallest gains.
        assert plain_links <= original_links
        if DATASETS[name].kind == "web-like":
            assert plain_links < original_links
        assert reshaped_links <= plain_links
    table = format_table(
        ["dataset", "|E| original", "Lup links", "reshaped Lup links", "Lup/|E|", "reshaped/|E|"],
        rows,
        title="Figure 8a: original graph vs upper layer vs reshaped upper layer",
    )
    print("\n" + table)
    record("fig8_replication", table)


def _runtime_with(name: str, algorithm: str, enable_replication: bool) -> float:
    engine = LayphEngine(
        make_algorithm(algorithm, source=0),
        LayphConfig(enable_replication=enable_replication),
    )
    engine.initialize(dataset(name))
    result = engine.apply_delta(edge_delta(name))
    return result.wall_seconds


def test_fig8b_sssp_runtime_with_and_without_replication(benchmark):
    def run_all():
        return {
            name: (_runtime_with(name, "sssp", False), _runtime_with(name, "sssp", True))
            for name in DATASET_NAMES
        }

    results = run_once(benchmark, run_all)
    rows = [
        [name, f"{without * 1000:.1f} ms", f"{with_ * 1000:.1f} ms"]
        for name, (without, with_) in results.items()
    ]
    table = format_table(
        ["dataset", "Layph w/o replication", "Layph"],
        rows,
        title="Figure 8b: SSSP incremental runtime with and without replication",
    )
    print("\n" + table)
    record("fig8_replication", table)


def test_fig8c_pagerank_runtime_with_and_without_replication(benchmark):
    def run_all():
        return {
            name: (
                _runtime_with(name, "pagerank", False),
                _runtime_with(name, "pagerank", True),
            )
            for name in DATASET_NAMES
        }

    results = run_once(benchmark, run_all)
    rows = [
        [name, f"{without * 1000:.1f} ms", f"{with_ * 1000:.1f} ms"]
        for name, (without, with_) in results.items()
    ]
    table = format_table(
        ["dataset", "Layph w/o replication", "Layph"],
        rows,
        title="Figure 8c: PageRank incremental runtime with and without replication",
    )
    print("\n" + table)
    record("fig8_replication", table)
