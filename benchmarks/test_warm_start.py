"""Warm start from a durable snapshot vs cold batch initialization.

Not a paper figure — this guards the storage subsystem's performance floor:
restoring an engine from its store directory (SQLite edge baseline + ``.npz``
array snapshot, zero deltas to replay) must be at least 3x faster than
running the batch algorithm from scratch on the 10k-vertex / 100k-edge
benchmark graph, for both a BSP engine (GraphBolt/PageRank, whose memo holds
every iteration) and a selective engine (KickStarter/SSSP, whose dependency
forest is the expensive part).  Both legs measure the full kill-to-resumed
wall time from the same store directory: cold reloads the graph from the
SQLite baseline and recomputes, warm additionally loads the array snapshot
and skips the computation entirely.
"""

from __future__ import annotations

import os
import time

from conftest import record, run_once

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import erdos_renyi_graph
from repro.storage.edge_store import DurableEdgeStore
from repro.storage.store import restore_engine

NUM_VERTICES = 10_000
NUM_EDGES = 100_000
SEED = 42
COMBOS = (("graphbolt", "pagerank"), ("kickstarter", "sssp"))
REQUIRED_SPEEDUP = 3.0


def _spec(algorithm: str):
    return make_algorithm(algorithm, source=0)


def test_warm_start_speedup(benchmark, tmp_path):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)

    def run_grid():
        cells = {}
        for engine_name, algorithm in COMBOS:
            seed_engine = build_engine(engine_name, _spec(algorithm))
            seed_engine.initialize(graph)
            store_dir = str(tmp_path / f"{engine_name}-{algorithm}")
            seed_engine.save(store_dir)

            # cold recovery: reload the edge baseline, recompute from scratch
            start = time.perf_counter()
            edge_store = DurableEdgeStore(os.path.join(store_dir, "graph.db"))
            reloaded, _last_seq = edge_store.load_baseline()
            edge_store.close()
            cold_engine = build_engine(engine_name, _spec(algorithm))
            cold_engine.initialize(reloaded)
            cold_seconds = time.perf_counter() - start

            # warm recovery: snapshot restore, zero recomputation
            start = time.perf_counter()
            warm_engine, report = restore_engine(store_dir)
            warm_seconds = time.perf_counter() - start

            assert report.warm, report.reason
            assert report.replayed_deltas == 0
            assert warm_engine.states == seed_engine.states
            assert warm_engine.states == cold_engine.states
            cells[(engine_name, algorithm)] = (cold_seconds, warm_seconds)
        return cells

    cells = run_once(benchmark, run_grid)

    rows = []
    for (engine_name, algorithm), (cold_seconds, warm_seconds) in cells.items():
        speedup = cold_seconds / max(warm_seconds, 1e-9)
        rows.append(
            [
                engine_name,
                algorithm,
                f"{cold_seconds:.3f}",
                f"{warm_seconds:.3f}",
                f"{speedup:.1f}x",
            ]
        )

    table = format_table(
        ["engine", "algorithm", "cold init (s)", "warm restore (s)", "speedup"],
        rows,
        title=(
            f"Warm start vs cold init on G({NUM_VERTICES} vertices, "
            f"{NUM_EDGES} edges)"
        ),
    )
    print("\n" + table)
    record("warm_start", table)

    for (engine_name, algorithm), (cold_seconds, warm_seconds) in cells.items():
        assert cold_seconds / max(warm_seconds, 1e-9) >= REQUIRED_SPEEDUP, (
            f"{engine_name}/{algorithm}: warm restore must be at least "
            f"{REQUIRED_SPEEDUP}x faster than cold init "
            f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
        )
