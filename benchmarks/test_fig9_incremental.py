"""Figure 9 (incremental leg): persistent arenas amortize the parallel deltas.

PR 6 made single propagate calls scale across workers, but every call paid an
O(E) shared-memory export of the read-only CSR block — exactly the per-delta
cost the serial path spent the incremental arc eliminating.  This leg drives
the *same* 20-delta weight-update sequence through the pooled backend twice:

* **export-per-call** — the pre-arena behaviour (``shm.share_many`` + segment
  unlink per call), and
* **arena-patched** — the persistent :class:`~repro.parallel.arena.
  SlabArenaCache` path (one export, then O(changed)-byte in-place patches).

Both runs are asserted bitwise-identical to a serial reference in the same
run; the benchmark compares the block-serving overhead (the component the
arena changes) and the bytes shipped, asserting the arena is at least 2x
cheaper on machines with >= 4 CPUs (below that the floor self-skips but all
correctness assertions still run).
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import record, weight_only_delta

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.engine.dense_propagation import build_propagation_slab
from repro.engine.parallel_propagation import _pooled_gather
from repro.engine.runner import run_batch
from repro.graph.csr_cache import CSRCache
from repro.graph.generators import community_graph
from repro.parallel import shm
from repro.parallel.arena import SlabArenaCache
from repro.parallel.cost_model import ParallelCostModel
from repro.parallel.executor import POOL_STATS, get_pool, shutdown_pools
from repro.parallel.slabs import run_propagation

NUM_DELTAS = 20
CHANGES_PER_DELTA = 4
WORKERS = 2
REPEATS = 3
SPEEDUP_FLOOR = 2.0


def _incremental_graph():
    return community_graph(
        num_communities=12,
        community_size_range=(60, 80),
        intra_edge_probability=0.25,
        inter_edges_per_community=5,
        weighted=True,
        seed=23,
    )


def _run_sequence(spec, base_graph, states, pool):
    """One full 20-delta pass through both pooled legs; returns the serving
    times and bytes shipped (correctness asserted inside)."""
    graph = base_graph
    csr_cache = CSRCache()
    arena_cache = SlabArenaCache()
    POOL_STATS.reset()

    serve_export = 0.0
    serve_arena = 0.0
    export_bytes = 0
    try:
        for step in range(NUM_DELTAS):
            delta = weight_only_delta(graph, CHANGES_PER_DELTA, seed=3000 + step)
            new_graph = delta.apply(graph)
            csr_cache.apply_delta(spec, graph, new_graph, delta)
            graph = new_graph
            # Per-delta revision messages: the new offers along changed edges.
            pending = {}
            for update in delta.edge_updates:
                source_state = states.get(update.source)
                if source_state is not None and source_state != float("inf"):
                    offered = spec.combine(source_state, update.weight)
                    pending[update.target] = min(
                        pending.get(update.target, float("inf")), offered
                    )
            if not pending:
                pending = {0: 0.0}

            def build():
                built = build_propagation_slab(
                    spec, csr_cache.adjacency(spec, graph), dict(states), dict(pending)
                )
                assert built is not None
                return built[0]

            # Serial reference, then the two pooled legs over identical slabs.
            serial_slab = build()
            run_propagation(serial_slab, None)

            arena_slab = build()
            start = time.perf_counter()
            refs = arena_cache.refs_for(arena_slab)
            serve_arena += time.perf_counter() - start
            assert refs is not None, "cache-served snapshot was not arena-keyed"
            run_propagation(
                arena_slab, None, gather=_pooled_gather(pool, refs, 0)
            )

            export_slab = build()
            arrays = [export_slab.targets, export_slab.factors, export_slab.absorb]
            start = time.perf_counter()
            shared, ref_list = shm.share_many(arrays)
            serve_export += time.perf_counter() - start
            export_bytes += sum(array.nbytes for array in arrays)
            export_refs = dict(zip(["targets", "factors", "absorb"], ref_list))
            try:
                run_propagation(
                    export_slab, None, gather=_pooled_gather(pool, export_refs, 0)
                )
            finally:
                start = time.perf_counter()
                shared.close()
                serve_export += time.perf_counter() - start

            for pooled in (arena_slab, export_slab):
                assert pooled.state.tobytes() == serial_slab.state.tobytes(), (
                    f"pooled states diverged from serial at delta {step}"
                )
                assert pooled.pending.tobytes() == serial_slab.pending.tobytes()

        # The steady state must be one export then patches all the way.
        assert POOL_STATS.arena_misses == 1
        assert POOL_STATS.arena_patches == NUM_DELTAS - 1
        arena_bytes = arena_cache.bytes_copied()
    finally:
        arena_cache.reset()
    return serve_export, serve_arena, export_bytes, arena_bytes


def test_fig9_incremental_arena_amortization():
    if not shm.shm_available():
        pytest.skip("shared memory unavailable; serial fallback covered in tests/")
    spec = make_algorithm("sssp", source=0)
    base_graph = _incremental_graph()
    states = dict(run_batch(spec, base_graph, backend="numpy").states)
    pool = get_pool(WORKERS)
    try:
        runs = [
            _run_sequence(spec, base_graph, states, pool) for _ in range(REPEATS)
        ]
    finally:
        shutdown_pools()
    serve_export = min(run[0] for run in runs)
    serve_arena = min(run[1] for run in runs)
    export_bytes, arena_bytes = runs[0][2], runs[0][3]

    speedup = serve_export / serve_arena if serve_arena > 0 else float("inf")
    # The cost model's serving term over the same block size and patched-byte
    # trail: an asymptotic (large-block) bound, since the model charges byte
    # shipping and segment churn but not interpreter bookkeeping.
    model = ParallelCostModel()
    block_bytes = export_bytes // NUM_DELTAS
    patch_trail = [
        (arena_bytes - block_bytes) // max(NUM_DELTAS - 1, 1)
    ] * (NUM_DELTAS - 1)
    predicted = model.export_per_call_serving(
        block_bytes, NUM_DELTAS
    ) / model.arena_serving(block_bytes, patch_trail)
    table = format_table(
        ["block serving", "total ms", "bytes shipped", "speedup", "model bound"],
        [
            ["export-per-call", f"{serve_export * 1e3:.2f}", f"{export_bytes}", "", ""],
            [
                "arena-patched",
                f"{serve_arena * 1e3:.2f}",
                f"{arena_bytes}",
                f"{speedup:.1f}x",
                f"{predicted:.1f}x",
            ],
        ],
        title=(
            f"Figure 9 (incremental): CSR-block serving over {NUM_DELTAS} "
            f"weight deltas, {WORKERS} workers ({os.cpu_count()} CPUs)"
        ),
    )
    print("\n" + table)
    record("fig9_incremental_scaling", table)

    assert arena_bytes < export_bytes / 4, (
        "arena patches shipped more than a quarter of the export bytes"
    )
    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert speedup >= SPEEDUP_FLOOR, (
            f"arena-patched serving only {speedup:.2f}x over export-per-call "
            f"on a {cpus}-CPU machine"
        )
