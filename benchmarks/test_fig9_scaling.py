"""Figure 9: thread scaling (simulated parallel cost model), 1 to 32 workers.

The paper measures wall-clock scaling on real threads; this reproduction
replays each engine's recorded per-superstep work through the deterministic
cost model of :mod:`repro.parallel` (see DESIGN.md for the substitution
argument).  The expected shape: every engine improves with more workers, the
curves flatten beyond ~8 workers, and Layph benefits the most because its
per-subgraph phases are embarrassingly parallel.
"""

from __future__ import annotations

import pytest

from conftest import dataset, edge_delta, record, run_once

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.parallel.cost_model import simulated_runtime

WORKER_COUNTS = [1, 2, 4, 8, 16, 32]


def _scaling_rows(algorithm: str, engines):
    graph = dataset("uk")
    delta = edge_delta("uk")
    rows = []
    for engine_name in engines:
        engine = build_engine(engine_name, make_algorithm(algorithm, source=0))
        engine.initialize(graph)
        result = engine.apply_delta(delta)
        independent_units = 1
        if engine_name == "layph":
            independent_units = max(len(engine.layered.subgraphs) // 4, 1)
        times = [
            simulated_runtime(result.metrics, workers, independent_units=independent_units)
            for workers in WORKER_COUNTS
        ]
        rows.append([engine_name] + [f"{t:.0f}" for t in times] + [f"{times[0] / times[-1]:.1f}x"])
    return rows


@pytest.mark.parametrize(
    "algorithm,engines",
    [
        ("sssp", ["kickstarter", "risgraph", "ingress", "layph"]),
        ("pagerank", ["graphbolt", "dzig", "ingress", "layph"]),
    ],
)
def test_fig9_thread_scaling(benchmark, algorithm, engines):
    rows = run_once(benchmark, _scaling_rows, algorithm, engines)
    table = format_table(
        ["system"] + [f"{w} workers" for w in WORKER_COUNTS] + ["speedup 1->32"],
        rows,
        title=f"Figure 9 ({algorithm} on uk): simulated cost-model runtime vs workers",
    )
    print("\n" + table)
    record("fig9_scaling", table)
    for row in rows:
        times = [float(value) for value in row[1:-1]]
        assert times[-1] <= times[0]
