"""Figure 9: worker scaling — measured wall clock plus the cost-model curves.

The paper measures wall-clock scaling on real threads.  Since PR 6 the
reproduction has real process parallelism for the embarrassingly parallel
phase Figure 9 credits for Layph's scaling — the per-subgraph local uploads —
so this module now *measures* that phase across the shared-memory worker
pool: the same upload slabs are run serially and dispatched to 1/2/4-worker
pools, the resulting states are asserted bitwise identical, and the measured
speedups are recorded next to the deterministic cost model's prediction
(predicted-vs-actual).  The ≥1.5x floor at 4 workers only applies on
machines with at least 4 CPUs; on smaller runners the correctness assertions
still run.

The original cost-model sweep over every engine (1 to 32 simulated workers)
is retained below — it covers the engines whose propagation is *not*
decomposable into independent units, which the process pool does not help.
"""

from __future__ import annotations

import math
import os
import time
from dataclasses import replace
from typing import List

import numpy as np
import pytest

from conftest import dataset, edge_delta, record, run_once

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.engine.metrics import ExecutionMetrics
from repro.layph.parallel_phases import _UPLOAD_FIELDS
from repro.parallel import shm
from repro.parallel.cost_model import simulated_runtime
from repro.parallel.executor import get_pool, shutdown_pools
from repro.parallel.slabs import PropagationSlab, run_upload

WORKER_COUNTS = [1, 2, 4, 8, 16, 32]

#: measured-phase workload shape: NUM_SLABS independent "subgraphs", each a
#: layered DAG so the upload runs LAYERS supersteps of WIDTH*FANOUT edges
NUM_SLABS = 8
LAYERS = 30
WIDTH = 150
FANOUT = 12
MEASURED_WORKERS = [1, 2, 4]
REPEATS = 3
SPEEDUP_FLOOR = 1.5


def _layered_slab(seed: int) -> PropagationSlab:
    """One synthetic per-subgraph upload slab (selective min/+, all internal)."""
    rng = np.random.default_rng(seed)
    n = LAYERS * WIDTH
    interior = (LAYERS - 1) * WIDTH
    counts = np.zeros(n, dtype=np.int64)
    counts[:interior] = FANOUT
    offsets = np.zeros(n, dtype=np.int64)
    offsets[1:] = np.cumsum(counts)[:-1]
    total = interior * FANOUT
    sources = np.repeat(np.arange(interior, dtype=np.int64), FANOUT)
    layer_of = sources // WIDTH
    targets = (layer_of + 1) * WIDTH + rng.integers(0, WIDTH, size=total)
    factors = rng.uniform(0.5, 2.0, size=total)
    pending = np.full(n, math.inf)
    pending[:WIDTH] = rng.uniform(0.0, 1.0, size=WIDTH)
    return PropagationSlab(
        offsets=offsets,
        targets=targets,
        factors=factors,
        out_degree=counts,
        state=np.full(n, math.inf),
        pending=pending,
        in_dict=np.isfinite(pending),
        state_touched=np.zeros(n, dtype=bool),
        absorb=np.zeros(n, dtype=bool),
        boundary=np.zeros(n, dtype=bool),
        arrived=np.full(n, math.inf),
        arrived_touched=np.zeros(n, dtype=bool),
        selective=True,
        combine_add=True,
        identity=math.inf,
        tolerance=0.0,
    )


def _fresh_slabs() -> List[PropagationSlab]:
    return [_layered_slab(seed) for seed in range(NUM_SLABS)]


def _copy_slab(slab: PropagationSlab) -> PropagationSlab:
    return replace(
        slab,
        state=slab.state.copy(),
        pending=slab.pending.copy(),
        in_dict=slab.in_dict.copy(),
        state_touched=slab.state_touched.copy(),
        arrived=slab.arrived.copy(),
        arrived_touched=slab.arrived_touched.copy(),
    )


def _run_serial(slabs: List[PropagationSlab], metrics: ExecutionMetrics) -> float:
    start = time.perf_counter()
    for slab in slabs:
        for activations, active, _updates in run_upload(slab, max_rounds=10_000):
            metrics.record_round(activations, active)
    return time.perf_counter() - start


def _run_pooled(slabs: List[PropagationSlab], workers: int) -> float:
    """Export the slabs, dispatch the upload tasks, merge — the full phase."""
    pool = get_pool(workers)
    arrays = []
    for slab in slabs:
        arrays.extend(getattr(slab, field) for field in _UPLOAD_FIELDS)
    start = time.perf_counter()
    arena, refs = shm.share_many(arrays)
    try:
        tasks = []
        costs = []
        for position, slab in enumerate(slabs):
            base = position * len(_UPLOAD_FIELDS)
            payload = {
                field: refs[base + offset]
                for offset, field in enumerate(_UPLOAD_FIELDS)
            }
            payload.update(
                allowed=None,
                selective=slab.selective,
                combine_add=slab.combine_add,
                identity=slab.identity,
                tolerance=slab.tolerance,
                max_rounds=10_000,
            )
            tasks.append(("upload", payload))
            costs.append(float(slab.targets.size + slab.state.size))
        pool.run(tasks, costs)
        for position, slab in enumerate(slabs):
            base = position * len(_UPLOAD_FIELDS)
            slab.state[:] = arena.view(base + _UPLOAD_FIELDS.index("state"))
        return time.perf_counter() - start
    finally:
        arena.close()


def test_fig9_measured_upload_scaling():
    if not shm.shm_available():
        pytest.skip("shared memory unavailable; serial fallback covered in tests/")
    baseline = _fresh_slabs()
    serial_metrics = ExecutionMetrics()
    serial_times = []
    serial_slabs = None
    for attempt in range(REPEATS):
        serial_slabs = [_copy_slab(slab) for slab in baseline]
        serial_times.append(
            _run_serial(
                serial_slabs,
                serial_metrics if attempt == 0 else ExecutionMetrics(),
            )
        )
    serial_time = min(serial_times)

    rows = []
    measured = {}
    try:
        for workers in MEASURED_WORKERS:
            times = []
            pooled_slabs = None
            for _ in range(REPEATS):
                pooled_slabs = [_copy_slab(slab) for slab in baseline]
                times.append(_run_pooled(pooled_slabs, workers))
            # correctness first: the pooled phase must be bitwise serial
            for pooled, serial in zip(pooled_slabs, serial_slabs):
                assert np.array_equal(pooled.state, serial.state)
            elapsed = min(times)
            measured[workers] = serial_time / elapsed
            predicted = simulated_runtime(
                serial_metrics, 1, independent_units=NUM_SLABS
            ) / simulated_runtime(
                serial_metrics, workers, independent_units=NUM_SLABS
            )
            rows.append(
                [
                    str(workers),
                    f"{serial_time * 1e3:.1f}",
                    f"{elapsed * 1e3:.1f}",
                    f"{measured[workers]:.2f}x",
                    f"{predicted:.2f}x",
                ]
            )
    finally:
        shutdown_pools()

    table = format_table(
        ["workers", "serial ms", "pooled ms", "measured speedup", "predicted speedup"],
        rows,
        title=(
            f"Figure 9 (measured): Layph per-subgraph upload phase, "
            f"{NUM_SLABS} subgraphs x {LAYERS} rounds ({os.cpu_count()} CPUs)"
        ),
    )
    print("\n" + table)
    record("fig9_measured_scaling", table)

    cpus = os.cpu_count() or 1
    if cpus >= 4:
        assert measured[4] >= SPEEDUP_FLOOR, (
            f"4-worker upload phase speedup {measured[4]:.2f}x below "
            f"{SPEEDUP_FLOOR}x on a {cpus}-CPU machine"
        )


def _scaling_rows(algorithm: str, engines):
    graph = dataset("uk")
    delta = edge_delta("uk")
    rows = []
    for engine_name in engines:
        engine = build_engine(engine_name, make_algorithm(algorithm, source=0))
        engine.initialize(graph)
        result = engine.apply_delta(delta)
        independent_units = 1
        if engine_name == "layph":
            independent_units = max(len(engine.layered.subgraphs) // 4, 1)
        times = [
            simulated_runtime(result.metrics, workers, independent_units=independent_units)
            for workers in WORKER_COUNTS
        ]
        rows.append([engine_name] + [f"{t:.0f}" for t in times] + [f"{times[0] / times[-1]:.1f}x"])
    return rows


@pytest.mark.parametrize(
    "algorithm,engines",
    [
        ("sssp", ["kickstarter", "risgraph", "ingress", "layph"]),
        ("pagerank", ["graphbolt", "dzig", "ingress", "layph"]),
    ],
)
def test_fig9_thread_scaling(benchmark, algorithm, engines):
    rows = run_once(benchmark, _scaling_rows, algorithm, engines)
    table = format_table(
        ["system"] + [f"{w} workers" for w in WORKER_COUNTS] + ["speedup 1->32"],
        rows,
        title=f"Figure 9 ({algorithm} on uk): simulated cost-model runtime vs workers",
    )
    print("\n" + table)
    record("fig9_scaling", table)
    for row in rows:
        times = [float(value) for value in row[1:-1]]
        assert times[-1] <= times[0]
