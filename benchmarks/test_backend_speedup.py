"""Backend speedup: vectorized CSR propagation vs the pure-Python loop.

Not a paper figure — this guards the repository's own performance floor: the
``"numpy"`` backend must stay metric-compatible with the reference Python
loop (identical states, rounds and edge activations, which is what keeps
Figures 1/6 backend-independent) while being at least 3x faster on a
10k-vertex / 100k-edge PageRank batch run.
"""

from __future__ import annotations

import time

import pytest

from conftest import record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.engine.runner import run_batch
from repro.graph.generators import erdos_renyi_graph

NUM_VERTICES = 10_000
NUM_EDGES = 100_000
SEED = 42
ALGORITHMS = ("pagerank", "sssp")
REQUIRED_PAGERANK_SPEEDUP = 3.0


def _timed_batch(algorithm: str, graph, backend: str):
    spec = make_algorithm(algorithm, source=0)
    start = time.perf_counter()
    result = run_batch(spec, graph, backend=backend)
    return result, time.perf_counter() - start


def test_backend_speedup(benchmark):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)

    def run_grid():
        cells = {}
        for algorithm in ALGORITHMS:
            python_result, python_seconds = _timed_batch(algorithm, graph, "python")
            numpy_result, numpy_seconds = _timed_batch(algorithm, graph, "numpy")
            cells[algorithm] = (python_result, python_seconds, numpy_result, numpy_seconds)
        return cells

    cells = run_once(benchmark, run_grid)

    rows = []
    for algorithm in ALGORITHMS:
        python_result, python_seconds, numpy_result, numpy_seconds = cells[algorithm]
        speedup = python_seconds / max(numpy_seconds, 1e-9)
        rows.append(
            [
                algorithm,
                f"{python_seconds:.3f}",
                f"{numpy_seconds:.3f}",
                f"{speedup:.1f}x",
                str(python_result.metrics.iterations),
                str(python_result.metrics.edge_activations),
            ]
        )

        # Metric compatibility: the backends must be interchangeable.
        assert set(python_result.states) == set(numpy_result.states)
        assert all(
            python_result.states[v] == numpy_result.states[v]
            or abs(python_result.states[v] - numpy_result.states[v]) <= 1e-9
            for v in python_result.states
        )
        assert python_result.metrics.iterations == numpy_result.metrics.iterations
        assert (
            python_result.metrics.edge_activations
            == numpy_result.metrics.edge_activations
        )

    table = format_table(
        ["algorithm", "python (s)", "numpy (s)", "speedup", "rounds", "activations"],
        rows,
        title=(
            f"Backend speedup: batch run on G({NUM_VERTICES} vertices, "
            f"{NUM_EDGES} edges)"
        ),
    )
    print("\n" + table)
    record("backend_speedup", table)

    _, python_seconds, _, numpy_seconds = cells["pagerank"]
    assert python_seconds / max(numpy_seconds, 1e-9) >= REQUIRED_PAGERANK_SPEEDUP, (
        f"numpy backend must be at least {REQUIRED_PAGERANK_SPEEDUP}x faster than "
        f"the Python loop on the PageRank batch run "
        f"(python {python_seconds:.3f}s, numpy {numpy_seconds:.3f}s)"
    )
