"""Table I: dataset statistics (synthetic substitutes for UK/IT/SK/WB)."""

from __future__ import annotations

from conftest import DATASET_NAMES, dataset, record, run_once

from repro.bench.reporting import format_table
from repro.workloads.datasets import DATASETS


def test_table1_dataset_statistics(benchmark):
    rows = []

    def build_all():
        return {name: dataset(name) for name in DATASET_NAMES}

    graphs = run_once(benchmark, build_all)
    for name in DATASET_NAMES:
        graph = graphs[name]
        spec = DATASETS[name]
        rows.append(
            [name, spec.paper_name, spec.kind, graph.num_vertices(), graph.num_edges()]
        )
        assert graph.num_vertices() > 0
        assert graph.num_edges() > graph.num_vertices()
    table = format_table(
        ["dataset", "stands in for", "kind", "vertices", "edges"],
        rows,
        title="Table I substitute: dataset statistics",
    )
    print("\n" + table)
    record("table1_datasets", table)
