"""Figure 5: normalized response time across datasets and workloads."""

from __future__ import annotations

import pytest

from conftest import DATASET_NAMES, grid_cell, record, run_once, vertex_update_cell

from repro.bench.reporting import format_table

ALGORITHM_FIGURES = {
    "sssp": "fig5a",
    "bfs": "fig5b",
    "pagerank": "fig5c",
    "php": "fig5d",
}


@pytest.mark.parametrize("algorithm", list(ALGORITHM_FIGURES))
def test_fig5_normalized_response_time(benchmark, algorithm):
    def run_row():
        return {name: grid_cell(name, algorithm) for name in DATASET_NAMES}

    cells = run_once(benchmark, run_row)
    rows = []
    for name in DATASET_NAMES:
        normalized = cells[name].normalized_time(baseline="layph")
        rows.append(
            [name]
            + [f"{normalized[engine]:.2f}" for engine in sorted(normalized)]
        )
    engines = sorted(cells[DATASET_NAMES[0]].normalized_time())
    table = format_table(
        ["dataset"] + engines,
        rows,
        title=f"Figure {ALGORITHM_FIGURES[algorithm]}: response time normalized to Layph ({algorithm})",
    )
    print("\n" + table)
    record("fig5_response_time", table)
    for name in DATASET_NAMES:
        runs = cells[name].by_engine()
        assert runs["restart"].wall_seconds > 0


def test_fig5e_pagerank_vertex_updates(benchmark):
    def run_row():
        return {name: vertex_update_cell(name) for name in DATASET_NAMES}

    cells = run_once(benchmark, run_row)
    rows = []
    for name in DATASET_NAMES:
        normalized = cells[name].normalized_time(baseline="layph")
        rows.append([name, f"{normalized['ingress']:.2f}", f"{normalized['layph']:.2f}"])
    table = format_table(
        ["dataset", "ingress", "layph"],
        rows,
        title="Figure 5e: PageRank vertex updates, response time normalized to Layph",
    )
    print("\n" + table)
    record("fig5_response_time", table)
