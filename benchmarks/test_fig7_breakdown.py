"""Figure 7: Layph runtime breakdown into its four online phases."""

from __future__ import annotations

import pytest

from conftest import dataset, edge_delta, record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.layph.engine import (
    PHASE_ASSIGN,
    PHASE_UPDATE,
    PHASE_UPLOAD,
    PHASE_UPPER,
    LayphEngine,
)

PHASES = [PHASE_UPDATE, PHASE_UPLOAD, PHASE_UPPER, PHASE_ASSIGN]


@pytest.mark.parametrize("algorithm", ["sssp", "bfs", "pagerank", "php"])
def test_fig7_runtime_breakdown(benchmark, algorithm):
    graph = dataset("uk")
    delta = edge_delta("uk")
    engine = LayphEngine(make_algorithm(algorithm, source=0))
    engine.initialize(graph)

    result = run_once(benchmark, engine.apply_delta, delta)
    phases = result.phases.as_dict()
    total = sum(phases.get(phase, 0.0) for phase in PHASES) or 1.0
    rows = [
        [phase, f"{phases.get(phase, 0.0) * 1000:.2f} ms", f"{100 * phases.get(phase, 0.0) / total:.1f}%"]
        for phase in PHASES
    ]
    table = format_table(
        ["phase", "time", "share"],
        rows,
        title=f"Figure 7: Layph runtime breakdown on uk ({algorithm})",
    )
    print("\n" + table)
    record("fig7_breakdown", table)
    assert all(phase in phases for phase in PHASES)
