"""Refinement speedup: dense memo table vs the dict-backed iteration store.

Not a paper figure — this guards the performance floor of the dense
memoized-iteration store (``repro.incremental.memo``): a fig5-style sequence
of 20 small PageRank deltas processed by GraphBolt and DZiG on the numpy
backend must run its *refinement phase* at least 3x faster with the dense
``MemoTable`` (matrix-row gather/scatter) than with the PR 2 dict path
(``REPRO_MEMO_DENSE=0``: per-superstep ``dict(zip(...))`` materialisation and
``np.fromiter`` pulls over dicts) — while producing bitwise-identical states,
rounds, edge activations and memoized iterations.
"""

from __future__ import annotations

import os
import time

from conftest import record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.engine.backends import MEMO_DENSE_ENV_VAR
from repro.graph.generators import erdos_renyi_graph
from repro.incremental import make_engine
from repro.workloads.updates import random_edge_delta

NUM_VERTICES = 10_000
NUM_EDGES = 100_000
NUM_DELTAS = 20
DELTA_ADDITIONS = 5
DELTA_DELETIONS = 5
SEED = 42
ALGORITHM = "pagerank"
ENGINES = ("graphbolt", "dzig")
REFINEMENT_PHASE = {
    "graphbolt": "dependency refinement",
    "dzig": "sparsity-aware refinement",
}
REQUIRED_SPEEDUP = 3.0


def _delta_sequence(graph):
    deltas = []
    current = graph.copy()
    for seed in range(NUM_DELTAS):
        delta = random_edge_delta(
            current, DELTA_ADDITIONS, DELTA_DELETIONS, seed=seed, protect=0
        )
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


def _run_sequence(engine_name, graph, deltas, dense: bool):
    previous = os.environ.get(MEMO_DENSE_ENV_VAR)
    os.environ[MEMO_DENSE_ENV_VAR] = "1" if dense else "0"
    try:
        engine = make_engine(engine_name, make_algorithm(ALGORITHM), backend="numpy")
        engine.initialize(graph.copy())
        assert (engine.memo is not None) == dense
        refinement_seconds = 0.0
        total_start = time.perf_counter()
        states, activations, rounds = [], 0, 0
        for delta in deltas:
            result = engine.apply_delta(delta)
            refinement_seconds += result.phases.elapsed(REFINEMENT_PHASE[engine_name])
            states.append(result.states)
            activations += result.metrics.edge_activations
            rounds += result.metrics.iterations
        total_seconds = time.perf_counter() - total_start
        return {
            "states": states,
            "activations": activations,
            "rounds": rounds,
            "refinement_seconds": refinement_seconds,
            "total_seconds": total_seconds,
            "iterations": engine.iterations,
        }
    finally:
        if previous is None:
            del os.environ[MEMO_DENSE_ENV_VAR]
        else:
            os.environ[MEMO_DENSE_ENV_VAR] = previous


def test_refinement_speedup(benchmark):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)
    deltas = _delta_sequence(graph)

    def run_all():
        return {
            engine_name: {
                "dense": _run_sequence(engine_name, graph, deltas, dense=True),
                "dict": _run_sequence(engine_name, graph, deltas, dense=False),
            }
            for engine_name in ENGINES
        }

    outcomes = run_once(benchmark, run_all)

    rows = []
    speedups = {}
    for engine_name in ENGINES:
        dense = outcomes[engine_name]["dense"]
        dict_store = outcomes[engine_name]["dict"]
        # The dense store must be a pure performance layer: bitwise-identical
        # per-delta states, aggregate rounds/activations, and memoized
        # iterations.
        assert dense["states"] == dict_store["states"]
        assert dense["activations"] == dict_store["activations"]
        assert dense["rounds"] == dict_store["rounds"]
        assert dense["iterations"] == dict_store["iterations"]
        speedup = dict_store["refinement_seconds"] / max(
            dense["refinement_seconds"], 1e-9
        )
        speedups[engine_name] = speedup
        for label, outcome, shown in (
            ("dict store (REPRO_MEMO_DENSE=0)", dict_store, "1.0x"),
            ("dense memo table", dense, f"{speedup:.1f}x"),
        ):
            rows.append(
                [
                    f"{engine_name}: {label}",
                    f"{outcome['refinement_seconds']:.3f}",
                    f"{outcome['total_seconds']:.3f}",
                    str(outcome["activations"]),
                    shown,
                ]
            )

    table = format_table(
        ["engine / iteration store", "refinement (s)", "sequence (s)", "activations", "speedup"],
        rows,
        title=(
            f"Dense memo table: {NUM_DELTAS}-delta {ALGORITHM} sequence on "
            f"G({NUM_VERTICES} vertices, {NUM_EDGES} edges), numpy backend"
        ),
    )
    print("\n" + table)
    record("refinement_speedup", table)

    for engine_name, speedup in speedups.items():
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{engine_name}: dense memo table must speed up the refinement "
            f"phase by at least {REQUIRED_SPEEDUP}x over the dict store "
            f"(got {speedup:.2f}x)"
        )
