"""Shared machinery for the figure-regeneration benchmarks.

Every module under ``benchmarks/`` regenerates one table or figure of the
paper: it runs the relevant engines through :mod:`repro.bench.harness`,
prints the series as a text table, appends it to
``benchmarks/results/<name>.txt``, and exposes a pytest-benchmark measurement
of the Layph engine so ``pytest benchmarks/ --benchmark-only`` reports timings
for every experiment.
"""

from __future__ import annotations

import functools
import random
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

from repro.bench.harness import ExperimentResult, compare_engines, engines_for
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import random_edge_delta, random_vertex_delta

RESULTS_DIR = Path(__file__).parent / "results"

#: default ΔG size used by the figure benchmarks (the paper uses 5,000 unit
#: updates on graphs of ~10^9 edges; the substitutes keep the same "tiny
#: relative to the graph" regime on graphs of a few thousand edges)
DEFAULT_ADDITIONS = 5
DEFAULT_DELETIONS = 5

ALGORITHMS = ("sssp", "bfs", "pagerank", "php")
DATASET_NAMES = ("uk", "it", "sk", "wb")


def record(name: str, text: str) -> None:
    """Append a rendered table to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(text.rstrip("\n") + "\n\n")


@functools.lru_cache(maxsize=None)
def dataset(name: str) -> Graph:
    """Cached Table I dataset substitute."""
    return DATASETS[name].build()


@functools.lru_cache(maxsize=None)
def edge_delta(name: str, additions: int = DEFAULT_ADDITIONS, deletions: int = DEFAULT_DELETIONS, seed: int = 7) -> GraphDelta:
    """Cached random edge ΔG for one dataset."""
    return random_edge_delta(
        dataset(name), num_additions=additions, num_deletions=deletions, seed=seed, protect=0
    )


def weight_only_delta(graph: Graph, num_changes: int = 4, seed: int = 7) -> GraphDelta:
    """Reweight ``num_changes`` existing edges of ``graph``.

    The vertex id space is unchanged, so the CSR cache patches the snapshot
    forward with a ``same_ids`` note — the steady state the persistent slab
    arenas (PR 10) patch in place instead of re-exporting.
    """
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    delta = GraphDelta()
    for source, target, weight in edges[:num_changes]:
        delta.delete_edge(source, target)
        delta.add_edge(source, target, round(float(weight) + rng.uniform(0.1, 2.0), 3))
    return delta


@functools.lru_cache(maxsize=None)
def vertex_delta(name: str, additions: int = 3, deletions: int = 3, seed: int = 13) -> GraphDelta:
    """Cached random vertex ΔG for one dataset."""
    return random_vertex_delta(
        dataset(name), num_additions=additions, num_deletions=deletions, seed=seed, protect=0
    )


@functools.lru_cache(maxsize=None)
def grid_cell(dataset_name: str, algorithm: str) -> ExperimentResult:
    """One cell of the Figures 5/6 grid (all applicable engines, one ΔG)."""
    graph = dataset(dataset_name)
    delta = edge_delta(dataset_name)
    return compare_engines(
        algorithm,
        graph,
        [delta],
        dataset=dataset_name,
        check_correctness=False,
    )


@functools.lru_cache(maxsize=None)
def vertex_update_cell(dataset_name: str) -> ExperimentResult:
    """The PageRank vertex-update cell (Figures 5e/6e)."""
    graph = dataset(dataset_name)
    delta = vertex_delta(dataset_name)
    return compare_engines(
        "pagerank",
        graph,
        [delta],
        dataset=dataset_name,
        engines=["ingress", "layph"],
        check_correctness=False,
    )


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, func, *args, **kwargs):
    """Measure ``func`` exactly once through pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
