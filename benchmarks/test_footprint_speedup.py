"""Scan-phase speedup: the shared delta footprint vs per-engine Python scans.

Not a paper figure — this guards the performance floor of the shared
per-delta footprint (``repro.graph.footprint``): on a fig5-style sequence of
20 small PageRank deltas, the BSP engines' *scan phase* (structurally-dirty
targets plus DZiG's changed-factor sources, the per-delta preamble that PR 3
left as Python factor-map comparisons) must run at least 2x faster with the
footprint's CSR row diffs than with the ``REPRO_DELTA_FOOTPRINT=0`` legacy
scans — while producing bitwise-identical states, rounds, edge activations
and memoized iterations.
"""

from __future__ import annotations

import os
import time

from conftest import record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.footprint import FOOTPRINT_ENV_VAR
from repro.graph.generators import erdos_renyi_graph
from repro.incremental import make_engine
from repro.incremental.graphbolt import PHASE_SCAN
from repro.workloads.updates import random_edge_delta

NUM_VERTICES = 10_000
NUM_EDGES = 200_000
NUM_DELTAS = 20
DELTA_ADDITIONS = 5
DELTA_DELETIONS = 5
SEED = 42
ALGORITHM = "pagerank"
ENGINES = ("graphbolt", "dzig")
REQUIRED_SPEEDUP = 2.0
#: passes per configuration; the scan-phase time is the minimum across
#: passes, which cancels whole-sequence slowdowns from machine contention
PASSES = 2


def _delta_sequence(graph):
    deltas = []
    current = graph.copy()
    for seed in range(NUM_DELTAS):
        delta = random_edge_delta(
            current, DELTA_ADDITIONS, DELTA_DELETIONS, seed=seed, protect=0
        )
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


def _run_sequence(engine_name, graph, deltas, footprint: bool):
    previous = os.environ.get(FOOTPRINT_ENV_VAR)
    os.environ[FOOTPRINT_ENV_VAR] = "1" if footprint else "0"
    try:
        engine = make_engine(engine_name, make_algorithm(ALGORITHM), backend="numpy")
        engine.initialize(graph.copy())
        scan_seconds = 0.0
        total_start = time.perf_counter()
        states, activations, rounds = [], 0, 0
        for delta in deltas:
            result = engine.apply_delta(delta)
            scan_seconds += result.phases.elapsed(PHASE_SCAN)
            states.append(result.states)
            activations += result.metrics.edge_activations
            rounds += result.metrics.iterations
        total_seconds = time.perf_counter() - total_start
        return {
            "states": states,
            "activations": activations,
            "rounds": rounds,
            "scan_seconds": scan_seconds,
            "total_seconds": total_seconds,
            "iterations": engine.iterations,
        }
    finally:
        if previous is None:
            del os.environ[FOOTPRINT_ENV_VAR]
        else:
            os.environ[FOOTPRINT_ENV_VAR] = previous


def test_footprint_speedup(benchmark):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)
    deltas = _delta_sequence(graph)

    def best_of(engine_name, footprint):
        passes = [
            _run_sequence(engine_name, graph, deltas, footprint=footprint)
            for _ in range(PASSES)
        ]
        for other in passes[1:]:
            # Repeated passes are deterministic; only the timings may differ.
            assert other["states"] == passes[0]["states"]
            assert other["activations"] == passes[0]["activations"]
        return min(passes, key=lambda outcome: outcome["scan_seconds"])

    def run_all():
        return {
            engine_name: {
                "footprint": best_of(engine_name, footprint=True),
                "legacy": best_of(engine_name, footprint=False),
            }
            for engine_name in ENGINES
        }

    outcomes = run_once(benchmark, run_all)

    rows = []
    speedups = {}
    for engine_name in ENGINES:
        with_footprint = outcomes[engine_name]["footprint"]
        legacy = outcomes[engine_name]["legacy"]
        # The footprint must be a pure performance layer: bitwise-identical
        # per-delta states, aggregate rounds/activations, and memoized
        # iterations.
        assert with_footprint["states"] == legacy["states"]
        assert with_footprint["activations"] == legacy["activations"]
        assert with_footprint["rounds"] == legacy["rounds"]
        assert with_footprint["iterations"] == legacy["iterations"]
        speedup = legacy["scan_seconds"] / max(with_footprint["scan_seconds"], 1e-9)
        speedups[engine_name] = speedup
        for label, outcome, shown in (
            ("legacy scans (REPRO_DELTA_FOOTPRINT=0)", legacy, "1.0x"),
            ("shared delta footprint", with_footprint, f"{speedup:.1f}x"),
        ):
            rows.append(
                [
                    f"{engine_name}: {label}",
                    f"{outcome['scan_seconds']:.3f}",
                    f"{outcome['total_seconds']:.3f}",
                    str(outcome["activations"]),
                    shown,
                ]
            )

    table = format_table(
        ["engine / scan path", "scan phase (s)", "sequence (s)", "activations", "speedup"],
        rows,
        title=(
            f"Delta footprint: {NUM_DELTAS}-delta {ALGORITHM} sequence on "
            f"G({NUM_VERTICES} vertices, {NUM_EDGES} edges), numpy backend"
        ),
    )
    print("\n" + table)
    record("footprint_speedup", table)

    for engine_name, speedup in speedups.items():
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{engine_name}: the shared delta footprint must speed up the "
            f"per-delta scan phase by at least {REQUIRED_SPEEDUP}x over the "
            f"legacy Python scans (got {speedup:.2f}x)"
        )
