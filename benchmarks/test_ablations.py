"""Ablations for the design choices called out in DESIGN.md.

* density rule on/off (Definition 2),
* community size cap K sweep,
* incremental shortcut maintenance vs recomputing every affected subgraph,
* sparsity-aware (DZiG) vs pull-only (GraphBolt) refinement over one shared
  memoized baseline.
"""

from __future__ import annotations

import time

from conftest import dataset, edge_delta, record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.incremental import make_engine
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig
from repro.workloads.updates import random_edge_delta


def test_ablation_density_rule(benchmark):
    graph = dataset("uk")

    def build_both():
        with_rule = LayeredGraph.build(
            make_algorithm("sssp"), graph, LayphConfig(apply_density_rule=True)
        )
        without_rule = LayeredGraph.build(
            make_algorithm("sssp"), graph, LayphConfig(apply_density_rule=False)
        )
        return with_rule, without_rule

    with_rule, without_rule = run_once(benchmark, build_both)
    rows = [
        ["with density rule", len(with_rule.subgraphs), with_rule.shortcut_count(), with_rule.upper_size()[1]],
        ["without density rule", len(without_rule.subgraphs), without_rule.shortcut_count(), without_rule.upper_size()[1]],
    ]
    table = format_table(
        ["variant", "dense subgraphs", "shortcuts", "Lup links"],
        rows,
        title="Ablation: Definition 2 density rule (uk, SSSP)",
    )
    print("\n" + table)
    record("ablations", table)
    # Dropping the rule can only accept more candidates.
    assert len(without_rule.subgraphs) >= len(with_rule.subgraphs)


def test_ablation_community_size_cap(benchmark):
    graph = dataset("wb")
    caps = [16, 32, 64, 128]

    def sweep():
        results = []
        for cap in caps:
            layered = LayeredGraph.build(
                make_algorithm("pagerank"), graph, LayphConfig(max_community_size=cap)
            )
            results.append((cap, len(layered.subgraphs), layered.upper_size()[1], layered.shortcut_count()))
        return results

    results = run_once(benchmark, sweep)
    rows = [[cap, count, links, shortcuts] for cap, count, links, shortcuts in results]
    table = format_table(
        ["K (size cap)", "dense subgraphs", "Lup links", "shortcuts"],
        rows,
        title="Ablation: community size cap K (wb, PageRank)",
    )
    print("\n" + table)
    record("ablations", table)
    assert len(rows) == len(caps)


def test_ablation_incremental_shortcut_update(benchmark, monkeypatch):
    """Incremental shortcut maintenance vs recomputing affected subgraphs."""
    graph = dataset("uk")
    delta = edge_delta("uk")

    def run_incremental():
        engine = LayphEngine(make_algorithm("pagerank"))
        engine.initialize(graph)
        return engine.apply_delta(delta)

    incremental = run_once(benchmark, run_incremental)

    # Full recomputation baseline: disable the cheap revision-based update so
    # every stale boundary vertex recomputes its shortcut vector from scratch.
    from repro.layph import layered_graph as layered_graph_module

    monkeypatch.setattr(
        layered_graph_module, "update_shortcut_vector", lambda *args, **kwargs: None
    )
    engine = LayphEngine(make_algorithm("pagerank"))
    engine.initialize(graph)
    full = engine.apply_delta(delta)

    rows = [
        ["incremental shortcut update", incremental.metrics.edge_activations],
        ["recompute touched subgraphs", full.metrics.edge_activations],
    ]
    table = format_table(
        ["variant", "edge activations"],
        rows,
        title="Ablation: incremental vs from-scratch shortcut maintenance (uk, PageRank)",
    )
    print("\n" + table)
    record("ablations", table)
    assert incremental.metrics.edge_activations <= full.metrics.edge_activations


def test_ablation_sparsity_aware_refinement_shared_baseline(benchmark):
    """DZiG vs GraphBolt-style refinement over one shared memoized baseline.

    Both BSP engines memoize the same per-iteration values, so the ablation
    materialises the baseline once (DZiG's batch run) and hands the
    GraphBolt-style engine a shared ``MemoTable`` snapshot via
    ``adopt_baseline`` instead of re-running ``initialize``.  The
    shared-snapshot run must be bitwise identical to independently
    initialized engines — states, activations, rounds and memoized
    iterations per delta.
    """
    # Large enough that the batch BSP materialisation dominates the copy
    # cost of sharing the snapshot (the tiny Table-I substitutes would only
    # measure noise).
    from repro.graph.generators import erdos_renyi_graph

    graph = erdos_renyi_graph(10_000, 100_000, weighted=True, seed=11)
    deltas = []
    current = graph.copy()
    for seed in range(5):
        delta = random_edge_delta(current, 5, 5, seed=seed, protect=0)
        deltas.append(delta)
        current = delta.apply(current)

    def apply_all(engine):
        outcomes = []
        for delta in deltas:
            result = engine.apply_delta(delta)
            outcomes.append(
                (
                    result.states,
                    result.metrics.edge_activations,
                    result.metrics.iterations,
                    tuple(result.metrics.activations_per_round),
                )
            )
        return outcomes

    def run_shared_and_independent():
        spec = make_algorithm("pagerank")
        # Shared baseline: one batch materialisation serves both engines.
        shared_start = time.perf_counter()
        dzig_shared = make_engine("dzig", spec, backend="numpy")
        dzig_shared.initialize(graph.copy())
        graphbolt_shared = make_engine("graphbolt", spec, backend="numpy")
        graphbolt_shared.adopt_baseline(dzig_shared)
        shared_init_seconds = time.perf_counter() - shared_start
        shared = {
            "dzig": apply_all(dzig_shared),
            "graphbolt": apply_all(graphbolt_shared),
            "iterations": {
                "dzig": dzig_shared.iterations,
                "graphbolt": graphbolt_shared.iterations,
            },
            "init_seconds": shared_init_seconds,
        }
        # Independent baselines: each engine pays its own batch run.
        independent_start = time.perf_counter()
        dzig_solo = make_engine("dzig", spec, backend="numpy")
        dzig_solo.initialize(graph.copy())
        graphbolt_solo = make_engine("graphbolt", spec, backend="numpy")
        graphbolt_solo.initialize(graph.copy())
        independent_init_seconds = time.perf_counter() - independent_start
        independent = {
            "dzig": apply_all(dzig_solo),
            "graphbolt": apply_all(graphbolt_solo),
            "iterations": {
                "dzig": dzig_solo.iterations,
                "graphbolt": graphbolt_solo.iterations,
            },
            "init_seconds": independent_init_seconds,
        }
        return shared, independent

    shared, independent = run_once(benchmark, run_shared_and_independent)

    # The shared snapshot is a pure plumbing optimisation: every per-delta
    # outcome and the final memoized iterations must be bitwise identical.
    for engine_name in ("dzig", "graphbolt"):
        assert shared[engine_name] == independent[engine_name]
        assert shared["iterations"][engine_name] == independent["iterations"][engine_name]

    activations = {
        engine_name: sum(outcome[1] for outcome in shared[engine_name])
        for engine_name in ("dzig", "graphbolt")
    }
    rows = [
        [
            "shared MemoTable snapshot",
            f"{shared['init_seconds']:.3f}",
            activations["dzig"],
            activations["graphbolt"],
        ],
        [
            "independent initialisation",
            f"{independent['init_seconds']:.3f}",
            activations["dzig"],
            activations["graphbolt"],
        ],
    ]
    table = format_table(
        ["baseline", "init (s)", "DZiG activations", "GraphBolt activations"],
        rows,
        title=(
            "Ablation: sparsity-aware refinement over a shared memoized "
            "baseline (G(10k, 100k), PageRank)"
        ),
    )
    print("\n" + table)
    record("ablations", table)
    # DZiG's sparse difference pushes can only activate fewer (or equal)
    # edges than GraphBolt's pull-everything refinement.
    assert activations["dzig"] <= activations["graphbolt"]
