"""Ablations for the design choices called out in DESIGN.md.

* density rule on/off (Definition 2),
* community size cap K sweep,
* incremental shortcut maintenance vs recomputing every affected subgraph.
"""

from __future__ import annotations

from conftest import dataset, edge_delta, record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayeredGraph, LayphConfig


def test_ablation_density_rule(benchmark):
    graph = dataset("uk")

    def build_both():
        with_rule = LayeredGraph.build(
            make_algorithm("sssp"), graph, LayphConfig(apply_density_rule=True)
        )
        without_rule = LayeredGraph.build(
            make_algorithm("sssp"), graph, LayphConfig(apply_density_rule=False)
        )
        return with_rule, without_rule

    with_rule, without_rule = run_once(benchmark, build_both)
    rows = [
        ["with density rule", len(with_rule.subgraphs), with_rule.shortcut_count(), with_rule.upper_size()[1]],
        ["without density rule", len(without_rule.subgraphs), without_rule.shortcut_count(), without_rule.upper_size()[1]],
    ]
    table = format_table(
        ["variant", "dense subgraphs", "shortcuts", "Lup links"],
        rows,
        title="Ablation: Definition 2 density rule (uk, SSSP)",
    )
    print("\n" + table)
    record("ablations", table)
    # Dropping the rule can only accept more candidates.
    assert len(without_rule.subgraphs) >= len(with_rule.subgraphs)


def test_ablation_community_size_cap(benchmark):
    graph = dataset("wb")
    caps = [16, 32, 64, 128]

    def sweep():
        results = []
        for cap in caps:
            layered = LayeredGraph.build(
                make_algorithm("pagerank"), graph, LayphConfig(max_community_size=cap)
            )
            results.append((cap, len(layered.subgraphs), layered.upper_size()[1], layered.shortcut_count()))
        return results

    results = run_once(benchmark, sweep)
    rows = [[cap, count, links, shortcuts] for cap, count, links, shortcuts in results]
    table = format_table(
        ["K (size cap)", "dense subgraphs", "Lup links", "shortcuts"],
        rows,
        title="Ablation: community size cap K (wb, PageRank)",
    )
    print("\n" + table)
    record("ablations", table)
    assert len(rows) == len(caps)


def test_ablation_incremental_shortcut_update(benchmark, monkeypatch):
    """Incremental shortcut maintenance vs recomputing affected subgraphs."""
    graph = dataset("uk")
    delta = edge_delta("uk")

    def run_incremental():
        engine = LayphEngine(make_algorithm("pagerank"))
        engine.initialize(graph)
        return engine.apply_delta(delta)

    incremental = run_once(benchmark, run_incremental)

    # Full recomputation baseline: disable the cheap revision-based update so
    # every stale boundary vertex recomputes its shortcut vector from scratch.
    from repro.layph import layered_graph as layered_graph_module

    monkeypatch.setattr(
        layered_graph_module, "update_shortcut_vector", lambda *args, **kwargs: None
    )
    engine = LayphEngine(make_algorithm("pagerank"))
    engine.initialize(graph)
    full = engine.apply_delta(delta)

    rows = [
        ["incremental shortcut update", incremental.metrics.edge_activations],
        ["recompute touched subgraphs", full.metrics.edge_activations],
    ]
    table = format_table(
        ["variant", "edge activations"],
        rows,
        title="Ablation: incremental vs from-scratch shortcut maintenance (uk, PageRank)",
    )
    print("\n" + table)
    record("ablations", table)
    assert incremental.metrics.edge_activations <= full.metrics.edge_activations
