"""CSR-cache speedup: patched snapshots vs per-call recompiles (fig5-style).

Not a paper figure — this guards the incremental-path performance floor
introduced with the CSR cache: a sequence of ≥20 small deltas processed by
the Ingress engine on the numpy backend must be at least 3x faster with the
cache (compile once, patch per delta) than with the cache force-disabled
(PR 1 behaviour: rebuild the factor adjacency and recompile the CSR on every
``propagate`` call), while producing identical states and edge activations.
"""

from __future__ import annotations

import time

from conftest import record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.csr_cache import CSRCache
from repro.graph.generators import erdos_renyi_graph
from repro.incremental import make_engine
from repro.workloads.updates import random_edge_delta

NUM_VERTICES = 10_000
NUM_EDGES = 100_000
NUM_DELTAS = 20
DELTA_ADDITIONS = 5
DELTA_DELETIONS = 5
SEED = 42
ALGORITHM = "pagerank"
REQUIRED_SPEEDUP = 3.0


def _delta_sequence(graph):
    deltas = []
    current = graph.copy()
    for seed in range(NUM_DELTAS):
        delta = random_edge_delta(
            current, DELTA_ADDITIONS, DELTA_DELETIONS, seed=seed, protect=0
        )
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


def _run_sequence(graph, deltas, cache_enabled: bool):
    engine = make_engine("ingress", make_algorithm(ALGORITHM, source=0), backend="numpy")
    cache = CSRCache(enabled=cache_enabled)
    # Ingress is a facade: the delegate engine runs the propagation.
    getattr(engine, "_delegate", engine).csr_cache = cache
    engine.csr_cache = cache
    engine.initialize(graph.copy())
    start = time.perf_counter()
    activations = 0
    for delta in deltas:
        result = engine.apply_delta(delta)
        activations += result.metrics.edge_activations
    elapsed = time.perf_counter() - start
    return engine.states, activations, elapsed, engine.csr_cache


def test_csr_cache_speedup(benchmark):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)
    deltas = _delta_sequence(graph)

    def run_pair():
        cached = _run_sequence(graph, deltas, cache_enabled=True)
        uncached = _run_sequence(graph, deltas, cache_enabled=False)
        return cached, uncached

    (cached_states, cached_acts, cached_s, cache), (
        uncached_states,
        uncached_acts,
        uncached_s,
        _,
    ) = run_once(benchmark, run_pair)

    # The cache must be a pure performance layer: identical states and
    # identical activation counts, and the deltas must actually have been
    # patched rather than recompiled.
    assert cached_states == uncached_states
    assert cached_acts == uncached_acts
    assert cache.patches >= NUM_DELTAS
    assert cache.compiles <= 2

    speedup = uncached_s / max(cached_s, 1e-9)
    table = format_table(
        ["configuration", "total (s)", "per delta (ms)", "activations", "speedup"],
        [
            [
                "cache disabled (per-call recompile)",
                f"{uncached_s:.3f}",
                f"{1000 * uncached_s / NUM_DELTAS:.1f}",
                str(uncached_acts),
                "1.0x",
            ],
            [
                "cache enabled (compile once, patch)",
                f"{cached_s:.3f}",
                f"{1000 * cached_s / NUM_DELTAS:.1f}",
                str(cached_acts),
                f"{speedup:.1f}x",
            ],
        ],
        title=(
            f"CSR cache: {NUM_DELTAS}-delta {ALGORITHM} sequence on "
            f"G({NUM_VERTICES} vertices, {NUM_EDGES} edges), numpy backend"
        ),
    )
    print("\n" + table)
    record("csr_cache_speedup", table)

    assert speedup >= REQUIRED_SPEEDUP, (
        f"CSR cache must be at least {REQUIRED_SPEEDUP}x faster than per-call "
        f"recompiles over the {NUM_DELTAS}-delta sequence "
        f"(cached {cached_s:.3f}s, uncached {uncached_s:.3f}s)"
    )
