"""Figure 1: edge activations and runtime of all systems on UK (SSSP & PR).

Paper shape: for SSSP, KickStarter activates the most edges among the
incremental engines and Layph the fewest; for PageRank, GraphBolt/DZiG
activate even more edges than a full restart while Ingress and Layph stay far
below it.
"""

from __future__ import annotations

from conftest import grid_cell, record, run_once

from repro.bench.reporting import format_table


def _render(result, metric):
    rows = []
    for run in result.runs:
        value = run.edge_activations if metric == "activations" else run.wall_seconds
        rows.append([run.engine, f"{value:.4f}" if metric != "activations" else value])
    return rows


def test_fig1a_sssp_on_uk(benchmark):
    result = run_once(benchmark, grid_cell, "uk", "sssp")
    runs = result.by_engine()
    rows = [
        [run.engine, run.edge_activations, f"{run.wall_seconds * 1000:.1f} ms"]
        for run in result.runs
    ]
    table = format_table(
        ["system", "edge activations", "runtime"],
        rows,
        title="Figure 1a substitute: SSSP on uk, 10 edge updates",
    )
    print("\n" + table)
    record("fig1_motivation", table)
    # Shape assertions: every incremental engine beats restarting, and the
    # dependency-tree engines order as in the paper (KickStarter >= Ingress).
    assert runs["ingress"].edge_activations < runs["restart"].edge_activations
    assert runs["kickstarter"].edge_activations >= runs["ingress"].edge_activations
    assert runs["layph"].edge_activations < runs["restart"].edge_activations


def test_fig1b_pagerank_on_uk(benchmark):
    result = run_once(benchmark, grid_cell, "uk", "pagerank")
    runs = result.by_engine()
    rows = [
        [run.engine, run.edge_activations, f"{run.wall_seconds * 1000:.1f} ms"]
        for run in result.runs
    ]
    table = format_table(
        ["system", "edge activations", "runtime"],
        rows,
        title="Figure 1b substitute: PageRank on uk, 10 edge updates",
    )
    print("\n" + table)
    record("fig1_motivation", table)
    # Paper shape: the per-iteration memoization engines flood the graph with
    # refinement pulls (comparable to or above Restart); Ingress and Layph
    # stay well below Restart.
    assert runs["graphbolt"].edge_activations > runs["ingress"].edge_activations
    assert runs["dzig"].edge_activations <= runs["graphbolt"].edge_activations
    assert runs["ingress"].edge_activations < runs["restart"].edge_activations
    assert runs["layph"].edge_activations < runs["restart"].edge_activations
