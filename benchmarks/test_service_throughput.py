"""Streaming service throughput: updates/s ingested vs query latency.

The paper's serving story (fig1/fig5/fig10) is a loop of edge updates
streaming in while queries read fresh results.  This benchmark runs that
loop through :class:`repro.service.UpdateService` end to end — WAL fsync on
every submit, coalescing writer, snapshot publish after every batch — with
a concurrent reader hammering point + top-k queries, and records sustained
updates/s against the query p99.  The read path must stay in the
microseconds: queries only ever touch the immutable published snapshot,
never the engine.
"""

from __future__ import annotations

import tempfile
import threading
import time

import pytest

from conftest import dataset, record, run_once

from repro.bench.harness import build_engine
from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.service import UpdateService
from repro.workloads.updates import poisoned_event_stream

NUM_EVENTS = 400
BATCH = 8


class _QueryLoad(threading.Thread):
    """Concurrent reader measuring per-query latency."""

    def __init__(self, service):
        super().__init__(daemon=True)
        self.service = service
        self.halt = threading.Event()
        self.latencies = []

    def run(self):
        while not self.halt.is_set():
            start = time.perf_counter()
            snapshot = self.service.snapshot()
            snapshot.value(0)
            snapshot.top_k(8)
            self.latencies.append(time.perf_counter() - start)

    def stop(self):
        self.halt.set()
        self.join(timeout=5.0)


def _percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def _serve(engine_name, algorithm):
    graph = dataset("uk")
    stream = poisoned_event_stream(
        graph, num_events=NUM_EVENTS, seed=11, poison_rate=0.0, protect=0
    )
    engine = build_engine(engine_name, make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    directory = tempfile.mkdtemp(prefix="svc-bench-")
    service = UpdateService(engine, directory, batch_size=BATCH, max_queue=512)
    load = _QueryLoad(service)
    load.start()
    started = time.perf_counter()
    try:
        for update in stream:
            service.submit(update)
        service.drain(timeout=300.0)
        elapsed = time.perf_counter() - started
    finally:
        load.stop()
        service.close()
    health = service.health()
    return {
        "updates_per_s": NUM_EVENTS / elapsed,
        "queries": len(load.latencies),
        "query_p50_us": _percentile(load.latencies, 0.50) * 1e6,
        "query_p99_us": _percentile(load.latencies, 0.99) * 1e6,
        "snapshots": health["stats"]["snapshots_published"],
        "published_seq": health["published_seq"],
    }


@pytest.mark.parametrize(
    "engine_name,algorithm",
    [("kickstarter", "sssp"), ("ingress", "pagerank")],
)
def test_service_throughput(benchmark, engine_name, algorithm):
    stats = run_once(benchmark, _serve, engine_name, algorithm)
    assert stats["published_seq"] == NUM_EVENTS  # every event served
    assert stats["queries"] > 0
    table = format_table(
        ["engine", "algorithm", "updates/s", "queries", "query p50 (µs)", "query p99 (µs)", "snapshots"],
        [
            [
                engine_name,
                algorithm,
                f"{stats['updates_per_s']:.0f}",
                stats["queries"],
                f"{stats['query_p50_us']:.1f}",
                f"{stats['query_p99_us']:.1f}",
                stats["snapshots"],
            ]
        ],
        title=(
            f"Service throughput ({engine_name}/{algorithm} on uk): WAL'd ingest "
            "vs concurrent snapshot queries"
        ),
    )
    print("\n" + table)
    record("service_throughput", table)
