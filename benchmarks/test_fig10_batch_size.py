"""Figure 10: Layph's speedup over the competitors as the batch size grows.

Paper shape: the speedup is largest for small batches and shrinks as the
batch grows, because larger batches touch more dense subgraphs and the
shortcut-update cost eats into the benefit.  The paper sweeps 10..10M unit
updates on billion-edge graphs; the substitute sweeps 2..200 on the uk-like
graph, which covers the same relative range.
"""

from __future__ import annotations

import pytest

from conftest import dataset, record, run_once

from repro.bench.harness import compare_engines
from repro.bench.reporting import format_table
from repro.workloads.updates import random_edge_delta

BATCH_SIZES = [2, 10, 50, 200]


def _sweep(algorithm: str, competitor_names):
    graph = dataset("uk")
    rows = []
    for batch in BATCH_SIZES:
        delta = random_edge_delta(
            graph, num_additions=batch // 2, num_deletions=batch - batch // 2, seed=batch, protect=0
        )
        result = compare_engines(
            algorithm,
            graph,
            [delta],
            dataset="uk",
            engines=list(competitor_names) + ["layph"],
        )
        runs = result.by_engine()
        layph_activations = max(runs["layph"].edge_activations, 1)
        rows.append(
            [batch]
            + [
                f"{runs[name].edge_activations / layph_activations:.2f}"
                for name in competitor_names
            ]
        )
    return rows


@pytest.mark.parametrize(
    "algorithm,competitors",
    [
        ("sssp", ["kickstarter", "risgraph", "ingress"]),
        ("pagerank", ["graphbolt", "dzig", "ingress"]),
    ],
)
def test_fig10_varying_batch_size(benchmark, algorithm, competitors):
    rows = run_once(benchmark, _sweep, algorithm, competitors)
    table = format_table(
        ["batch size"] + [f"{name}/layph activations" for name in competitors],
        rows,
        title=f"Figure 10 ({algorithm} on uk): competitor activations relative to Layph vs batch size",
    )
    print("\n" + table)
    record("fig10_batch_size", table)
    assert len(rows) == len(BATCH_SIZES)
