"""Invalidation+repair speedup: the dense DepTable vs the dict reference.

Not a paper figure — this guards the performance floor of the dense
dependency subsystem (``repro.incremental.dep_table``): on a fig5-style
sequence of 20 small SSSP/BFS deltas, the selective engines'
invalidation-and-repair pipeline (taint expansion, trim-and-seed re-pull,
post-propagation dependency maintenance — the per-delta Python scans PR 4
left behind) must run at least 2x faster on the dense parent/level/value
arrays than with the ``REPRO_DEP_DENSE=0`` dict reference — while producing
bitwise-identical states, rounds and edge activations.
"""

from __future__ import annotations

import os
import time

from conftest import record, run_once

from repro.bench.reporting import format_table
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import erdos_renyi_graph
from repro.incremental import make_engine
from repro.incremental.dep_table import DEP_DENSE_ENV_VAR
from repro.incremental.selective_base import (
    PHASE_INVALIDATION,
    PHASE_MAINTENANCE,
    PHASE_TRIM,
)
from repro.workloads.updates import random_edge_delta

NUM_VERTICES = 10_000
NUM_EDGES = 200_000
NUM_DELTAS = 20
DELTA_ADDITIONS = 20
DELTA_DELETIONS = 20
SEED = 42
ALGORITHMS = ("sssp", "bfs")
ENGINES = ("kickstarter", "risgraph")
REQUIRED_SPEEDUP = 2.0
#: passes per configuration; the phase time is the minimum across passes,
#: which cancels whole-sequence slowdowns from machine contention
PASSES = 2

REPAIR_PHASES = (PHASE_INVALIDATION, PHASE_TRIM, PHASE_MAINTENANCE)


def _delta_sequence(graph):
    deltas = []
    current = graph.copy()
    for seed in range(NUM_DELTAS):
        delta = random_edge_delta(
            current, DELTA_ADDITIONS, DELTA_DELETIONS, seed=seed, protect=0
        )
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


def _run_sequence(engine_name, algorithm, graph, deltas, dense: bool):
    previous = os.environ.get(DEP_DENSE_ENV_VAR)
    os.environ[DEP_DENSE_ENV_VAR] = "1" if dense else "0"
    try:
        engine = make_engine(
            engine_name, make_algorithm(algorithm, source=0), backend="numpy"
        )
        engine.initialize(graph.copy())
        repair_seconds = 0.0
        total_start = time.perf_counter()
        states, activations, rounds = [], 0, 0
        for delta in deltas:
            result = engine.apply_delta(delta)
            repair_seconds += sum(
                result.phases.elapsed(phase) for phase in REPAIR_PHASES
            )
            states.append(result.states)
            activations += result.metrics.edge_activations
            rounds += result.metrics.iterations
        total_seconds = time.perf_counter() - total_start
        if dense:
            assert engine.dense_deltas == NUM_DELTAS, "dense path did not engage"
        else:
            assert engine.dict_deltas == NUM_DELTAS
        return {
            "states": states,
            "activations": activations,
            "rounds": rounds,
            "repair_seconds": repair_seconds,
            "total_seconds": total_seconds,
        }
    finally:
        if previous is None:
            del os.environ[DEP_DENSE_ENV_VAR]
        else:
            os.environ[DEP_DENSE_ENV_VAR] = previous


def test_selective_speedup(benchmark):
    graph = erdos_renyi_graph(NUM_VERTICES, NUM_EDGES, weighted=True, seed=SEED)
    deltas = _delta_sequence(graph)

    def best_of(engine_name, algorithm, dense):
        passes = [
            _run_sequence(engine_name, algorithm, graph, deltas, dense=dense)
            for _ in range(PASSES)
        ]
        for other in passes[1:]:
            # Repeated passes are deterministic; only the timings may differ.
            assert other["states"] == passes[0]["states"]
            assert other["activations"] == passes[0]["activations"]
        return min(passes, key=lambda outcome: outcome["repair_seconds"])

    def run_all():
        return {
            (engine_name, algorithm): {
                "dense": best_of(engine_name, algorithm, dense=True),
                "dict": best_of(engine_name, algorithm, dense=False),
            }
            for engine_name in ENGINES
            for algorithm in ALGORITHMS
        }

    outcomes = run_once(benchmark, run_all)

    rows = []
    speedups = {}
    for (engine_name, algorithm), pair in outcomes.items():
        dense = pair["dense"]
        reference = pair["dict"]
        # The dense table must be a pure performance layer: bitwise-identical
        # per-delta states and aggregate rounds/activations.
        assert dense["states"] == reference["states"]
        assert dense["activations"] == reference["activations"]
        assert dense["rounds"] == reference["rounds"]
        speedup = reference["repair_seconds"] / max(dense["repair_seconds"], 1e-9)
        speedups[(engine_name, algorithm)] = speedup
        for label, outcome, shown in (
            ("dict reference (REPRO_DEP_DENSE=0)", reference, "1.0x"),
            ("dense DepTable", dense, f"{speedup:.1f}x"),
        ):
            rows.append(
                [
                    f"{engine_name}/{algorithm}: {label}",
                    f"{outcome['repair_seconds']:.3f}",
                    f"{outcome['total_seconds']:.3f}",
                    str(outcome["activations"]),
                    shown,
                ]
            )

    table = format_table(
        [
            "engine / dependency store",
            "invalidation+repair (s)",
            "sequence (s)",
            "activations",
            "speedup",
        ],
        rows,
        title=(
            f"Dense dependency trees: {NUM_DELTAS}-delta SSSP/BFS sequences on "
            f"G({NUM_VERTICES} vertices, {NUM_EDGES} edges), numpy backend"
        ),
    )
    print("\n" + table)
    record("selective_speedup", table)

    for key, speedup in speedups.items():
        assert speedup >= REQUIRED_SPEEDUP, (
            f"{key[0]}/{key[1]}: the dense dependency table must speed up the "
            f"invalidation+repair phases by at least {REQUIRED_SPEEDUP}x over "
            f"the dict reference (got {speedup:.2f}x)"
        )
