"""Regression tests for Layph's diff-based upper-layer maintenance.

With the delta footprint enabled the online engine patches
``upper_adjacency`` rows in place (:meth:`repro.layph.layered_graph.
LayeredGraph.patch_upper`) instead of reassembling the whole skeleton per
delta.  These tests pin the patched structure to a fresh
:meth:`_assemble_upper` result after every delta of a 20-delta sequence, and
assert through the ``upper_patches``/``upper_reuses``/``upper_rebuilds``
counters that the diff path actually engaged (no silent full rebuilds) while
vertex removals still fall back to the full reassembly.
"""

from __future__ import annotations

import pytest

from repro.engine.algorithms import make_algorithm
from repro.graph.footprint import FOOTPRINT_ENV_VAR
from repro.layph.engine import LayphEngine
from repro.workloads.datasets import DATASETS
from repro.workloads.updates import random_edge_delta, random_vertex_delta

NUM_DELTAS = 20


def _delta_sequence(graph, include_vertex_deltas: bool):
    """Edge deltas with (optionally) a vertex delta every fifth step."""
    deltas = []
    current = graph.copy()
    for seed in range(NUM_DELTAS):
        if include_vertex_deltas and seed % 5 == 4:
            delta = random_vertex_delta(current, 2, 2, seed=seed, protect=0)
        else:
            delta = random_edge_delta(current, 4, 4, seed=seed, protect=0)
        deltas.append(delta)
        current = delta.apply(current)
    return deltas


@pytest.mark.parametrize("algorithm", ["pagerank", "sssp"])
@pytest.mark.parametrize("backend", ["python", "numpy"])
def test_patched_upper_equals_fresh_rebuild(algorithm, backend, monkeypatch):
    """After every delta the patched upper layer == a fresh reassembly."""
    monkeypatch.delenv(FOOTPRINT_ENV_VAR, raising=False)
    graph = DATASETS["uk"].build()
    engine = LayphEngine(make_algorithm(algorithm, source=0), backend=backend)
    engine.initialize(graph)
    layered = engine.layered
    rebuilds_after_init = layered.upper_rebuilds

    for delta in _delta_sequence(graph, include_vertex_deltas=False):
        engine.apply_delta(delta)
        fresh_upper, fresh_vertices = layered._assemble_upper()
        assert layered.upper_adjacency.same_links(fresh_upper)
        assert layered.upper_vertices == fresh_vertices

    # Pure edge deltas never change subgraph membership: every delta must
    # have gone through the diff path — no silent full rebuilds.
    assert layered.upper_patches + layered.upper_reuses == NUM_DELTAS
    assert layered.upper_rebuilds == rebuilds_after_init
    assert layered.upper_patches > 0


def test_vertex_removals_fall_back_to_full_rebuild(monkeypatch):
    """Deltas that remove vertices leave the diff path and stay correct."""
    monkeypatch.delenv(FOOTPRINT_ENV_VAR, raising=False)
    graph = DATASETS["uk"].build()
    engine = LayphEngine(make_algorithm("pagerank"))
    engine.initialize(graph)
    layered = engine.layered
    rebuilds_after_init = layered.upper_rebuilds

    removal_deltas = 0
    current = graph.copy()
    for delta in _delta_sequence(graph, include_vertex_deltas=True):
        old_vertices = set(current.vertices())
        current = delta.apply(current)
        if old_vertices - set(current.vertices()):
            removal_deltas += 1
        engine.apply_delta(delta)
        fresh_upper, fresh_vertices = layered._assemble_upper()
        assert layered.upper_adjacency.same_links(fresh_upper)
        assert layered.upper_vertices == fresh_vertices

    assert removal_deltas > 0
    # Removal deltas reassemble (reuse or rebuild of the full assembly);
    # everything else still rides the diff path.
    assert layered.upper_patches + layered.upper_reuses >= NUM_DELTAS - removal_deltas
    assert layered.upper_patches > 0
    assert layered.upper_rebuilds <= rebuilds_after_init + removal_deltas


def test_footprint_disabled_never_patches(monkeypatch):
    """REPRO_DELTA_FOOTPRINT=0 keeps the original rebuild-and-compare path."""
    monkeypatch.setenv(FOOTPRINT_ENV_VAR, "0")
    graph = DATASETS["uk"].build()
    engine = LayphEngine(make_algorithm("pagerank"))
    engine.initialize(graph)
    layered = engine.layered
    for delta in _delta_sequence(graph, include_vertex_deltas=False)[:5]:
        engine.apply_delta(delta)
        fresh_upper, fresh_vertices = layered._assemble_upper()
        assert layered.upper_adjacency.same_links(fresh_upper)
        assert layered.upper_vertices == fresh_vertices
    assert layered.upper_patches == 0


@pytest.mark.parametrize("algorithm", ["pagerank", "sssp"])
def test_flatten_links_never_runs_on_the_per_delta_path(algorithm, monkeypatch):
    """The O(Lup) whole-layer flattens are gone from the per-delta path.

    Accumulative specs never needed them; the selective upload now consumes
    the :class:`repro.layph.layered_graph.UpperDiff` emitted by
    ``patch_upper``, so membership-stable deltas must not flatten either.
    A spy-count on ``LayphEngine._flatten_links`` proves both.
    """
    monkeypatch.delenv(FOOTPRINT_ENV_VAR, raising=False)
    calls = {"count": 0}
    original = LayphEngine._flatten_links

    def spy(adjacency):
        calls["count"] += 1
        return original(adjacency)

    monkeypatch.setattr(LayphEngine, "_flatten_links", staticmethod(spy))
    graph = DATASETS["uk"].build()
    engine = LayphEngine(make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    for delta in _delta_sequence(graph, include_vertex_deltas=False):
        engine.apply_delta(delta)
    assert calls["count"] == 0


def test_flatten_links_still_backs_the_reassembly_fallback(monkeypatch):
    """Vertex removals (full reassembly) keep the flatten-based reference."""
    monkeypatch.delenv(FOOTPRINT_ENV_VAR, raising=False)
    calls = {"count": 0}
    original = LayphEngine._flatten_links

    def spy(adjacency):
        calls["count"] += 1
        return original(adjacency)

    monkeypatch.setattr(LayphEngine, "_flatten_links", staticmethod(spy))
    graph = DATASETS["uk"].build()
    engine = LayphEngine(make_algorithm("sssp", source=0))
    engine.initialize(graph)
    current = graph.copy()
    removal_deltas = 0
    for delta in _delta_sequence(graph, include_vertex_deltas=True):
        old_vertices = set(current.vertices())
        current = delta.apply(current)
        if old_vertices - set(current.vertices()):
            removal_deltas += 1
        engine.apply_delta(delta)
    assert removal_deltas > 0
    # Two flattens (old and new links) per reassembled selective delta.
    assert calls["count"] == 2 * removal_deltas
