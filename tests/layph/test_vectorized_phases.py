"""Backend equivalence of Layph's vectorized upload/assign phases.

The numpy kernels in :mod:`repro.layph.vectorized` must be metric-identical
to the Python reference loops in ``engine.py`` — same revised states, same
arrived messages, same round counts and edge activations — including the
NaN-fallback path (inputs the array algebra cannot reproduce run the Python
loop on both backends).
"""

import math

import pytest

from repro.engine.algorithms import PageRank, SSSP, make_algorithm
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import FactorAdjacency, NonConvergenceError
from repro.graph.generators import community_graph
from repro.layph.engine import LayphEngine
from repro.layph.vectorized import (
    assign_accumulative_numpy,
    assign_selective_numpy,
    local_upload_numpy,
)
from repro.workloads.updates import random_edge_delta


class _Subgraph:
    """Minimal stand-in for a DenseSubgraph in direct kernel tests."""

    def __init__(self, index, boundary, internal, adjacency, shortcuts=None):
        self.index = index
        self.boundary = frozenset(boundary)
        self.internal = set(internal)
        self.local_adjacency = adjacency
        self.shortcuts = shortcuts or {}

    def internal_shortcuts(self, source):
        return {
            target: factor
            for target, factor in self.shortcuts.get(source, {}).items()
            if target in self.internal
        }


def _chain_subgraph():
    # boundary 1 feeds internal chain 2 -> 3 -> 4, boundary 5 absorbs
    adjacency = FactorAdjacency(
        {
            1: [(2, 1.0)],
            2: [(3, 2.0)],
            3: [(4, 1.0), (5, 3.0)],
        }
    )
    return _Subgraph(0, boundary={1, 5}, internal={2, 3, 4}, adjacency=adjacency)


class TestLocalUploadKernel:
    @pytest.mark.parametrize("spec", [SSSP(source=0), PageRank()], ids=lambda s: s.name)
    def test_matches_python_loop(self, spec):
        results = {}
        for backend in ("python", "numpy"):
            engine = LayphEngine(spec, backend=backend)
            subgraph = _chain_subgraph()
            work = {2: 10.0 if spec.is_selective() else 0.5, 3: 12.0 if spec.is_selective() else 0.25}
            pending = {2: 4.0, 5: 1.0}
            metrics = ExecutionMetrics()
            arrived = engine._local_upload(subgraph, work, pending, metrics)
            results[backend] = (arrived, work, metrics)
        py_arrived, py_work, py_metrics = results["python"]
        np_arrived, np_work, np_metrics = results["numpy"]
        assert py_arrived == np_arrived
        assert py_work == np_work
        assert py_metrics.iterations == np_metrics.iterations
        assert py_metrics.edge_activations == np_metrics.edge_activations
        assert py_metrics.activations_per_round == np_metrics.activations_per_round
        assert py_metrics.active_vertices_per_round == np_metrics.active_vertices_per_round
        # the reference loop counts no vertex updates, neither must the kernel
        assert np_metrics.vertex_updates == 0

    def test_nan_factor_falls_back(self):
        adjacency = FactorAdjacency({1: [(2, math.nan)], 2: [(3, 1.0)]})
        subgraph = _Subgraph(0, boundary={1, 3}, internal={2}, adjacency=adjacency)
        assert (
            local_upload_numpy(SSSP(source=0), subgraph, {}, {1: 1.0}, ExecutionMetrics())
            is None
        )
        # the dispatching engine still produces the Python loop's answer
        results = {}
        for backend in ("python", "numpy"):
            engine = LayphEngine(PageRank(), backend=backend)
            work = {}
            metrics = ExecutionMetrics()
            arrived = engine._local_upload(subgraph, work, {2: 1.0}, metrics)
            results[backend] = (arrived, work, metrics.edge_activations)
        assert results["python"] == results["numpy"]

    def test_nan_state_falls_back(self):
        subgraph = _chain_subgraph()
        assert (
            local_upload_numpy(
                PageRank(), subgraph, {3: math.nan}, {2: 1.0}, ExecutionMetrics()
            )
            is None
        )

    def test_undeclared_algebra_falls_back(self):
        class MaxSpec(SSSP):
            def aggregate(self, left, right):
                return max(left, right)

        subgraph = _chain_subgraph()
        assert (
            local_upload_numpy(MaxSpec(), subgraph, {}, {2: 1.0}, ExecutionMetrics())
            is None
        )

    def test_non_convergence_raises_on_numpy_backend(self):
        # A lossless 2-cycle: PageRank-style messages never decay, so the
        # vectorized upload must hit the round cap and raise like the
        # Python loop does.
        adjacency = FactorAdjacency({1: [(2, 1.0)], 2: [(1, 1.0)]})
        subgraph = _Subgraph(0, boundary=frozenset(), internal={1, 2}, adjacency=adjacency)
        engine = LayphEngine(PageRank(), backend="numpy")
        with pytest.raises(NonConvergenceError):
            engine._local_upload(subgraph, {}, {1: 1.0}, ExecutionMetrics())


class TestAssignKernels:
    def _shortcut_subgraph(self):
        subgraph = _Subgraph(
            1,
            boundary={0, 5},
            internal={2, 3},
            adjacency=FactorAdjacency(),
            shortcuts={
                0: {2: 1.0, 3: 3.0, 5: 4.0},  # the boundary target lives on Lup
                5: {3: 2.0},
            },
        )
        return subgraph

    def test_selective_assign_matches_python(self):
        spec = SSSP(source=0)
        subgraph = self._shortcut_subgraph()
        work = {0: 1.0, 5: 2.5}
        metrics = ExecutionMetrics()
        best = assign_selective_numpy(spec, subgraph, work, metrics)
        assert best == {2: 2.0, 3: 4.0}
        assert metrics.edge_activations == 3  # two internal entries of 0, one of 5

    def test_accumulative_assign_matches_python(self):
        from repro.graph.graph import Graph

        spec = PageRank()
        subgraph = self._shortcut_subgraph()
        graph = Graph.from_edges([(0, 2, 1.0), (2, 3, 1.0), (3, 5, 1.0)])
        results = {}
        for backend in ("python", "numpy"):
            engine = LayphEngine(PageRank(), backend=backend)
            work = {2: 0.25, 3: 0.5}
            metrics = ExecutionMetrics()
            engine._assign_accumulative(
                subgraph, {0: 0.125, 5: 0.0625}, work, metrics, graph
            )
            results[backend] = (work, metrics.edge_activations)
        assert results["python"] == results["numpy"]
        work, activations = results["numpy"]
        assert work[2] == 0.25 + 0.125 * 1.0
        assert work[3] == 0.5 + 0.125 * 3.0 + 0.0625 * 2.0
        assert activations == 3

    def test_assign_kernels_reject_undeclared_algebra(self):
        class MaxSpec(SSSP):
            def aggregate(self, left, right):
                return max(left, right)

        subgraph = self._shortcut_subgraph()
        assert assign_selective_numpy(MaxSpec(), subgraph, {}, ExecutionMetrics()) is None

    def test_shortcut_csr_cache_invalidated_on_rebuild(self, monkeypatch):
        from repro.graph.csr_cache import CSR_CACHE_ENV_VAR
        from repro.layph.vectorized import _shortcut_csr

        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        subgraph = self._shortcut_subgraph()
        first = _shortcut_csr(subgraph)
        assert _shortcut_csr(subgraph) is first
        subgraph.shortcuts = {0: {2: 9.0}}  # a rebuild installs fresh tables
        second = _shortcut_csr(subgraph)
        assert second is not first
        assert second.factors.tolist() == [9.0]


class TestEngineLevelEquivalence:
    """Full LayphEngine runs over a community graph: the numpy backend's
    upload/assign kernels must leave states, rounds and activations
    bitwise-identical to the Python loops, for all four algorithms."""

    @pytest.mark.parametrize("algorithm", ["sssp", "bfs", "pagerank", "php"])
    def test_delta_sequence_identical(self, algorithm):
        graph = community_graph(
            num_communities=6,
            community_size_range=(15, 30),
            intra_edge_probability=0.35,
            weighted=True,
            seed=11,
        )
        results = {}
        for backend in ("python", "numpy"):
            engine = LayphEngine(make_algorithm(algorithm, source=0), backend=backend)
            engine.initialize(graph.copy())
            current = graph.copy()
            runs = []
            for seed in range(4):
                delta = random_edge_delta(current, 4, 4, seed=seed, protect=0)
                runs.append(engine.apply_delta(delta))
                current = delta.apply(current)
            results[backend] = runs
        for py, vec in zip(results["python"], results["numpy"]):
            assert py.states == vec.states
            assert py.metrics.iterations == vec.metrics.iterations
            assert py.metrics.edge_activations == vec.metrics.edge_activations
            assert py.metrics.activations_per_round == vec.metrics.activations_per_round
