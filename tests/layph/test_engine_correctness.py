"""Layph engine correctness: Theorems 1 and 2 (results match a batch rerun)."""

import pytest

from repro.engine.algorithms import make_algorithm
from repro.engine.convergence import states_close
from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.graph.generators import community_graph
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayphConfig
from repro.workloads.updates import random_edge_delta, random_vertex_delta

ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]


@pytest.fixture(scope="module")
def graph():
    return community_graph(
        num_communities=6,
        community_size_range=(8, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=9,
    )


def _verify(algorithm, graph, deltas, source=0, config=None):
    spec = make_algorithm(algorithm, source=source)
    engine = LayphEngine(spec, config or LayphConfig(seed=4))
    engine.initialize(graph)
    current = graph
    result = None
    for delta in deltas:
        result = engine.apply_delta(delta)
        current = delta.apply(current)
    reference = run_batch(make_algorithm(algorithm, source=source), current).states
    tolerance = 1e-6 if spec.is_selective() else 1e-3
    assert set(result.states) == set(reference)
    assert states_close(result.states, reference, tolerance=tolerance)
    return engine, result


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestLayphMatchesBatch:
    def test_single_edge_insertion(self, algorithm, graph):
        delta = GraphDelta()
        delta.add_edge(2, 40, 1.5)
        _verify(algorithm, graph, [delta])

    def test_single_edge_deletion_inside_subgraph(self, algorithm, graph):
        # delete an intra-community edge (vertices 1..10 are in community 0)
        target_edge = None
        for source, target, _ in graph.edges():
            if source < 8 and target < 8 and source != 0:
                target_edge = (source, target)
                break
        assert target_edge is not None
        delta = GraphDelta()
        delta.delete_edge(*target_edge)
        _verify(algorithm, graph, [delta])

    def test_random_mixed_batch(self, algorithm, graph):
        delta = random_edge_delta(graph, num_additions=12, num_deletions=12, seed=31, protect=0)
        _verify(algorithm, graph, [delta])

    def test_vertex_updates(self, algorithm, graph):
        delta = random_vertex_delta(graph, num_additions=4, num_deletions=4, seed=17, protect=0)
        _verify(algorithm, graph, [delta])

    def test_sequence_of_batches(self, algorithm, graph):
        deltas = [
            random_edge_delta(graph, 6, 6, seed=41, protect=0),
        ]
        current = deltas[0].apply(graph)
        deltas.append(random_edge_delta(current, 6, 6, seed=42, protect=0))
        current = deltas[1].apply(current)
        deltas.append(random_edge_delta(current, 6, 6, seed=43, protect=0))
        _verify(algorithm, graph, deltas)

    def test_without_replication(self, algorithm, graph):
        delta = random_edge_delta(graph, 8, 8, seed=51, protect=0)
        _verify(
            algorithm,
            graph,
            [delta],
            config=LayphConfig(seed=4, enable_replication=False),
        )


class TestLayphInternals:
    def test_offline_preprocessing_is_recorded(self, graph):
        engine = LayphEngine(make_algorithm("sssp"), LayphConfig(seed=4))
        engine.initialize(graph)
        assert engine.offline_seconds > 0.0
        assert engine.layered is not None
        assert len(engine.layered.subgraphs) > 0

    def test_phase_breakdown_has_four_phases(self, graph):
        engine = LayphEngine(make_algorithm("sssp"), LayphConfig(seed=4))
        engine.initialize(graph)
        delta = random_edge_delta(graph, 5, 5, seed=61, protect=0)
        result = engine.apply_delta(delta)
        phases = result.phases.as_dict()
        assert "layered graph update" in phases
        assert "messages upload" in phases
        assert "iterative computation on upper layer" in phases
        assert "messages assignment" in phases

    def test_proxy_states_never_reported(self, graph):
        engine = LayphEngine(make_algorithm("sssp"), LayphConfig(seed=4))
        engine.initialize(graph)
        delta = random_edge_delta(graph, 5, 5, seed=62, protect=0)
        result = engine.apply_delta(delta)
        assert all(vertex >= 0 for vertex in result.states)

    def test_fewer_activations_than_restart_on_small_update(self, graph):
        from repro.incremental.restart import RestartEngine

        delta = GraphDelta()
        delta.add_edge(3, 5, 2.0)
        layph = LayphEngine(make_algorithm("sssp"), LayphConfig(seed=4))
        layph.initialize(graph)
        restart = RestartEngine(make_algorithm("sssp"))
        restart.initialize(graph)
        layph_result = layph.apply_delta(delta)
        restart_result = restart.apply_delta(delta)
        assert (
            layph_result.metrics.edge_activations
            < restart_result.metrics.edge_activations
        )
