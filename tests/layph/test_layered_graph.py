"""Tests for layered graph construction: communities, density, shortcuts."""

import math

import pytest

from repro.engine.algorithms import PageRank, SSSP
from repro.engine.propagation import FactorAdjacency
from repro.graph.graph import Graph
from repro.layph.community import louvain_communities
from repro.layph.dense import classify_boundary, is_dense, select_dense_subgraphs
from repro.layph.layered_graph import LayeredGraph, LayphConfig
from repro.layph.shortcuts import compute_all_shortcuts, compute_shortcuts_from


class TestLouvain:
    def test_every_vertex_assigned_once(self, community_graph_small):
        communities = louvain_communities(community_graph_small, seed=1)
        assigned = [v for community in communities for v in community]
        assert sorted(assigned) == sorted(community_graph_small.vertices())

    def test_detects_planted_communities(self):
        graph = Graph()
        # two disjoint dense cliques joined by one edge
        for block, offset in enumerate((0, 10)):
            for i in range(6):
                for j in range(6):
                    if i != j:
                        graph.add_edge(offset + i, offset + j, 1.0)
        graph.add_edge(0, 10, 1.0)
        communities = louvain_communities(graph, seed=3)
        sizes = sorted(len(c) for c in communities)
        assert sizes == [6, 6]

    def test_size_cap_respected(self, community_graph_small):
        cap = 10
        communities = louvain_communities(
            community_graph_small, max_community_size=cap, seed=1
        )
        assert all(len(c) <= cap for c in communities)

    def test_empty_graph(self):
        assert louvain_communities(Graph()) == []


class TestDenseClassification:
    def test_entry_exit_internal_split(self):
        # 0 -> 1 -> 2 -> 3 with the chain {1, 2} as the candidate subgraph
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        classification = classify_boundary(graph, [1, 2])
        assert classification.entry == {1}
        assert classification.exit == {2}
        assert classification.internal == set()

    def test_internal_vertices(self):
        graph = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (1, 3, 1.0)]
        )
        classification = classify_boundary(graph, [1, 2, 3])
        assert classification.entry == {1}
        assert classification.exit == {3}
        assert classification.internal == {2}
        assert classification.internal_edges == 3

    def test_density_rule(self):
        graph = Graph.from_edges(
            [(9, 0, 1.0), (3, 8, 1.0)]
            + [(i, j, 1.0) for i in range(4) for j in range(4) if i != j]
        )
        dense = classify_boundary(graph, [0, 1, 2, 3])
        assert is_dense(dense)  # 1 entry * 1 exit = 1 < 12 internal edges

    def test_sparse_candidate_rejected(self):
        graph = Graph.from_edges(
            [(10, 0, 1.0), (10, 1, 1.0), (0, 11, 1.0), (1, 11, 1.0), (0, 2, 1.0), (1, 2, 1.0)]
        )
        classification = classify_boundary(graph, [0, 1, 2])
        # 2 entries * 2 exits = 4 >= 2 internal edges -> not dense
        assert not is_dense(classification)

    def test_candidate_without_internal_vertices_rejected(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 0, 1.0), (5, 0, 1.0), (1, 6, 1.0)])
        classification = classify_boundary(graph, [0, 1])
        assert not is_dense(classification)

    def test_select_dense_subgraphs_min_size(self, community_graph_small):
        communities = louvain_communities(community_graph_small, seed=1)
        selected = select_dense_subgraphs(
            community_graph_small, communities, min_size=3
        )
        assert all(len(c.members) >= 3 for c in selected)


class TestShortcuts:
    def test_sssp_shortcut_is_shortest_internal_path(self):
        spec = SSSP(source=0)
        adjacency = FactorAdjacency(
            {
                0: [(1, 1.0), (2, 4.0)],
                1: [(2, 1.0), (3, 5.0)],
                2: [(3, 1.0)],
            }
        )
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary={0, 3})
        assert shortcuts[1] == 1.0
        assert shortcuts[2] == 2.0
        assert shortcuts[3] == 3.0

    def test_paths_through_other_boundary_vertices_are_excluded(self):
        spec = SSSP(source=0)
        # 0 -> 9 -> 3 is shorter but passes through boundary vertex 9, so the
        # shortcut 0 -> 3 must report the internal-only path 0 -> 1 -> 3.
        adjacency = FactorAdjacency(
            {
                0: [(1, 5.0), (9, 1.0)],
                1: [(3, 5.0)],
                9: [(3, 1.0)],
            }
        )
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary={0, 3, 9})
        assert shortcuts[3] == 10.0
        assert shortcuts[9] == 1.0

    def test_pagerank_shortcut_sums_path_products(self):
        spec = PageRank(damping=0.5)
        adjacency = FactorAdjacency(
            {
                0: [(1, 0.5), (2, 0.25)],
                1: [(2, 0.5)],
            }
        )
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary={0, 2})
        # two internal-only paths to 2: direct 0.25 and through 1: 0.5*0.5
        assert shortcuts[2] == pytest.approx(0.5)
        assert shortcuts[1] == pytest.approx(0.5)

    def test_selective_self_shortcut_dropped(self):
        spec = SSSP(source=0)
        adjacency = FactorAdjacency({0: [(1, 1.0)], 1: [(0, 1.0)]})
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary={0})
        assert 0 not in shortcuts

    def test_accumulative_self_shortcut_keeps_cycle_mass_only(self):
        spec = PageRank(damping=0.5)
        adjacency = FactorAdjacency({0: [(1, 0.5)], 1: [(0, 0.5)]})
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary={0})
        # one internal cycle 0 -> 1 -> 0 contributing 0.25 (plus decaying
        # repetitions are cut off because vertex 0 absorbs as boundary)
        assert shortcuts[0] == pytest.approx(0.25)

    def test_compute_all_shortcuts_covers_every_boundary_vertex(self):
        spec = SSSP(source=0)
        adjacency = FactorAdjacency(
            {0: [(1, 1.0)], 1: [(2, 1.0)], 2: [(3, 1.0)], 3: [(0, 1.0)]}
        )
        shortcuts = compute_all_shortcuts(spec, adjacency, boundary={0, 3})
        assert set(shortcuts) == {0, 3}


class TestLayeredGraphConstruction:
    def test_upper_layer_is_smaller_than_graph(self, community_graph_small):
        spec = SSSP(source=0)
        layered = LayeredGraph.build(spec, community_graph_small, LayphConfig(seed=2))
        upper_vertices, upper_links = layered.upper_size()
        assert upper_vertices < community_graph_small.num_vertices()
        assert upper_links < community_graph_small.num_edges()

    def test_membership_maps_are_consistent(self, community_graph_small):
        spec = SSSP(source=0)
        layered = LayeredGraph.build(spec, community_graph_small, LayphConfig(seed=2))
        for subgraph in layered.subgraphs:
            for vertex in subgraph.members:
                assert layered.subgraph_of[vertex] == subgraph.index
            assert subgraph.internal <= subgraph.members
            assert not (subgraph.internal & subgraph.boundary)

    def test_outliers_plus_members_cover_graph(self, community_graph_small):
        spec = SSSP(source=0)
        layered = LayeredGraph.build(spec, community_graph_small, LayphConfig(seed=2))
        members = set()
        for subgraph in layered.subgraphs:
            members |= subgraph.members
        assert members | layered.outliers() == set(community_graph_small.vertices())

    def test_replication_reduces_upper_layer(self):
        # A hub vertex fanning into one dense community forces many entry
        # vertices unless the hub is replicated.
        graph = Graph()
        for i in range(1, 9):
            for j in range(1, 9):
                if i != j:
                    graph.add_edge(i, j, 1.0)
        for i in range(1, 6):
            graph.add_edge(0, i, 1.0)   # hub 0 feeds five entries
        graph.add_edge(8, 20, 1.0)      # one exit edge
        graph.add_edge(20, 0, 1.0)
        spec = SSSP(source=0)
        with_replication = LayeredGraph.build(
            spec, graph, LayphConfig(seed=1, enable_replication=True, replication_threshold=3)
        )
        without_replication = LayeredGraph.build(
            spec, graph, LayphConfig(seed=1, enable_replication=False)
        )
        assert with_replication.upper_size()[0] <= without_replication.upper_size()[0]

    def test_negative_vertex_ids_rejected_with_replication(self):
        graph = Graph.from_edges([(-1, 0, 1.0), (0, 1, 1.0)])
        with pytest.raises(ValueError):
            LayeredGraph.build(SSSP(source=0), graph, LayphConfig(enable_replication=True))

    def test_shortcut_count_positive_for_dense_graph(self, community_graph_small):
        spec = SSSP(source=0)
        layered = LayeredGraph.build(spec, community_graph_small, LayphConfig(seed=2))
        assert layered.shortcut_count() > 0

    def test_config_cap_resolution(self):
        config = LayphConfig()
        assert config.resolved_community_cap(1_000_000) == 2000
        assert config.resolved_community_cap(100) == 64
        assert LayphConfig(max_community_size=5).resolved_community_cap(100) == 5


class TestUpperLayerCompileReuse:
    """A rebuild that leaves the skeleton's links unchanged must keep the
    previous ``FactorAdjacency`` object alive, so the version-keyed CSR
    compile memo (``master_factor_csr``) carries across deltas."""

    def _layered(self, graph):
        return LayeredGraph.build(PageRank(), graph, LayphConfig(seed=2))

    def test_noop_rebuild_keeps_adjacency_object(self, community_graph_small):
        layered = self._layered(community_graph_small)
        upper = layered.upper_adjacency
        reuses = layered.upper_reuses
        layered.rebuild_upper()
        assert layered.upper_adjacency is upper
        assert layered.upper_reuses == reuses + 1

    def test_changed_skeleton_installs_new_adjacency(self, community_graph_small):
        layered = self._layered(community_graph_small)
        upper = layered.upper_adjacency
        rebuilds = layered.upper_rebuilds
        # Two brand-new vertices are outliers; their edge lands on the upper
        # layer, so the freshly assembled skeleton differs.
        layered.graph.add_edge(9901, 9902, 1.0)
        layered.rebuild_upper()
        assert layered.upper_adjacency is not upper
        assert layered.upper_rebuilds == rebuilds + 1
        # Factors, not weights, live on the upper layer (d / N_u = 0.85 / 1).
        assert [target for target, _factor in layered.upper_adjacency(9901)] == [9902]

    def test_compile_memo_survives_noop_rebuild(self, community_graph_small, monkeypatch):
        from repro.graph.csr_cache import CSR_CACHE_ENV_VAR, master_factor_csr

        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        layered = self._layered(community_graph_small)
        universe = set(layered.upper_vertices) | layered.proxy_vertices()
        compiled = master_factor_csr(layered.upper_adjacency, universe)
        assert compiled is not None
        layered.rebuild_upper()
        # Same adjacency object, same version: the memoized compile is served.
        assert master_factor_csr(layered.upper_adjacency, universe) is compiled


class TestUpperInAdjacencyCache:
    """The reverse upper-layer view is cached across deltas and invalidated
    by both rebuilds (new adjacency object) and in-place row patches
    (version bump) — the selective upload path must not pay an O(Lup)
    rebuild for every delta."""

    def _layered(self, graph):
        return LayeredGraph.build(SSSP(source=0), graph, LayphConfig(seed=2))

    def test_repeat_calls_reuse_the_cached_view(self, community_graph_small):
        layered = self._layered(community_graph_small)
        first = layered.upper_in_adjacency()
        rebuilds = layered.upper_in_rebuilds
        assert layered.upper_in_adjacency() is first
        assert layered.upper_in_rebuilds == rebuilds
        assert layered.upper_in_reuses >= 1

    def test_version_bump_invalidates(self, community_graph_small):
        layered = self._layered(community_graph_small)
        first = layered.upper_in_adjacency()
        layered.upper_adjacency.add(9901, 9902, 1.0)
        second = layered.upper_in_adjacency()
        assert second is not first
        assert (9901, 1.0) in second[9902]

    def test_new_adjacency_object_invalidates(self, community_graph_small):
        layered = self._layered(community_graph_small)
        first = layered.upper_in_adjacency()
        layered.upper_adjacency = FactorAdjacency(
            {1: [(2, 0.5)]}
        )
        second = layered.upper_in_adjacency()
        assert second is not first
        assert second == {2: [(1, 0.5)]}

    def test_cache_disabled_by_env(self, community_graph_small, monkeypatch):
        from repro.graph.csr_cache import CSR_CACHE_ENV_VAR

        layered = self._layered(community_graph_small)
        monkeypatch.setenv(CSR_CACHE_ENV_VAR, "0")
        layered.upper_in_adjacency()
        rebuilds = layered.upper_in_rebuilds
        layered.upper_in_adjacency()
        assert layered.upper_in_rebuilds == rebuilds + 1

    def test_reverse_view_matches_forward_links(self, community_graph_small):
        layered = self._layered(community_graph_small)
        incoming = layered.upper_in_adjacency()
        forward = set()
        for source in layered.upper_adjacency.vertices_with_out_edges():
            for target, factor in layered.upper_adjacency(source):
                forward.add((source, target, factor))
        reverse = {
            (source, target, factor)
            for target, links in incoming.items()
            for source, factor in links
        }
        assert forward == reverse
