"""Reproduction of the paper's worked example (Figure 2, Examples 2 and 3).

Example 2: injecting the unit message at entry vertex v0 of the dense
subgraph and iterating F/G yields shortcut weights {1, 4, 1, 2} for
{v1, v2, v3, v4}.  Example 3: after deleting edge (v3, v4, 1) and adding edge
(v3, v2, 2), the incrementally updated shortcut weights become {1, 3, 1, 4}.
"""

import pytest

from repro.engine.algorithms import SSSP
from repro.engine.convergence import states_close
from repro.engine.propagation import FactorAdjacency
from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.layph.engine import LayphEngine
from repro.layph.layered_graph import LayphConfig
from repro.layph.shortcuts import compute_shortcuts_from, update_shortcut_vector

# Intra-subgraph edges of the example's dense subgraph, entry v0, exit v4.
OLD_EDGES = {
    0: [(1, 1.0), (3, 1.0)],
    1: [(2, 3.0)],
    2: [(4, 1.0)],
    3: [(4, 1.0)],
}
NEW_EDGES = {
    0: [(1, 1.0), (3, 1.0)],
    1: [(2, 3.0)],
    2: [(4, 1.0)],
    3: [(2, 2.0)],  # (v3, v4) deleted, (v3, v2, 2) added
}
BOUNDARY = {0, 4}


class TestExample2Shortcuts:
    def test_shortcut_weights_before_update(self):
        spec = SSSP(source=0)
        shortcuts = compute_shortcuts_from(
            spec, FactorAdjacency(dict(OLD_EDGES)), 0, BOUNDARY
        )
        assert shortcuts == {1: 1.0, 2: 4.0, 3: 1.0, 4: 2.0}

    def test_shortcut_weights_after_update(self):
        spec = SSSP(source=0)
        shortcuts = compute_shortcuts_from(
            spec, FactorAdjacency(dict(NEW_EDGES)), 0, BOUNDARY
        )
        assert shortcuts == {1: 1.0, 2: 3.0, 3: 1.0, 4: 4.0}


class TestExample3IncrementalUpdate:
    def test_incremental_update_falls_back_on_lost_support(self):
        """Deleting (v3, v4) removes v4's supporting path, so the cheap
        revision update must decline and request a recomputation."""
        spec = SSSP(source=0)
        old_vector = {1: 1.0, 2: 4.0, 3: 1.0, 4: 2.0}
        updated = update_shortcut_vector(
            spec,
            FactorAdjacency(dict(OLD_EDGES)),
            FactorAdjacency(dict(NEW_EDGES)),
            0,
            BOUNDARY,
            old_vector,
            changed_sources={3},
        )
        assert updated is None

    def test_improvement_only_update_is_handled_incrementally(self):
        """Adding (v3, v2, 2) alone is an improvement; the memoized weights
        are revised in place, exactly as Section IV-B describes."""
        spec = SSSP(source=0)
        old_vector = {1: 1.0, 2: 4.0, 3: 1.0, 4: 2.0}
        improved = dict(OLD_EDGES)
        improved[3] = [(4, 1.0), (2, 2.0)]
        updated = update_shortcut_vector(
            spec,
            FactorAdjacency(dict(OLD_EDGES)),
            FactorAdjacency(improved),
            0,
            BOUNDARY,
            old_vector,
            changed_sources={3},
        )
        assert updated == {1: 1.0, 2: 3.0, 3: 1.0, 4: 2.0}


class TestFullExampleGraph:
    def test_incremental_sssp_on_example_graph(self, example_graph):
        """End-to-end run of the Figure 2 update on the example graph."""
        spec = SSSP(source=0)
        engine = LayphEngine(spec, LayphConfig(min_subgraph_size=3, seed=1))
        engine.initialize(example_graph)
        delta = GraphDelta()
        delta.delete_edge(3, 4)
        delta.add_edge(3, 2, 2.0)
        result = engine.apply_delta(delta)
        reference = run_batch(SSSP(source=0), delta.apply(example_graph)).states
        assert states_close(result.states, reference, tolerance=1e-9)
