"""Property and lifecycle tests for the dense dependency table.

``repro.incremental.dep_table.DepTable`` must be bitwise interchangeable
with the dict reference (:mod:`repro.incremental.dependency`) across the
whole selective subsystem: KickStarter's DAG trimming, RisGraph's classified
single-parent invalidation and Ingress's memoization path — identical final
states, per-delta metrics (rounds, edge activations) and dependency parents
over random edge+vertex delta sequences, in both graph orientations, under
the ``REPRO_DEP_DENSE=0`` escape hatch, and across mid-run demotion when a
delta introduces factors the array algebra cannot replay.  Layph's selective
path rides the same matrix (its upper-layer invalidation consumes the
footprint's row diff rather than the table, but must stay bitwise stable
under the same knobs).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import build_engine
from repro.engine.backends import DEP_DENSE_ENV_VAR
from repro.engine.algorithms import make_algorithm
from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.generators import erdos_renyi_graph
from repro.graph.graph import Graph
from repro.incremental import make_engine
from repro.incremental.dep_table import DepTable, dep_dense_enabled
from repro.incremental import dependency
from repro.workloads.updates import random_edge_delta

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ENGINES = ("kickstarter", "risgraph", "ingress", "layph")
ALGORITHMS = ("sssp", "bfs")


def _core(engine):
    """The object carrying the dependency stores (Ingress delegates)."""
    return getattr(engine, "_delegate", engine)


# ----------------------------------------------------------------------
# strategies (mirroring tests/test_properties.py)
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_vertices: int = 14, max_edges: int = 45):
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
                st.integers(1, 9),
            ),
            max_size=max_edges,
        )
    )
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(source, target, float(weight))
    return graph


def _random_delta(draw, graph: Graph, tag: int) -> GraphDelta:
    """Edge deletions, (weight-overwriting) insertions, vertex add/remove."""
    vertices = sorted(graph.vertices())
    delta = GraphDelta()
    existing = list(graph.edges())
    if existing:
        for source, target, _weight in draw(
            st.lists(st.sampled_from(existing), max_size=3)
        ):
            delta.delete_edge(source, target)
    if vertices:
        additions = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices),
                    st.sampled_from(vertices),
                    st.integers(1, 9),
                ),
                max_size=3,
            )
        )
        for source, target, weight in additions:
            if source != target:
                delta.add_edge(source, target, float(weight))
        if draw(st.booleans()):
            new_vertex = max(vertices) + 1 + tag
            attach = draw(st.sampled_from(vertices))
            delta.add_vertex(new_vertex, edges=[(new_vertex, attach, 2.0)])
        removable = [v for v in vertices if v != 0]
        if removable and draw(st.booleans()):
            delta.delete_vertex(draw(st.sampled_from(removable)))
    return delta


@st.composite
def oriented_graph_and_delta_sequence(draw, max_deltas: int = 3):
    directed = draw(st.booleans())
    base = draw(small_graphs())
    if directed:
        graph = base
    else:
        graph = Graph(directed=False)
        for vertex in base.vertices():
            graph.add_vertex(vertex)
        for source, target, weight in base.edges():
            graph.add_edge(source, target, weight)
    deltas = []
    current = graph
    for tag in range(draw(st.integers(min_value=1, max_value=max_deltas))):
        delta = _random_delta(draw, current, tag)
        deltas.append(delta)
        current = delta.apply(current)
    return graph, deltas


# ----------------------------------------------------------------------
# table mechanics
# ----------------------------------------------------------------------
def _chain_csr(n):
    """In-edge CSR of the path 0 -> 1 -> ... -> n-1 with unit weights."""
    graph = Graph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for vertex in range(n - 1):
        graph.add_edge(vertex, vertex + 1, 1.0)
    spec = make_algorithm("sssp", source=0)
    return spec, graph, FactorCSR.from_graph_in_edges(spec, graph)


class TestDepTableMechanics:
    def test_from_parents_roundtrip(self):
        spec, graph, csr = _chain_csr(5)
        states = {v: float(v) for v in range(5)}
        parents = {0: None, 1: 0, 2: 1, 3: 2, 4: 3}
        table = DepTable.from_parents(csr, states, parents, math.inf)
        assert table.to_parents_dict() == parents
        assert table.parent_of(3) == 2
        assert table.parent_of(0) is None
        assert table.values.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_levels_follow_forest_depth(self):
        spec, graph, csr = _chain_csr(6)
        states = {v: float(v) for v in range(6)}
        parents = {0: None, 1: 0, 2: 1, 3: 2, 4: 3, 5: 4}
        table = DepTable.from_parents(csr, states, parents, math.inf)
        levels = table.forest_levels()
        assert levels is not None
        assert levels.tolist() == [0, 1, 2, 3, 4, 5]

    def test_parent_cycle_disables_levels_but_not_taint(self):
        spec, graph, csr = _chain_csr(4)
        states = {v: 0.0 for v in range(4)}
        # 2 and 3 support each other (a zero-weight loop shape).
        parents = {0: None, 1: 0, 2: 3, 3: 2}
        table = DepTable.from_parents(csr, states, parents, math.inf)
        assert table.forest_levels() is None
        mask = table.taint_tree(np.array([table.index[0]], dtype=np.int64))
        tainted = {table.vertex_ids[i] for i in np.nonzero(mask)[0]}
        assert tainted == {0, 1}

    def test_taint_tree_matches_dict_reference(self):
        spec, graph, csr = _chain_csr(8)
        states = {v: float(v) for v in range(8)}
        parents = dependency.compute_parents(spec, graph, states)
        table = DepTable.from_parents(csr, states, parents, math.inf)
        roots = {3}
        expected = dependency.dependents_single_parent(parents, graph, roots)
        mask = table.taint_tree(
            np.array([csr.index[v] for v in roots], dtype=np.int64)
        )
        assert {table.vertex_ids[i] for i in np.nonzero(mask)[0]} == expected

    def test_taint_dag_matches_dict_reference(self):
        spec = make_algorithm("sssp", source=0)
        graph = erdos_renyi_graph(30, 120, weighted=True, seed=5)
        from repro.engine.runner import run_batch

        states = run_batch(spec, graph).states
        parents = dependency.compute_parents(spec, graph, states)
        in_csr = FactorCSR.from_graph_in_edges(spec, graph)
        out_csr = FactorCSR.from_graph(spec, graph)
        table = DepTable.from_parents(in_csr, states, parents, math.inf)
        reachable = [v for v in graph.vertices() if not math.isinf(states[v])]
        roots = set(reachable[:3])
        expected = dependency.dependents_dag(spec, graph, states, roots)
        mask = table.taint_dag(
            out_csr, np.array([in_csr.index[v] for v in roots], dtype=np.int64)
        )
        assert {table.vertex_ids[i] for i in np.nonzero(mask)[0]} == expected

    def test_remap_gathers_and_repoints_parents(self):
        spec, graph, csr = _chain_csr(5)
        states = {v: float(v) for v in range(5)}
        parents = {0: None, 1: 0, 2: 1, 3: 2, 4: 3}
        table = DepTable.from_parents(csr, states, parents, math.inf)
        # Remove vertex 2, add vertex 9.
        updated = graph.copy()
        updated.remove_vertex(2)
        updated.add_edge(9, 0, 1.0)
        new_csr = FactorCSR.from_graph_in_edges(spec, updated)
        table.remap(new_csr, {9: math.inf}, math.inf)
        mapped = table.to_parents_dict()
        # 3's parent (2) was dropped; survivors keep theirs; 9 starts fresh.
        assert mapped == {0: None, 1: 0, 3: None, 4: 3, 9: None}
        assert table.values[table.index[9]] == math.inf
        assert table.values[table.index[4]] == 4.0


# ----------------------------------------------------------------------
# engine equivalence: dense table == dict reference, bitwise
# ----------------------------------------------------------------------
def _run_sequence(engine_name, algorithm, backend, graph, deltas, dense, monkeypatch_env):
    monkeypatch_env(DEP_DENSE_ENV_VAR, "1" if dense else "0")
    engine = build_engine(engine_name, make_algorithm(algorithm, source=0), backend=backend)
    engine.initialize(graph.copy())
    outcomes = []
    for delta in deltas:
        result = engine.apply_delta(delta)
        core = _core(engine)
        if getattr(core, "dep_table", None) is not None:
            parents = core.dep_table.to_parents_dict()
        else:
            parents = dict(getattr(core, "parents", {}))
        outcomes.append(
            (
                dict(result.states),
                result.metrics.edge_activations,
                result.metrics.iterations,
                result.metrics.activations_per_round,
                parents,
            )
        )
    return engine, outcomes


class TestDenseDictEquivalence:
    """Dense table on vs off (and vs the python backend) must be bitwise."""

    @SETTINGS
    @given(
        oriented_graph_and_delta_sequence(),
        st.sampled_from(ENGINES),
        st.sampled_from(ALGORITHMS),
    )
    def test_dense_matches_dict_reference(self, data, engine_name, algorithm):
        import os

        graph, deltas = data

        def set_env(name, value):
            os.environ[name] = value

        previous = os.environ.get(DEP_DENSE_ENV_VAR)
        try:
            py_engine, py = _run_sequence(
                engine_name, algorithm, "python", graph, deltas, True, set_env
            )
            dense_engine, dense = _run_sequence(
                engine_name, algorithm, "numpy", graph, deltas, True, set_env
            )
            dict_engine, dict_ = _run_sequence(
                engine_name, algorithm, "numpy", graph, deltas, False, set_env
            )
        finally:
            if previous is None:
                os.environ.pop(DEP_DENSE_ENV_VAR, None)
            else:
                os.environ[DEP_DENSE_ENV_VAR] = previous

        # The escape hatch keeps everything on dicts; the python backend too.
        if engine_name != "layph":
            assert _core(py_engine).dep_table is None
            assert _core(dict_engine).dep_table is None
            assert _core(dict_engine).dict_deltas == len(deltas)

        for other in (dense, dict_):
            for mine, theirs in zip(other, py):
                assert mine[0] == theirs[0]  # states, bitwise
                assert mine[1] == theirs[1]  # edge activations
                assert mine[2] == theirs[2]  # rounds
                assert mine[3] == theirs[3]  # per-round activations
                assert mine[4] == theirs[4]  # dependency parents

    @SETTINGS
    @given(oriented_graph_and_delta_sequence(), st.sampled_from(ALGORITHMS))
    def test_dense_path_engages_under_numpy(self, data, algorithm):
        import os

        graph, deltas = data
        previous = os.environ.get(DEP_DENSE_ENV_VAR)
        previous_cache = os.environ.get("REPRO_CSR_CACHE")
        os.environ.pop(DEP_DENSE_ENV_VAR, None)
        os.environ["REPRO_CSR_CACHE"] = "1"  # the dense gate requires the cache
        try:
            engine = make_engine(
                "kickstarter", make_algorithm(algorithm, source=0), backend="numpy"
            )
            engine.initialize(graph.copy())
            for delta in deltas:
                engine.apply_delta(delta)
            assert engine.dense_deltas == len(deltas)
            assert engine.dict_deltas == 0
            assert engine.dep_table is not None
        finally:
            if previous is not None:
                os.environ[DEP_DENSE_ENV_VAR] = previous
            if previous_cache is None:
                os.environ.pop("REPRO_CSR_CACHE", None)
            else:
                os.environ["REPRO_CSR_CACHE"] = previous_cache


# ----------------------------------------------------------------------
# lifecycle: gates, demotion, re-promotion
# ----------------------------------------------------------------------
class TestDepTableLifecycle:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi_graph(40, 160, weighted=True, seed=2)

    def test_python_backend_stays_on_dicts(self, graph, monkeypatch):
        monkeypatch.delenv(DEP_DENSE_ENV_VAR, raising=False)
        engine = make_engine("risgraph", make_algorithm("sssp", source=0), backend="python")
        engine.initialize(graph.copy())
        engine.apply_delta(random_edge_delta(graph, 3, 3, seed=1, protect=0))
        assert engine.dep_table is None
        assert engine.dict_deltas == 1

    def test_escape_hatch_flip_demotes_next_delta(self, graph, monkeypatch):
        monkeypatch.delenv(DEP_DENSE_ENV_VAR, raising=False)
        monkeypatch.setenv("REPRO_CSR_CACHE", "1")  # the dense gate needs it
        engine = make_engine("risgraph", make_algorithm("sssp", source=0), backend="numpy")
        engine.initialize(graph.copy())
        delta = random_edge_delta(graph, 3, 3, seed=4, protect=0)
        engine.apply_delta(delta)
        assert engine.dep_table is not None
        parents_dense = engine.dep_table.to_parents_dict()
        monkeypatch.setenv(DEP_DENSE_ENV_VAR, "0")
        current = delta.apply(graph)
        engine.apply_delta(random_edge_delta(current, 3, 3, seed=5, protect=0))
        assert engine.dep_table is None
        # Demotion exported the dense parents into the dict store.
        assert set(engine.parents) == set(engine.states)
        assert parents_dense.keys() == set(current.vertices())

    def test_nan_weight_delta_demotes_and_repromores(self, graph, monkeypatch):
        monkeypatch.delenv(DEP_DENSE_ENV_VAR, raising=False)
        monkeypatch.setenv("REPRO_CSR_CACHE", "1")  # the dense gate needs it
        engine = make_engine(
            "kickstarter", make_algorithm("sssp", source=0), backend="numpy"
        )
        reference = make_engine(
            "kickstarter", make_algorithm("sssp", source=0), backend="python"
        )
        engine.initialize(graph.copy())
        reference.initialize(graph.copy())

        # A NaN weight lands in the cached CSR factors (demoting the dense
        # path) but hangs off a fresh, source-unreachable vertex so the NaN
        # never propagates — selective propagation of a NaN value would
        # otherwise round forever (NaN != NaN counts as a change each time).
        poison = GraphDelta()
        poison.add_edge(9998, 9999, math.nan)
        result = engine.apply_delta(poison)
        expected = reference.apply_delta(poison)
        # The NaN factor forced the dict reference mid-run.
        assert engine.dep_table is None
        assert engine.dict_deltas == 1

        def same(left, right):
            assert set(left) == set(right)
            for vertex in left:
                a, b = left[vertex], right[vertex]
                assert a == b or (math.isnan(a) and math.isnan(b)), (vertex, a, b)

        same(result.states, expected.states)

        # Removing the NaN edge re-promotes the table from the dict store on
        # the next clean delta (the gate inspects the pre-delta snapshots,
        # which still carry the NaN factor during the curing delta itself).
        cure = GraphDelta()
        cure.delete_edge(9998, 9999)
        result = engine.apply_delta(cure)
        expected = reference.apply_delta(cure)
        assert engine.dep_table is None
        same(result.states, expected.states)

        current = cure.apply(poison.apply(graph))
        clean = random_edge_delta(current, 3, 3, seed=9, protect=0)
        result = engine.apply_delta(clean)
        expected = reference.apply_delta(clean)
        assert engine.dep_table is not None
        assert engine.dense_deltas == 1
        same(result.states, expected.states)
        assert engine.dep_table.to_parents_dict() == reference.parents


class TestIncrementalMaintenance:
    """PR 6 satellites: the per-delta refresh re-gathers only the rows the
    engine actually wrote (no O(V) value sweep), and small parent changes
    patch the forest levels/buckets in place instead of marking them stale
    (no O(V log d) pointer doubling + O(V log V) argsort per single-edge
    delta)."""

    def _graph(self, seed=7):
        return erdos_renyi_graph(90, 450, weighted=True, seed=seed)

    def _fresh_levels(self, table):
        """Independent per-row walk to the root (None on a parent cycle)."""
        parent = table.parent_pos
        levels = np.zeros(parent.size, dtype=np.int64)
        for row in range(parent.size):
            seen = set()
            position, depth = int(parent[row]), 0
            while position >= 0 and position not in seen:
                seen.add(position)
                depth += 1
                position = int(parent[position])
            if position >= 0:
                return None
            levels[row] = depth
        return levels

    def test_dense_deltas_use_partial_value_gathers(self):
        engine = make_engine("risgraph", make_algorithm("sssp", source=0), backend="numpy")
        graph = self._graph()
        engine.initialize(graph)
        for step in range(5):
            delta = random_edge_delta(graph, 3, 2, seed=70 + step, protect=0)
            engine.apply_delta(delta)
            graph = engine.graph
        table = engine.dep_table
        assert table is not None
        assert table.partial_value_gathers == engine.dense_deltas == 5
        assert table.full_value_gathers == 0

    def test_partial_refresh_matches_dict_reference(self):
        spec = make_algorithm("sssp", source=0)
        dense = make_engine("risgraph", spec, backend="numpy")
        reference = make_engine("risgraph", spec, backend="python")
        graph = self._graph(seed=3)
        dense.initialize(graph)
        reference.initialize(graph.copy())
        for step in range(6):
            delta = random_edge_delta(graph, 3, 3, seed=500 + step, protect=0)
            got = dense.apply_delta(delta)
            want = reference.apply_delta(delta)
            assert got.states == want.states
            assert got.metrics.edge_activations == want.metrics.edge_activations
            graph = dense.graph
        assert dense.dep_table.to_parents_dict() == reference.parents
        assert dense.dep_table.full_value_gathers == 0

    def test_levels_patched_in_place_for_small_deltas(self):
        engine = make_engine("risgraph", make_algorithm("sssp", source=0), backend="numpy")
        graph = self._graph(seed=5)
        engine.initialize(graph)
        patched = False
        for step in range(8):
            delta = random_edge_delta(graph, 2, 2, seed=900 + step, protect=0)
            engine.apply_delta(delta)
            graph = engine.graph
            table = engine.dep_table
            assert table is not None
            levels = table.forest_levels()
            expected = self._fresh_levels(table)
            if levels is None:
                assert expected is None
            else:
                assert expected is not None
                assert np.array_equal(levels, expected)
            patched = patched or table.level_patches > 0
        assert patched, "no delta exercised the in-place level patch"
        # patches must dominate: rebuilds only happen on materialization or
        # when a delta drags a large subtree / remaps the id space
        assert table.level_patches >= table.level_rebuilds

    def test_patched_taint_matches_dict_reference(self):
        """The overlay buckets feed taint_tree; parity over a long sequence
        proves the moved rows are swept at their patched level."""
        spec = make_algorithm("bfs", source=0)
        dense = make_engine("kickstarter", spec, backend="numpy")
        reference = make_engine("kickstarter", spec, backend="python")
        graph = self._graph(seed=11)
        dense.initialize(graph)
        reference.initialize(graph.copy())
        for step in range(6):
            delta = random_edge_delta(graph, 3, 3, seed=1300 + step, protect=0)
            got = dense.apply_delta(delta)
            want = reference.apply_delta(delta)
            assert got.states == want.states
            assert got.metrics.edge_activations == want.metrics.edge_activations
            graph = dense.graph
