"""Integration tests: every incremental engine must match a batch restart.

This is Equation (4) of the paper — ``IA(A(G), ΔG) = A(G ⊕ ΔG)`` — checked
for every engine, every supported algorithm, and several kinds of deltas.
"""

import pytest

from repro.bench.harness import build_engine, engines_for
from repro.engine.algorithms import make_algorithm
from repro.engine.convergence import states_close
from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.graph.generators import community_graph, erdos_renyi_graph
from repro.workloads.updates import random_edge_delta, random_vertex_delta

ALL_ENGINES = ["restart", "kickstarter", "risgraph", "graphbolt", "dzig", "ingress", "layph"]
ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]


def _applicable(engine_name: str, algorithm: str) -> bool:
    spec = make_algorithm(algorithm)
    engine_cls_supports = {
        "restart": True,
        "ingress": True,
        "layph": True,
        "kickstarter": spec.is_selective(),
        "risgraph": spec.is_selective(),
        "graphbolt": not spec.is_selective(),
        "dzig": not spec.is_selective(),
    }
    return engine_cls_supports[engine_name]


def _tolerance_for(spec) -> float:
    # Selective results are path sums (near-exact); accumulative engines all
    # converge to 1e-6, so independent runs agree to a few 1e-4.
    return 1e-6 if spec.is_selective() else 1e-3


def _check(engine_name: str, algorithm: str, graph, delta: GraphDelta, source: int = 0):
    spec = make_algorithm(algorithm, source=source)
    engine = build_engine(engine_name, spec)
    engine.initialize(graph)
    result = engine.apply_delta(delta)
    reference = run_batch(make_algorithm(algorithm, source=source), delta.apply(graph)).states
    assert set(result.states) == set(reference)
    assert states_close(result.states, reference, tolerance=_tolerance_for(spec)), (
        f"{engine_name}/{algorithm} diverged from batch recomputation"
    )


@pytest.fixture(scope="module")
def base_graph():
    return community_graph(
        num_communities=5,
        community_size_range=(8, 14),
        intra_edge_probability=0.25,
        inter_edges_per_community=3,
        weighted=True,
        seed=21,
    )


@pytest.fixture(scope="module")
def sparse_graph():
    return erdos_renyi_graph(50, 180, weighted=True, seed=5)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("engine_name", ALL_ENGINES)
class TestEngineMatchesRestart:
    def test_edge_insertions_only(self, engine_name, algorithm, base_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        delta = random_edge_delta(base_graph, num_additions=8, num_deletions=0, seed=1)
        _check(engine_name, algorithm, base_graph, delta)

    def test_edge_deletions_only(self, engine_name, algorithm, base_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        delta = random_edge_delta(
            base_graph, num_additions=0, num_deletions=8, seed=2, protect=0
        )
        _check(engine_name, algorithm, base_graph, delta)

    def test_mixed_edge_updates(self, engine_name, algorithm, base_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        delta = random_edge_delta(
            base_graph, num_additions=10, num_deletions=10, seed=3, protect=0
        )
        _check(engine_name, algorithm, base_graph, delta)

    def test_mixed_updates_on_random_graph(self, engine_name, algorithm, sparse_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        delta = random_edge_delta(
            sparse_graph, num_additions=12, num_deletions=12, seed=4, protect=0
        )
        _check(engine_name, algorithm, sparse_graph, delta)

    def test_vertex_updates(self, engine_name, algorithm, base_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        delta = random_vertex_delta(
            base_graph, num_additions=3, num_deletions=3, seed=5, protect=0
        )
        _check(engine_name, algorithm, base_graph, delta)

    def test_weight_increase_by_edge_overwrite(self, engine_name, algorithm, base_graph):
        """Regression: an ADD_EDGE on an existing edge overwrites its weight;
        the implicit deletion of the old (cheaper) weight must reach the
        selective engines' invalidation step, or targets keep stale values."""
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        edges = sorted(base_graph.edges())[:6]
        delta = GraphDelta()
        for source, target, weight in edges:
            delta.add_edge(source, target, weight * 7.0)
        _check(engine_name, algorithm, base_graph, delta)

    def test_sequence_of_deltas(self, engine_name, algorithm, base_graph):
        if not _applicable(engine_name, algorithm):
            pytest.skip("engine does not support this algorithm family")
        spec = make_algorithm(algorithm, source=0)
        engine = build_engine(engine_name, spec)
        engine.initialize(base_graph)
        graph = base_graph
        for seed in (11, 12, 13):
            delta = random_edge_delta(
                graph, num_additions=5, num_deletions=5, seed=seed, protect=0
            )
            result = engine.apply_delta(delta)
            graph = delta.apply(graph)
        reference = run_batch(make_algorithm(algorithm, source=0), graph).states
        assert states_close(result.states, reference, tolerance=_tolerance_for(spec))


class TestFullRemovalDelta:
    """Regression: a delta that deletes *every* vertex leaves a zero-row CSR;
    the vectorized revision deduction must not index into it (it crashed with
    IndexError before the empty-snapshot guard) and every engine must come
    back with empty states on both backends."""

    @pytest.mark.parametrize("engine_name", ["ingress", "layph", "graphbolt", "dzig"])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_delete_every_vertex(self, engine_name, backend):
        graph = erdos_renyi_graph(12, 30, weighted=True, seed=1)
        delta = GraphDelta()
        for vertex in graph.vertices():
            delta.delete_vertex(vertex)
        engine = build_engine(engine_name, make_algorithm("pagerank"), backend=backend)
        engine.initialize(graph.copy())
        result = engine.apply_delta(delta)
        assert result.states == {}


class TestEngineSelection:
    def test_engines_for_selective(self):
        assert "kickstarter" in engines_for(make_algorithm("sssp"))
        assert "graphbolt" not in engines_for(make_algorithm("sssp"))

    def test_engines_for_accumulative(self):
        names = engines_for(make_algorithm("pagerank"))
        assert "graphbolt" in names
        assert "kickstarter" not in names

    def test_unsupported_combination_raises(self):
        with pytest.raises(ValueError):
            build_engine("kickstarter", make_algorithm("pagerank"))
        with pytest.raises(ValueError):
            build_engine("graphbolt", make_algorithm("sssp"))
