"""Unit tests for the dense memoized-iteration store (``repro.incremental.memo``).

The bitwise equivalence of the dense store against the dict reference over
random delta sequences lives in ``tests/test_properties.py``
(``TestMemoStoreEquivalence``); this module covers the table mechanics —
amortized growth, NaN masking, index remapping on vertex deltas — plus the
engine-level lifecycle: activation gates, the ``REPRO_MEMO_DENSE=0`` escape
hatch, and graceful demotion to the dict reference when the in-edge CSR
becomes unavailable mid-run.
"""

import math

import numpy as np
import pytest

from repro.engine.algorithms import PageRank, make_algorithm
from repro.engine.backends import MEMO_DENSE_ENV_VAR
from repro.graph.delta import GraphDelta
from repro.graph.generators import erdos_renyi_graph
from repro.incremental import make_engine
from repro.incremental.memo import (
    MemoRow,
    MemoTable,
    memo_dense_enabled,
    refinement_preamble,
)
from repro.workloads.updates import random_edge_delta


class TestMemoTable:
    def test_append_and_row_roundtrip(self):
        table = MemoTable([10, 20, 30])
        table.append(np.array([1.0, 2.0, 3.0]))
        table.append(np.array([4.0, 5.0, 6.0]))
        assert table.num_levels == 2
        assert table.num_vertices == 3
        assert table.row(0).tolist() == [1.0, 2.0, 3.0]
        assert table.row(-1).tolist() == [4.0, 5.0, 6.0]
        assert table.level_dict(1) == {10: 4.0, 20: 5.0, 30: 6.0}

    def test_appended_rows_are_copies(self):
        table = MemoTable([0, 1])
        values = np.array([1.0, 2.0])
        table.append(values)
        values[0] = 99.0
        assert table.row(0).tolist() == [1.0, 2.0]

    def test_amortized_doubling_growth(self):
        table = MemoTable([0], capacity=2)
        capacities = set()
        for level in range(40):
            table.append(np.array([float(level)]))
            capacities.add(table.capacity)
        assert table.num_levels == 40
        # Doubling growth: capacities are powers of two, at most ~2x levels.
        assert capacities == {2, 4, 8, 16, 32, 64}
        assert [table.row(i)[0] for i in range(40)] == [float(i) for i in range(40)]

    def test_append_copy_of(self):
        table = MemoTable([0, 1])
        table.append(np.array([1.0, 2.0]))
        table.append_copy_of(0)
        table.row(1)[0] = 7.0
        # The copy is independent of the source level.
        assert table.row(0).tolist() == [1.0, 2.0]
        assert table.row(1).tolist() == [7.0, 2.0]

    def test_level_dict_skips_nan_columns(self):
        table = MemoTable([0, 1, 2])
        table.append(np.array([1.0, math.nan, 3.0]))
        assert table.level_dict(0) == {0: 1.0, 2: 3.0}
        assert table.to_dicts() == [{0: 1.0, 2: 3.0}]

    def test_copy_is_independent_snapshot(self):
        table = MemoTable([0, 1])
        table.append(np.array([1.0, 2.0]))
        snapshot = table.copy()
        table.row(0)[0] = -1.0
        table.append(np.array([3.0, 4.0]))
        assert snapshot.num_levels == 1
        assert snapshot.row(0).tolist() == [1.0, 2.0]

    def test_remap_gathers_fills_and_drops(self):
        table = MemoTable([0, 1, 2])
        table.append(np.array([1.0, 2.0, 3.0]))
        table.append(np.array([4.0, 5.0, 6.0]))
        # Delta removes vertex 1 and adds vertex 5.
        new_ids = [0, 2, 5]
        new_index = {0: 0, 2: 1, 5: 2}
        table.remap(new_ids, new_index, fill={5: 0.15}, graph_version=17)
        assert table.vertex_ids == new_ids
        assert table.graph_version == 17
        assert table.level_dict(0) == {0: 1.0, 2: 3.0, 5: 0.15}
        assert table.level_dict(1) == {0: 4.0, 2: 6.0, 5: 0.15}
        assert table.matches_ids(new_ids)
        assert not table.matches_ids([0, 1, 2])

    def test_remap_unfilled_new_column_stays_absent(self):
        table = MemoTable([0])
        table.append(np.array([1.0]))
        table.remap([0, 9], {0: 0, 9: 1}, fill={})
        assert table.level_dict(0) == {0: 1.0}
        assert 9 not in table.row_view(0)

    def test_row_out_of_range_raises(self):
        table = MemoTable([0])
        with pytest.raises(IndexError):
            table.row(0)


class TestMemoRow:
    def test_get_set_contains_with_nan_mask(self):
        values = np.array([1.5, math.nan])
        row = MemoRow(values, {7: 0, 8: 1})
        assert row.get(7) == 1.5
        assert row.get(8) is None
        assert row.get(8, 0.25) == 0.25
        assert row.get(9, -1.0) == -1.0
        assert 7 in row and 8 not in row and 9 not in row
        row[8] = 2.5
        assert row.get(8) == 2.5
        assert values[1] == 2.5


class TestMemoKnob:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
        assert memo_dense_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(MEMO_DENSE_ENV_VAR, value)
        assert not memo_dense_enabled()

    def test_truthy_values_enable(self, monkeypatch):
        monkeypatch.setenv(MEMO_DENSE_ENV_VAR, "1")
        assert memo_dense_enabled()


class TestRefinementPreamble:
    """The dense-refinement preamble is one shared helper, not two copies."""

    def test_out_csr_and_dirty_mask(self):
        graph = erdos_renyi_graph(12, 30, weighted=True, seed=5)
        spec = make_algorithm("pagerank")
        engine = make_engine("graphbolt", spec, backend="numpy")
        engine.initialize(graph.copy())
        csr = engine.csr_cache.in_csr(spec, engine.graph)
        dirty = set(list(csr.vertex_ids)[:3])
        out_csr, dirty_mask = refinement_preamble(
            engine.csr_cache, spec, engine.graph, csr, dirty
        )
        reference_out = engine.csr_cache.out_csr(spec, engine.graph)
        if engine.csr_cache.enabled:
            assert out_csr is reference_out
        else:
            assert out_csr.vertex_ids == reference_out.vertex_ids
            assert np.array_equal(out_csr.targets, reference_out.targets)
        assert dirty_mask.dtype == bool and dirty_mask.shape == (csr.num_vertices,)
        assert {csr.vertex_ids[i] for i in np.nonzero(dirty_mask)[0]} == dirty
        _out, empty_mask = refinement_preamble(
            engine.csr_cache, spec, engine.graph, csr, set()
        )
        assert not empty_mask.any()

    @pytest.mark.parametrize("engine_name", ["graphbolt", "dzig"])
    def test_both_engines_route_through_helper(self, engine_name, monkeypatch):
        monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
        import repro.incremental.dzig as dzig_module
        import repro.incremental.graphbolt as graphbolt_module

        calls = []

        def spy(csr_cache, spec, graph, csr, structurally_dirty):
            calls.append(engine_name)
            return refinement_preamble(csr_cache, spec, graph, csr, structurally_dirty)

        monkeypatch.setattr(graphbolt_module, "refinement_preamble", spy)
        monkeypatch.setattr(dzig_module, "refinement_preamble", spy)

        graph = erdos_renyi_graph(40, 160, weighted=True, seed=2)
        engine = make_engine(engine_name, make_algorithm("pagerank"), backend="numpy")
        engine.initialize(graph.copy())
        assert engine.memo is not None
        engine.apply_delta(random_edge_delta(graph, 3, 3, seed=9, protect=0))
        assert calls, f"{engine_name} did not use the shared preamble helper"


class _NaNFactorPageRank(PageRank):
    """PageRank whose factors turn NaN on negative-weight edges.

    The declared algebra still probes clean, so the numpy BSP path activates
    on NaN-free graphs; a delta that introduces a negative weight then makes
    the in-edge CSR unusable and must demote the dense store gracefully.
    """

    def edge_factor(self, graph, source, target):
        if graph.out_neighbors(source).get(target, 1.0) < 0:
            return math.nan
        return super().edge_factor(graph, source, target)


class TestEngineLifecycle:
    @pytest.fixture()
    def graph(self):
        return erdos_renyi_graph(40, 160, weighted=True, seed=2)

    @pytest.mark.parametrize("engine_name", ["graphbolt", "dzig"])
    def test_dense_store_active_under_numpy(self, graph, engine_name, monkeypatch):
        monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
        engine = make_engine(engine_name, make_algorithm("pagerank"), backend="numpy")
        engine.initialize(graph.copy())
        assert engine.memo is not None
        assert engine.memo.graph_version == engine.graph.version
        assert engine.memo.num_levels == len(engine.iterations)

    @pytest.mark.parametrize("engine_name", ["graphbolt", "dzig"])
    def test_python_backend_stays_on_dicts(self, graph, engine_name):
        engine = make_engine(engine_name, make_algorithm("pagerank"), backend="python")
        engine.initialize(graph.copy())
        assert engine.memo is None
        assert engine.iterations

    @pytest.mark.parametrize("engine_name", ["graphbolt", "dzig"])
    def test_escape_hatch_matches_dense_bitwise(self, graph, engine_name, monkeypatch):
        deltas = []
        current = graph
        for seed in (1, 2, 3):
            delta = random_edge_delta(current, 4, 4, seed=seed, protect=0)
            deltas.append(delta)
            current = delta.apply(current)

        def run(dense: bool):
            if dense:
                monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
            else:
                monkeypatch.setenv(MEMO_DENSE_ENV_VAR, "0")
            engine = make_engine(engine_name, make_algorithm("pagerank"), backend="numpy")
            initial = engine.initialize(graph.copy())
            results = [engine.apply_delta(delta) for delta in deltas]
            return engine, initial, results

        dense_engine, dense_init, dense_results = run(dense=True)
        dict_engine, dict_init, dict_results = run(dense=False)
        assert dense_engine.memo is not None
        assert dict_engine.memo is None
        assert dense_init.states == dict_init.states
        for dense_result, dict_result in zip(dense_results, dict_results):
            assert dense_result.states == dict_result.states
            assert (
                dense_result.metrics.activations_per_round
                == dict_result.metrics.activations_per_round
            )
            assert (
                dense_result.metrics.active_vertices_per_round
                == dict_result.metrics.active_vertices_per_round
            )
        assert dense_engine.iterations == dict_engine.iterations

    @pytest.mark.parametrize("engine_name", ["graphbolt", "dzig"])
    def test_nan_factor_delta_demotes_to_dict_reference(self, graph, engine_name, monkeypatch):
        monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
        spec = _NaNFactorPageRank()
        engine = make_engine(engine_name, spec, backend="numpy")
        engine.initialize(graph.copy())
        assert engine.memo is not None

        reference = make_engine(engine_name, _NaNFactorPageRank(), backend="python")
        reference.initialize(graph.copy())

        source = next(iter(graph.vertices()))
        target = next(t for t in graph.out_neighbors(source))
        delta = GraphDelta()
        delta.add_edge(source, target, -5.0)

        result = engine.apply_delta(delta)
        expected = reference.apply_delta(delta)
        # The dense store demoted itself and refinement continued on dicts.
        assert engine.memo is None
        assert engine.iterations

        def same(left, right):
            assert set(left) == set(right)
            for vertex in left:
                a, b = left[vertex], right[vertex]
                assert a == b or (math.isnan(a) and math.isnan(b)), (vertex, a, b)

        # The NaN factor propagates NaN values identically on both paths.
        same(result.states, expected.states)
        assert len(engine.iterations) == len(reference.iterations)
        for dense_level, dict_level in zip(engine.iterations, reference.iterations):
            same(dense_level, dict_level)

    def test_dense_escape_hatch_flip_demotes_next_delta(self, graph, monkeypatch):
        monkeypatch.delenv(MEMO_DENSE_ENV_VAR, raising=False)
        engine = make_engine("graphbolt", make_algorithm("pagerank"), backend="numpy")
        engine.initialize(graph.copy())
        assert engine.memo is not None
        levels_before = engine.iterations
        monkeypatch.setenv(MEMO_DENSE_ENV_VAR, "0")
        delta = random_edge_delta(graph, 3, 3, seed=6, protect=0)
        engine.apply_delta(delta)
        assert engine.memo is None
        assert len(engine.iterations) >= len(levels_before)
