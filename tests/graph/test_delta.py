"""Unit tests for GraphDelta (ΔG) construction and application."""

import pytest

from repro.graph.delta import EdgeUpdate, GraphDelta, UpdateKind, VertexUpdate
from repro.graph.graph import Graph


@pytest.fixture
def base_graph() -> Graph:
    return Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0), (2, 0, 3.0)])


class TestGraphDelta:
    def test_apply_edge_addition(self, base_graph):
        delta = GraphDelta()
        delta.add_edge(0, 2, 5.0)
        updated = delta.apply(base_graph)
        assert updated.has_edge(0, 2)
        assert not base_graph.has_edge(0, 2)  # original untouched

    def test_apply_edge_deletion(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(1, 2)
        updated = delta.apply(base_graph)
        assert not updated.has_edge(1, 2)
        assert base_graph.has_edge(1, 2)

    def test_apply_in_place(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(1, 2)
        returned = delta.apply(base_graph, in_place=True)
        assert returned is base_graph
        assert not base_graph.has_edge(1, 2)

    def test_deleting_missing_edge_is_noop(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(0, 2)
        updated = delta.apply(base_graph)
        assert updated.num_edges() == base_graph.num_edges()

    def test_vertex_addition_with_edges(self, base_graph):
        delta = GraphDelta()
        delta.add_vertex(9, edges=[(9, 0, 1.0), (2, 9, 4.0)])
        updated = delta.apply(base_graph)
        assert updated.has_vertex(9)
        assert updated.has_edge(9, 0)
        assert updated.has_edge(2, 9)

    def test_vertex_deletion_removes_incident_edges(self, base_graph):
        delta = GraphDelta()
        delta.delete_vertex(1)
        updated = delta.apply(base_graph)
        assert not updated.has_vertex(1)
        assert not updated.has_edge(0, 1)
        assert updated.has_edge(2, 0)

    def test_weight_change_as_delete_then_add(self, base_graph):
        delta = GraphDelta.from_edge_changes(
            additions=[(0, 1, 9.0)], deletions=[(0, 1)]
        )
        updated = delta.apply(base_graph)
        assert updated.edge_weight(0, 1) == 9.0

    def test_added_and_deleted_edges_report(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(0, 1)
        delta.add_edge(1, 0, 4.0)
        delta.delete_vertex(2)
        added = delta.added_edges(base_graph)
        deleted = delta.deleted_edges(base_graph)
        assert (1, 0, 4.0) in added
        assert (0, 1, 1.0) in deleted
        # vertex deletion expands to its incident edges with old weights
        assert (1, 2, 2.0) in deleted
        assert (2, 0, 3.0) in deleted

    def test_touched_vertices(self, base_graph):
        delta = GraphDelta()
        delta.add_edge(0, 2, 1.0)
        delta.delete_vertex(1)
        touched = delta.touched_vertices(base_graph)
        assert {0, 1, 2} <= touched

    def test_len_and_empty(self):
        delta = GraphDelta()
        assert delta.is_empty()
        delta.add_edge(0, 1)
        assert len(delta) == 1
        assert not delta.is_empty()

    def test_inverted_roundtrip(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(0, 1)
        delta.add_edge(0, 2, 7.0)
        updated = delta.apply(base_graph)
        inverse = delta.inverted(base_graph)
        restored = inverse.apply(updated)
        assert restored == base_graph

    def test_edge_update_kind_validation(self):
        with pytest.raises(ValueError):
            EdgeUpdate(UpdateKind.ADD_VERTEX, 0, 1)

    def test_vertex_update_kind_validation(self):
        with pytest.raises(ValueError):
            VertexUpdate(UpdateKind.ADD_EDGE, 0)

    def test_unit_updates_order(self):
        delta = GraphDelta()
        delta.add_edge(0, 1)
        delta.add_vertex(5)
        updates = list(delta.unit_updates())
        assert isinstance(updates[0], VertexUpdate)
        assert isinstance(updates[1], EdgeUpdate)


class TestDeletedEdgesDeduplication:
    """``deleted_edges`` must report each deleted edge exactly once.

    Regression tests: deleting a vertex with a self-loop used to emit the
    loop twice (once from the out-adjacency, once from the in-adjacency),
    which double-cancelled its contribution in the revision-message
    machinery.
    """

    def test_vertex_delete_with_self_loop_reports_loop_once(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 1, 2.0), (1, 2, 3.0)])
        delta = GraphDelta()
        delta.delete_vertex(1)
        deleted = delta.deleted_edges(graph)
        assert deleted.count((1, 1, 2.0)) == 1
        assert sorted(deleted) == [(0, 1, 1.0), (1, 1, 2.0), (1, 2, 3.0)]

    def test_repeated_edge_delete_reports_edge_once(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        delta = GraphDelta()
        delta.delete_edge(0, 1)
        delta.delete_edge(0, 1)
        assert delta.deleted_edges(graph) == [(0, 1, 1.0)]

    def test_edge_delete_then_vertex_delete_reports_edge_once(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        delta = GraphDelta()
        delta.delete_edge(0, 1)
        delta.delete_vertex(1)
        deleted = delta.deleted_edges(graph)
        assert sorted(deleted) == [(0, 1, 1.0), (1, 2, 2.0)]

    def test_self_loop_vertex_delete_keeps_engines_correct(self):
        """End-to-end through the real ``deleted_edges`` consumer: the
        dependency-based selective engines (``selective_base``) drive their
        invalidation off the deduplicated deletion list, and must stay exact
        under a vertex deletion whose victim carries a self-loop."""
        from repro.engine.algorithms import make_algorithm
        from repro.engine.convergence import states_close
        from repro.engine.runner import run_batch
        from repro.incremental.kickstarter import KickStarterEngine

        graph = Graph.from_edges(
            [(0, 1, 1.0), (1, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 3, 1.0)]
        )
        delta = GraphDelta()
        delta.delete_vertex(1)
        engine = KickStarterEngine(make_algorithm("sssp", source=0))
        engine.initialize(graph)
        result = engine.apply_delta(delta)
        reference = run_batch(
            make_algorithm("sssp", source=0), delta.apply(graph)
        ).states
        assert states_close(result.states, reference, tolerance=1e-9)


class TestValidate:
    """``GraphDelta.validate`` / ``update_intrinsic_problems`` contracts."""

    def test_clean_delta_validates_empty(self, base_graph):
        delta = GraphDelta()
        delta.add_edge(0, 2, 1.5)
        delta.delete_edge(1, 2)
        assert delta.validate() == []
        assert delta.validate(base_graph) == []

    def test_nonfinite_weights_are_intrinsic_problems(self):
        from repro.graph.delta import update_intrinsic_problems

        for bad in (float("nan"), float("inf"), float("-inf")):
            update = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, bad)
            problems = update_intrinsic_problems(update)
            assert problems and "non-finite" in problems[0]
            delta = GraphDelta()
            delta.edge_updates.append(update)
            assert delta.validate()  # graph-independent: no graph needed

    def test_vertex_attach_inconsistencies(self):
        from repro.graph.delta import update_intrinsic_problems

        # attach edge not incident to the inserted vertex
        floating = VertexUpdate(UpdateKind.ADD_VERTEX, 5, ((1, 2, 1.0),))
        assert update_intrinsic_problems(floating)
        # delete carrying attach edges is self-inconsistent
        loaded = VertexUpdate(UpdateKind.DELETE_VERTEX, 5, ((5, 1, 1.0),))
        assert update_intrinsic_problems(loaded)
        # non-finite attach weight
        poisoned = VertexUpdate(UpdateKind.ADD_VERTEX, 5, ((5, 1, float("nan")),))
        assert update_intrinsic_problems(poisoned)
        # clean attach passes
        clean = VertexUpdate(UpdateKind.ADD_VERTEX, 5, ((5, 1, 1.0), (2, 5, 0.5)))
        assert update_intrinsic_problems(clean) == []

    def test_contextual_dangling_deletes(self, base_graph):
        delta = GraphDelta()
        delta.delete_edge(0, 2)  # not present in base_graph
        assert delta.validate() == []  # intrinsically fine
        problems = delta.validate(base_graph)
        assert problems and "missing edge" in problems[0]

        vdelta = GraphDelta()
        vdelta.vertex_updates.append(VertexUpdate(UpdateKind.DELETE_VERTEX, 99))
        assert any("missing vertex" in p for p in vdelta.validate(base_graph))

    def test_contextual_tracking_follows_apply_order(self, base_graph):
        # add then delete within one delta: the delete's target exists by
        # the time it runs, so the delta is contextually clean
        delta = GraphDelta()
        delta.add_edge(0, 2, 1.0)
        delta.delete_edge(0, 2)
        assert delta.validate(base_graph) == []
        # delete after a vertex delete removed the edge implicitly
        chained = GraphDelta()
        chained.vertex_updates.append(VertexUpdate(UpdateKind.DELETE_VERTEX, 1))
        chained.delete_edge(0, 1)
        problems = chained.validate(base_graph)
        assert problems and "missing edge" in problems[0]
