"""Conformance suite for the shared per-delta footprint.

``repro.graph.footprint.DeltaFootprint`` is the single owner of every
per-delta scan (vertex-membership diff, changed out-adjacencies, changed
factor maps, structurally-dirty targets).  This module pins it down from two
sides:

* **field conformance** — over random delta sequences (edge and vertex
  deltas, overwriting ``ADD_EDGE`` re-insertions, both graph orientations)
  every footprint field must equal a brute-force recomputation from the two
  graph versions, for all four algorithms, both with the cached CSR
  snapshots (the array row-diff path) and without them (the dict fallback);
* **engine conformance** — every incremental engine must produce bitwise
  identical states, rounds and edge activations with the footprint enabled
  and with the ``REPRO_DELTA_FOOTPRINT=0`` escape hatch set, on both
  propagation backends.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.footprint import (
    FOOTPRINT_ENV_VAR,
    DeltaFootprint,
    footprint_enabled,
)
from repro.graph.graph import Graph
from repro.incremental.revision import changed_out_sources

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALGORITHMS = ("sssp", "bfs", "pagerank", "php")


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_vertices: int = 12, max_edges: int = 36):
    """Random small weighted graphs (either orientation), vertex 0 present."""
    directed = draw(st.booleans())
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
                st.integers(1, 9),
            ),
            max_size=max_edges,
        )
    )
    graph = Graph(directed=directed)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(source, target, float(weight))
    return graph


def _random_delta(draw, graph: Graph, tag: int) -> GraphDelta:
    """One random batch update mixing every unit-update kind.

    Deliberately includes overwriting ``ADD_EDGE`` re-insertions of existing
    edges (the weight-change encoding), vertex insertions with attaching
    edges, and vertex deletions.
    """
    vertices = sorted(graph.vertices())
    delta = GraphDelta()
    existing = list(graph.edges())
    if existing:
        for source, target, _weight in draw(
            st.lists(st.sampled_from(existing), max_size=3)
        ):
            delta.delete_edge(source, target)
        # Overwriting re-insertion: an ADD_EDGE on an existing edge.
        if draw(st.booleans()):
            source, target, weight = draw(st.sampled_from(existing))
            delta.add_edge(source, target, float(weight) + 1.0)
    if vertices:
        for source, target, weight in draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices),
                    st.sampled_from(vertices),
                    st.integers(1, 9),
                ),
                max_size=3,
            )
        ):
            if source != target:
                delta.add_edge(source, target, float(weight))
        if draw(st.booleans()):
            new_vertex = max(vertices) + 1 + tag
            attach = draw(st.sampled_from(vertices))
            delta.add_vertex(new_vertex, edges=[(new_vertex, attach, 2.0)])
        removable = [v for v in vertices if v != 0]
        if removable and draw(st.booleans()):
            delta.delete_vertex(draw(st.sampled_from(removable)))
    return delta


@st.composite
def graph_and_delta_sequence(draw, max_deltas: int = 3):
    graph = draw(small_graphs())
    deltas = []
    current = graph
    for tag in range(draw(st.integers(min_value=1, max_value=max_deltas))):
        delta = _random_delta(draw, current, tag)
        deltas.append(delta)
        current = delta.apply(current)
    return graph, deltas


# ----------------------------------------------------------------------
# brute-force references (full scans over both graphs)
# ----------------------------------------------------------------------
def _brute_dirty_targets(spec, old_graph: Graph, new_graph: Graph):
    dirty = set()
    for vertex in new_graph.vertices():
        old_in = (
            {
                u: spec.edge_factor(old_graph, u, vertex)
                for u in old_graph.in_neighbors(vertex)
            }
            if old_graph.has_vertex(vertex)
            else None
        )
        new_in = {
            u: spec.edge_factor(new_graph, u, vertex)
            for u in new_graph.in_neighbors(vertex)
        }
        if old_in != new_in:
            dirty.add(vertex)
    return dirty


def _brute_changed_factor_sources(spec, old_graph: Graph, new_graph: Graph):
    changed = set()
    for vertex in set(old_graph.vertices()) | set(new_graph.vertices()):
        old_out = (
            {
                t: spec.edge_factor(old_graph, vertex, t)
                for t in old_graph.out_neighbors(vertex)
            }
            if old_graph.has_vertex(vertex)
            else {}
        )
        new_out = (
            {
                t: spec.edge_factor(new_graph, vertex, t)
                for t in new_graph.out_neighbors(vertex)
            }
            if new_graph.has_vertex(vertex)
            else {}
        )
        if old_out != new_out:
            changed.add(vertex)
    return changed


def _footprints(spec, old_graph, new_graph, delta):
    """The same delta's footprint with CSR snapshots and without."""
    with_csr = DeltaFootprint(
        spec,
        old_graph,
        new_graph,
        delta,
        old_out_csr=FactorCSR.from_graph(spec, old_graph),
        new_out_csr=FactorCSR.from_graph(spec, new_graph),
        old_in_csr=FactorCSR.from_graph_in_edges(spec, old_graph),
        new_in_csr=FactorCSR.from_graph_in_edges(spec, new_graph),
    )
    without_csr = DeltaFootprint(spec, old_graph, new_graph, delta)
    return with_csr, without_csr


class TestFootprintConformance:
    """Footprint fields == brute-force recomputation, arrays == set views."""

    @SETTINGS
    @given(graph_and_delta_sequence(), st.sampled_from(ALGORITHMS))
    def test_fields_match_brute_force(self, data, algorithm):
        graph, deltas = data
        spec = make_algorithm(algorithm, source=0)
        current = graph
        for delta in deltas:
            updated = delta.apply(current)
            old_vertices = set(current.vertices())
            new_vertices = set(updated.vertices())
            expected_added = new_vertices - old_vertices
            expected_removed = old_vertices - new_vertices
            expected_changed = changed_out_sources(current, updated)
            expected_dirty = _brute_dirty_targets(spec, current, updated)
            expected_factor_sources = _brute_changed_factor_sources(
                spec, current, updated
            )
            for footprint in _footprints(spec, current, updated, delta):
                assert footprint.touched_sources == delta.touched_sources(current)
                assert footprint.touched_vertices == delta.touched_vertices(current)
                assert footprint.added_vertices == expected_added
                assert footprint.removed_vertices == expected_removed
                assert footprint.changed_sources == expected_changed
                assert footprint.dirty_targets == expected_dirty
                assert footprint.changed_factor_sources == expected_factor_sources
            current = updated

    @SETTINGS
    @given(graph_and_delta_sequence(max_deltas=2), st.sampled_from(ALGORITHMS))
    def test_array_views_match_sets(self, data, algorithm):
        graph, deltas = data
        spec = make_algorithm(algorithm, source=0)
        current = graph
        for delta in deltas:
            updated = delta.apply(current)
            for footprint in _footprints(spec, current, updated, delta):
                for array, values in (
                    (footprint.changed_source_array, footprint.changed_sources),
                    (
                        footprint.changed_factor_source_array,
                        sorted(footprint.changed_factor_sources),
                    ),
                    (footprint.dirty_target_array, sorted(footprint.dirty_targets)),
                    (footprint.added_vertex_array, sorted(footprint.added_vertices)),
                    (
                        footprint.removed_vertex_array,
                        sorted(footprint.removed_vertices),
                    ),
                ):
                    assert array.dtype == np.int64
                    assert array.tolist() == list(values)
            current = updated


# ----------------------------------------------------------------------
# the escape hatch: engines bitwise identical with the footprint off
# ----------------------------------------------------------------------
def _run_sequence(engine_name, algorithm, backend, graph, deltas, enabled):
    previous = os.environ.get(FOOTPRINT_ENV_VAR)
    os.environ[FOOTPRINT_ENV_VAR] = "1" if enabled else "0"
    try:
        engine = build_engine(
            engine_name, make_algorithm(algorithm, source=0), backend=backend
        )
        engine.initialize(graph.copy())
        outcomes = []
        for delta in deltas:
            result = engine.apply_delta(delta)
            outcomes.append(
                (
                    result.states,
                    result.metrics.edge_activations,
                    result.metrics.iterations,
                    tuple(result.metrics.activations_per_round),
                    tuple(result.metrics.active_vertices_per_round),
                    result.metrics.vertex_updates,
                )
            )
        return outcomes
    finally:
        if previous is None:
            del os.environ[FOOTPRINT_ENV_VAR]
        else:
            os.environ[FOOTPRINT_ENV_VAR] = previous


class TestFootprintEngineEquivalence:
    """REPRO_DELTA_FOOTPRINT=0 must reproduce every engine bitwise."""

    @SETTINGS
    @given(
        graph_and_delta_sequence(),
        st.sampled_from(["ingress", "graphbolt", "dzig", "layph"]),
        st.sampled_from(["pagerank", "php"]),
    )
    def test_accumulative_engines_identical(self, data, engine_name, algorithm):
        graph, deltas = data
        for backend in ("python", "numpy"):
            on = _run_sequence(engine_name, algorithm, backend, graph, deltas, True)
            off = _run_sequence(engine_name, algorithm, backend, graph, deltas, False)
            assert on == off, (engine_name, algorithm, backend)

    @SETTINGS
    @given(
        graph_and_delta_sequence(),
        st.sampled_from(["ingress", "kickstarter", "risgraph", "layph"]),
        st.sampled_from(["sssp", "bfs"]),
    )
    def test_selective_engines_identical(self, data, engine_name, algorithm):
        graph, deltas = data
        for backend in ("python", "numpy"):
            on = _run_sequence(engine_name, algorithm, backend, graph, deltas, True)
            off = _run_sequence(engine_name, algorithm, backend, graph, deltas, False)
            assert on == off, (engine_name, algorithm, backend)


# ----------------------------------------------------------------------
# the knob itself
# ----------------------------------------------------------------------
class TestFootprintKnob:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv(FOOTPRINT_ENV_VAR, raising=False)
        assert footprint_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", "no"])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(FOOTPRINT_ENV_VAR, value)
        assert not footprint_enabled()

    def test_truthy_values_enable(self, monkeypatch):
        monkeypatch.setenv(FOOTPRINT_ENV_VAR, "1")
        assert footprint_enabled()
