"""Unit tests for the core Graph structure."""

import pytest

from repro.graph.graph import Edge, Graph


class TestGraphBasics:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_vertices() == 0
        assert graph.num_edges() == 0
        assert not graph.has_vertex(0)

    def test_add_vertex_idempotent(self):
        graph = Graph()
        graph.add_vertex(1)
        graph.add_vertex(1)
        assert graph.num_vertices() == 1

    def test_add_edge_creates_endpoints(self):
        graph = Graph()
        graph.add_edge(1, 2, 3.5)
        assert graph.has_vertex(1)
        assert graph.has_vertex(2)
        assert graph.edge_weight(1, 2) == 3.5

    def test_add_edge_overwrites_weight(self):
        graph = Graph()
        graph.add_edge(1, 2, 1.0)
        graph.add_edge(1, 2, 9.0)
        assert graph.num_edges() == 1
        assert graph.edge_weight(1, 2) == 9.0

    def test_in_and_out_neighbors(self):
        graph = Graph.from_edges([(0, 1, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
        assert set(graph.out_neighbors(0)) == {1, 2}
        assert set(graph.in_neighbors(1)) == {0, 2}
        assert graph.out_degree(0) == 2
        assert graph.in_degree(1) == 2
        assert graph.degree(1) == 2

    def test_remove_edge(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.has_edge(1, 2)
        assert 1 not in graph.in_neighbors(1)

    def test_remove_missing_edge_raises(self):
        graph = Graph()
        graph.add_edge(0, 1)
        with pytest.raises(KeyError):
            graph.remove_edge(1, 0)

    def test_remove_vertex_drops_incident_edges(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        graph.remove_vertex(1)
        assert not graph.has_vertex(1)
        assert graph.num_edges() == 1
        assert graph.has_edge(2, 0)

    def test_remove_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(KeyError):
            graph.remove_vertex(5)

    def test_update_edge_weight(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        graph.update_edge_weight(0, 1, 7.0)
        assert graph.edge_weight(0, 1) == 7.0
        assert graph.in_neighbors(1)[0] == 7.0

    def test_update_missing_edge_weight_raises(self):
        graph = Graph()
        with pytest.raises(KeyError):
            graph.update_edge_weight(0, 1, 2.0)

    def test_edge_weight_missing_raises(self):
        graph = Graph()
        graph.add_vertex(0)
        with pytest.raises(KeyError):
            graph.edge_weight(0, 1)

    def test_copy_is_independent(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        clone = graph.copy()
        clone.add_edge(1, 2, 1.0)
        assert graph.num_edges() == 1
        assert clone.num_edges() == 2
        assert graph == Graph.from_edges([(0, 1, 1.0)])

    def test_equality(self):
        a = Graph.from_edges([(0, 1, 1.0), (1, 2, 2.0)])
        b = Graph.from_edges([(1, 2, 2.0), (0, 1, 1.0)])
        assert a == b
        b.add_edge(2, 0, 1.0)
        assert a != b

    def test_total_out_weight(self):
        graph = Graph.from_edges([(0, 1, 2.0), (0, 2, 3.0)])
        assert graph.total_out_weight(0) == 5.0
        assert graph.total_out_weight(1) == 0.0

    def test_subgraph(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_vertices() == 3
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)
        assert not sub.has_edge(2, 3)

    def test_reverse(self):
        graph = Graph.from_edges([(0, 1, 2.0)])
        reversed_graph = graph.reverse()
        assert reversed_graph.has_edge(1, 0)
        assert not reversed_graph.has_edge(0, 1)
        assert reversed_graph.edge_weight(1, 0) == 2.0

    def test_undirected_graph_mirrors_edges(self):
        graph = Graph(directed=False)
        graph.add_edge(0, 1, 4.0)
        assert graph.has_edge(1, 0)
        graph.remove_edge(1, 0)
        assert not graph.has_edge(0, 1)

    def test_undirected_view_neighbors(self):
        graph = Graph.from_edges([(0, 1, 1.0), (2, 0, 3.0)])
        merged = graph.undirected_view_neighbors(0)
        assert merged == {1: 1.0, 2: 3.0}

    def test_contains_and_len(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        assert 0 in graph
        assert 5 not in graph
        assert len(graph) == 2

    def test_max_vertex_id(self):
        graph = Graph()
        assert graph.max_vertex_id() is None
        graph.add_edge(3, 7)
        assert graph.max_vertex_id() == 7

    def test_from_unweighted_edges(self):
        graph = Graph.from_unweighted_edges([(0, 1), (1, 2)])
        assert graph.edge_weight(0, 1) == 1.0
        assert graph.num_edges() == 2

    def test_edge_list_roundtrip(self):
        edges = [(0, 1, 1.5), (1, 2, 2.5)]
        graph = Graph.from_edges(edges)
        assert sorted(graph.edge_list()) == sorted(edges)


class TestEdge:
    def test_reversed(self):
        edge = Edge(1, 2, 3.0)
        flipped = edge.reversed()
        assert flipped.source == 2
        assert flipped.target == 1
        assert flipped.weight == 3.0
