"""The service suite exercises WAL recovery and the durable store, so it
runs with storage force-enabled and autosave off, exactly like the storage
suite (a knob leg disabling the store would otherwise fail every recovery
test here instead of testing the disabled behavior)."""

import pytest


@pytest.fixture(autouse=True)
def _storage_knobs_baseline(monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "1")
    monkeypatch.setenv("REPRO_STORE_AUTOSAVE", "0")
