"""Unit and lifecycle coverage for the streaming update service.

The chaos harness (``test_chaos.py``) proves end-to-end crash equivalence;
this file pins the individual contracts: WAL round-trips and sequencing,
submit acknowledgement and idempotent resubmits, backpressure, poison
quarantine into a durable dead-letter queue, transient-failure retries,
the watchdog restore path, and snapshot immutability on the read path.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind, VertexUpdate
from repro.graph.generators import community_graph
from repro.parallel.executor import WorkerPoolError
from repro.service import (
    Event,
    EventLog,
    FaultInjector,
    ServiceDead,
    ServiceKilled,
    ServiceOverloaded,
    UpdateService,
)
from repro.storage.edge_store import StoreError
from repro.workloads.updates import poisoned_event_stream


def _graph(seed=5):
    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


def _engine(graph, name="kickstarter", algorithm="sssp"):
    engine = build_engine(name, make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    return engine


def _service(tmp_path, graph=None, **kwargs):
    graph = graph if graph is not None else _graph()
    kwargs.setdefault("batch_size", 8)
    return UpdateService(_engine(graph), str(tmp_path / "svc"), **kwargs), graph


def _clean_stream(graph, n=32, seed=3):
    return poisoned_event_stream(graph, num_events=n, seed=seed, poison_rate=0.0, protect=0)


# ----------------------------------------------------------------------
# WAL round-trips
# ----------------------------------------------------------------------
def test_event_log_roundtrips_bit_exact(tmp_path):
    path = str(tmp_path / "events.log")
    updates = [
        EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 0.1 + 0.2),  # not representable
        EdgeUpdate(UpdateKind.ADD_EDGE, 3, 4, float("nan")),
        EdgeUpdate(UpdateKind.ADD_EDGE, 5, 6, float("inf")),
        EdgeUpdate(UpdateKind.DELETE_EDGE, 1, 2),
        VertexUpdate(UpdateKind.ADD_VERTEX, 7, ((7, 1, -0.0), (2, 7, 1e-308))),
        VertexUpdate(UpdateKind.DELETE_VERTEX, 7),
    ]
    log = EventLog(path)
    for seq, update in enumerate(updates, start=1):
        log.append(Event(seq, update))
    log.close()
    events, discarded = EventLog(path).read()
    assert discarded == 0
    assert [event.seq for event in events] == [1, 2, 3, 4, 5, 6]
    for event, update in zip(events, updates):
        assert repr(event.update) == repr(update)  # repr: NaN-safe equality
    weights = [event.update.weight for event in events[:3]]
    assert weights[0].hex() == (0.1 + 0.2).hex()
    assert math.isnan(weights[1]) and math.isinf(weights[2])


def test_event_log_discards_torn_tail_and_seq_gaps(tmp_path):
    path = str(tmp_path / "events.log")
    log = EventLog(path)
    log.append(Event(1, EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 1.0)))
    log.append(Event(2, EdgeUpdate(UpdateKind.ADD_EDGE, 2, 3, 1.0)))
    log.close()
    with open(path, "ab") as handle:
        handle.write(b"deadbeef {torn")  # crash mid-append
    events, discarded = EventLog(path).read()
    assert [event.seq for event in events] == [1, 2]
    assert discarded == 1

    gapped = EventLog(str(tmp_path / "gap.log"))
    gapped.append(Event(1, EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 1.0)))
    gapped.append(Event(3, EdgeUpdate(UpdateKind.ADD_EDGE, 2, 3, 1.0)))
    gapped.append(Event(4, EdgeUpdate(UpdateKind.ADD_EDGE, 3, 4, 1.0)))
    gapped.close()
    events, discarded = EventLog(str(tmp_path / "gap.log")).read()
    assert [event.seq for event in events] == [1]  # stop at the gap
    assert discarded == 2


# ----------------------------------------------------------------------
# submit: ack, idempotent resubmit, lifecycle
# ----------------------------------------------------------------------
def test_submit_acks_and_resubmit_is_idempotent(tmp_path):
    service, graph = _service(tmp_path)
    try:
        stream = _clean_stream(graph, 16)
        seqs = [service.submit(update) for update in stream]
        assert seqs == list(range(1, 17))
        # a client that lost the ack resubmits with its explicit seq: no-op
        assert service.submit(stream[4], seq=5) == 5
        service.drain()
        assert service.health()["last_applied_seq"] == 16
        assert service.stats.events_submitted == 16  # the dup was not re-walled
        with pytest.raises(ValueError, match="gap"):
            service.submit(stream[0], seq=99)
    finally:
        service.close()
    with pytest.raises(ServiceDead):
        service.submit(stream[0])


def test_fresh_start_refuses_existing_wal(tmp_path):
    service, graph = _service(tmp_path)
    service.submit(_clean_stream(graph, 4)[0])
    service.drain()
    service.close()
    with pytest.raises(StoreError, match="recover"):
        UpdateService(_engine(graph), str(tmp_path / "svc"))


def test_backpressure_raises_overloaded(tmp_path):
    release = threading.Event()
    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: release.wait(10.0), times=1)
    service, graph = _service(tmp_path, batch_size=1, max_queue=2, faults=faults)
    try:
        stream = _clean_stream(graph, 8)
        service.submit(stream[0])  # taken by the writer, stuck in mid_apply
        deadline = time.monotonic() + 5.0
        while service.health()["queue_depth"] < 2 and time.monotonic() < deadline:
            try:
                service.submit(stream[len(stream) - 1], seq=None, timeout=0.05)
            except ServiceOverloaded:
                break
            time.sleep(0.01)
        with pytest.raises(ServiceOverloaded):
            service.submit(stream[3], timeout=0.1)
        release.set()
        service.drain()
        # once the writer drained the queue, submits flow again
        service.submit(stream[4])
        service.drain()
    finally:
        release.set()
        service.close()


# ----------------------------------------------------------------------
# quarantine and the dead-letter queue
# ----------------------------------------------------------------------
def test_poison_event_quarantines_to_durable_dlq(tmp_path):
    service, graph = _service(tmp_path)
    try:
        good = _clean_stream(graph, 8)
        poison = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, float("nan"))
        for update in good[:4]:
            service.submit(update)
        poison_seq = service.submit(poison)
        for update in good[4:]:
            service.submit(update)
        service.drain()
        entries = service.dlq.entries()
        assert [entry.seq for entry in entries] == [poison_seq]
        assert entries[0].kind == "intrinsic"
        assert "non-finite" in entries[0].problems[0]
        assert service.stats.quarantined_intrinsic == 1
        # the healthy events around the poison all applied
        assert service.health()["last_applied_seq"] == 9
        snapshot = service.snapshot()
        assert snapshot.quarantined >= 1
    finally:
        service.close()
    # the dead-letter log is durable: recovery re-enumerates it
    recovered = UpdateService.recover(str(tmp_path / "svc"))
    try:
        assert recovered.dlq.seqs() == [poison_seq]
        assert recovered.dlq.entries()[0].recovered
    finally:
        recovered.close()


def test_transient_pool_errors_retry_with_backoff(tmp_path):
    faults = FaultInjector()
    faults.arm("mid_apply", WorkerPoolError, times=2)
    service, graph = _service(
        tmp_path, faults=faults, max_apply_retries=2, backoff_base=0.001
    )
    try:
        for update in _clean_stream(graph, 8):
            service.submit(update)
        service.drain()
        assert service.stats.transient_errors == 2
        assert service.stats.apply_retries == 2
        assert service.stats.quarantined_apply == 0
        assert service.health()["last_applied_seq"] == 8
    finally:
        service.close()


def test_watchdog_timeout_restores_engine_and_retries(tmp_path):
    graph = _graph()
    # fault-free reference for the final states
    reference, _ = _service(tmp_path / "ref", graph=graph)
    stream = _clean_stream(graph, 16)
    try:
        for update in stream:
            reference.submit(update)
        reference.drain()
        expected = reference.snapshot().states
    finally:
        reference.close()

    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: time.sleep(1.0), times=1)
    service, _ = _service(
        tmp_path / "wd",
        graph=graph,
        watchdog_timeout=0.2,
        max_apply_retries=2,
        backoff_base=0.001,
        faults=faults,
    )
    try:
        for update in stream:
            service.submit(update)
        service.drain()
        assert service.stats.watchdog_timeouts == 1
        assert service.stats.watchdog_restores == 1
        assert service.snapshot().states == expected  # bitwise
    finally:
        service.close()


def test_unrecoverable_apply_failure_bisects_to_one_event(tmp_path):
    faults = FaultInjector()
    # every apply attempt covering seq 5 fails: the batch bisects down to
    # the single event, which is quarantined with kind="apply"
    faults.arm(
        "mid_apply",
        OSError(28, "No space left on device"),
        when=lambda context: context["lo"] <= 5 <= context["hi"],
        times=1000,
    )
    service, graph = _service(
        tmp_path, faults=faults, max_apply_retries=1, backoff_base=0.0005
    )
    try:
        for update in _clean_stream(graph, 16):
            service.submit(update)
        service.drain()
        assert service.dlq.seqs() == [5]
        entry = service.dlq.entries()[0]
        assert entry.kind == "apply"
        assert service.stats.quarantined_apply == 1
        assert service.stats.bisect_splits >= 1
        # everything else still applied
        assert service.health()["last_disposed_seq"] == 16
    finally:
        service.close()


# ----------------------------------------------------------------------
# read path
# ----------------------------------------------------------------------
def test_snapshots_are_immutable_and_versions_monotonic(tmp_path):
    service, graph = _service(tmp_path, batch_size=4)
    try:
        stream = _clean_stream(graph, 24)
        for update in stream[:8]:
            service.submit(update)
        service.drain()
        early = service.snapshot()
        early_states = dict(early.states)
        assert early.verify()
        for update in stream[8:]:
            service.submit(update)
        service.drain()
        late = service.snapshot()
        # the old snapshot is frozen: later applies never touched it
        assert early.states == early_states
        assert early.verify()
        assert late.seq > early.seq
        # point and top-k queries answer from the snapshot
        source_value = late.value(0)
        assert source_value == 0.0  # sssp source
        top = late.top_k(3, largest=False)
        assert top[0] == (0, 0.0)
        assert [vertex for vertex, _value in top] == sorted(
            late.states, key=lambda v: (late.states[v], v)
        )[:3]
    finally:
        service.close()


def test_vertex_events_flow_through_service(tmp_path):
    service, graph = _service(tmp_path, batch_size=4)
    try:
        fresh = max(graph.vertices()) + 1
        service.submit(
            VertexUpdate(
                UpdateKind.ADD_VERTEX, fresh, ((0, fresh, 1.25), (fresh, 1, 0.5))
            )
        )
        service.drain()
        assert service.snapshot().value(fresh) == 1.25
        service.submit(VertexUpdate(UpdateKind.DELETE_VERTEX, fresh))
        # deleting a vertex that is already gone folds to a no-op
        service.submit(VertexUpdate(UpdateKind.DELETE_VERTEX, fresh + 1))
        service.drain()
        assert service.snapshot().value(fresh) is None
        assert service.stats.noop_ranges >= 1
    finally:
        service.close()


def test_health_reports_progress_and_staleness(tmp_path):
    service, graph = _service(tmp_path)
    try:
        for update in _clean_stream(graph, 8):
            service.submit(update)
        service.drain()
        health = service.health()
        assert health["ready"] is True
        assert health["dead"] is False
        assert health["queue_depth"] == 0
        assert health["last_walled_seq"] == 8
        assert health["last_disposed_seq"] == 8
        assert health["published_seq"] == 8
        assert health["staleness_events"] == 0
        assert health["staleness_seconds"] >= 0.0
        assert health["stats"]["snapshots_published"] >= 1
        assert health["batch_size"] == 8
    finally:
        service.close()
    assert service.ready() is False


# ----------------------------------------------------------------------
# bug-sweep regressions: health/ready windows, deadline handling, races
# ----------------------------------------------------------------------
def test_health_before_first_batch_has_no_phantom_staleness(tmp_path):
    """The initial snapshot predates any publish; its age is construction
    time, not data staleness — health must report 0.0, not a growing (or
    negative/non-finite) number."""
    service, graph = _service(tmp_path)
    try:
        time.sleep(0.15)
        health = service.health()
        assert health["published"] is False
        assert health["staleness_events"] == 0
        assert health["staleness_seconds"] == 0.0
        assert health["replaying"] is False
        assert health["ready"] is True
        # events below the grid boundary sit in the queue: staleness is
        # real now, but finite and non-negative
        for update in _clean_stream(graph, 3):
            service.submit(update)
        health = service.health()
        assert health["staleness_events"] == 3
        assert math.isfinite(health["staleness_seconds"])
        assert health["staleness_seconds"] >= 0.0
        service.drain()
        assert service.health()["staleness_seconds"] == 0.0
    finally:
        service.close()


def test_ready_is_false_during_recovery_replay(tmp_path):
    """A recovered service replaying its WAL suffix serves stale snapshots;
    readiness must say so until the replay catches up."""
    # kill as seq 8 WALs but before it enqueues: the writer never saw a
    # full grid, so recovery replays the complete batch [1..8] on its own
    faults = FaultInjector()
    faults.arm("post_wal_append", ServiceKilled, when=lambda c: c.get("seq") == 8)
    service, graph = _service(tmp_path, faults=faults)
    stream = _clean_stream(graph, 16)
    with pytest.raises((ServiceKilled, ServiceDead)):
        for index, update in enumerate(stream):
            service.submit(update, seq=index + 1)
    assert not service.ready()

    stall = FaultInjector()
    stall.arm("pre_apply", lambda _context: time.sleep(0.4), times=1)
    recovered = UpdateService.recover(
        str(tmp_path / "svc"), batch_size=8, faults=stall
    )
    try:
        health = recovered.health()
        assert health["replaying"] is True
        assert recovered.ready() is False  # alive, but serving stale state
        assert health["dead"] is False
        deadline = time.monotonic() + 10.0
        while recovered.health()["replaying"] and time.monotonic() < deadline:
            time.sleep(0.02)
        assert recovered.health()["replaying"] is False
        assert recovered.ready() is True
        assert recovered.health()["last_disposed_seq"] == 8
    finally:
        recovered.close()


def test_submit_timeout_zero_never_blocks(tmp_path):
    """timeout=0 (and negative timeouts) must resolve immediately: room ->
    ack, no room -> ServiceOverloaded; never a hang past the deadline."""
    service, graph = _service(tmp_path, batch_size=64, max_queue=2)
    try:
        stream = _clean_stream(graph, 8)
        assert service.submit(stream[0], timeout=0) == 1
        assert service.submit(stream[1], timeout=-3.0) == 2
        started = time.monotonic()
        with pytest.raises(ServiceOverloaded):
            service.submit(stream[2], timeout=0)
        assert time.monotonic() - started < 1.0
        started = time.monotonic()
        with pytest.raises(ServiceOverloaded):
            service.submit(stream[2], timeout=-1.0)
        assert time.monotonic() - started < 1.0
    finally:
        service.close()


def test_blocked_submit_wakes_on_close_instead_of_hanging(tmp_path):
    service, graph = _service(tmp_path, batch_size=64, max_queue=1)
    stream = _clean_stream(graph, 4)
    service.submit(stream[0])
    outcome = {}

    def blocked_submit():
        started = time.monotonic()
        try:
            service.submit(stream[1], timeout=30.0)
            outcome["result"] = "acked"
        except ServiceDead:
            outcome["result"] = "dead"
        outcome["elapsed"] = time.monotonic() - started

    thread = threading.Thread(target=blocked_submit)
    thread.start()
    time.sleep(0.2)  # let it park in the backpressure wait
    service.close()
    thread.join(timeout=10.0)
    assert not thread.is_alive()
    assert outcome["result"] == "dead"
    assert outcome["elapsed"] < 10.0  # woke on close, not on its own deadline


def test_drain_racing_close_raises_instead_of_hanging(tmp_path):
    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: time.sleep(0.8), times=1)
    service, graph = _service(tmp_path, batch_size=64, faults=faults)
    for update in _clean_stream(graph, 3):
        service.submit(update)
    outcome = {}

    def racing_drain():
        started = time.monotonic()
        try:
            service.drain(timeout=30.0)
            outcome["result"] = "drained"
        except ServiceDead:
            outcome["result"] = "dead"
        except TimeoutError:
            outcome["result"] = "timeout"
        outcome["elapsed"] = time.monotonic() - started

    thread = threading.Thread(target=racing_drain)
    thread.start()
    time.sleep(0.2)  # drain has flushed the batch into the slow apply
    service.close()
    thread.join(timeout=15.0)
    assert not thread.is_alive()
    assert outcome["result"] == "dead"
    assert outcome["elapsed"] < 10.0


def test_concurrent_drains_keep_flushing_until_the_last_returns(tmp_path):
    """Two overlapping drains: the short one timing out must not cancel the
    long one's flush (the old boolean flag did exactly that)."""
    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: time.sleep(0.6), times=1)
    service, graph = _service(tmp_path, batch_size=64, faults=faults)
    try:
        stream = _clean_stream(graph, 8)
        for update in stream[:3]:
            service.submit(update)
        outcome = {}

        def long_drain():
            try:
                service.drain(timeout=15.0)
                outcome["long"] = "drained"
            except Exception as error:
                outcome["long"] = repr(error)

        def short_drain():
            try:
                service.drain(timeout=0.2)
                outcome["short"] = "drained"
            except TimeoutError:
                outcome["short"] = "timeout"

        long_thread = threading.Thread(target=long_drain)
        short_thread = threading.Thread(target=short_drain)
        long_thread.start()
        short_thread.start()
        time.sleep(0.25)  # first wave is mid-apply; short drain timed out
        for update in stream[3:5]:
            service.submit(update)  # second wave needs flush mode to persist
        short_thread.join(timeout=10.0)
        long_thread.join(timeout=20.0)
        assert not long_thread.is_alive()
        assert outcome["short"] == "timeout"
        assert outcome["long"] == "drained"
        assert service.health()["last_disposed_seq"] == 5
    finally:
        service.close()


def test_resubmit_of_quarantined_seq_dup_acks(tmp_path):
    """A seq that was WAL'd and then dead-lettered is still durable: the
    resubmit dup-acks instead of re-enqueueing or double-quarantining."""
    service, graph = _service(tmp_path, batch_size=1)
    try:
        poison = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, float("nan"))
        seq, duplicate = service.submit_event(poison, seq=1)
        assert (seq, duplicate) == (1, False)
        service.drain()
        assert service.dlq.seqs() == [1]
        seq, duplicate = service.submit_event(poison, seq=1)
        assert (seq, duplicate) == (1, True)
        service.drain()
        assert service.dlq.seqs() == [1]
        assert service.stats.events_submitted == 1
        assert service.stats.quarantined_intrinsic == 1
    finally:
        service.close()
