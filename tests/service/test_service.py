"""Unit and lifecycle coverage for the streaming update service.

The chaos harness (``test_chaos.py``) proves end-to-end crash equivalence;
this file pins the individual contracts: WAL round-trips and sequencing,
submit acknowledgement and idempotent resubmits, backpressure, poison
quarantine into a durable dead-letter queue, transient-failure retries,
the watchdog restore path, and snapshot immutability on the read path.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind, VertexUpdate
from repro.graph.generators import community_graph
from repro.parallel.executor import WorkerPoolError
from repro.service import (
    Event,
    EventLog,
    FaultInjector,
    ServiceDead,
    ServiceOverloaded,
    UpdateService,
)
from repro.storage.edge_store import StoreError
from repro.workloads.updates import poisoned_event_stream


def _graph(seed=5):
    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


def _engine(graph, name="kickstarter", algorithm="sssp"):
    engine = build_engine(name, make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    return engine


def _service(tmp_path, graph=None, **kwargs):
    graph = graph if graph is not None else _graph()
    kwargs.setdefault("batch_size", 8)
    return UpdateService(_engine(graph), str(tmp_path / "svc"), **kwargs), graph


def _clean_stream(graph, n=32, seed=3):
    return poisoned_event_stream(graph, num_events=n, seed=seed, poison_rate=0.0, protect=0)


# ----------------------------------------------------------------------
# WAL round-trips
# ----------------------------------------------------------------------
def test_event_log_roundtrips_bit_exact(tmp_path):
    path = str(tmp_path / "events.log")
    updates = [
        EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 0.1 + 0.2),  # not representable
        EdgeUpdate(UpdateKind.ADD_EDGE, 3, 4, float("nan")),
        EdgeUpdate(UpdateKind.ADD_EDGE, 5, 6, float("inf")),
        EdgeUpdate(UpdateKind.DELETE_EDGE, 1, 2),
        VertexUpdate(UpdateKind.ADD_VERTEX, 7, ((7, 1, -0.0), (2, 7, 1e-308))),
        VertexUpdate(UpdateKind.DELETE_VERTEX, 7),
    ]
    log = EventLog(path)
    for seq, update in enumerate(updates, start=1):
        log.append(Event(seq, update))
    log.close()
    events, discarded = EventLog(path).read()
    assert discarded == 0
    assert [event.seq for event in events] == [1, 2, 3, 4, 5, 6]
    for event, update in zip(events, updates):
        assert repr(event.update) == repr(update)  # repr: NaN-safe equality
    weights = [event.update.weight for event in events[:3]]
    assert weights[0].hex() == (0.1 + 0.2).hex()
    assert math.isnan(weights[1]) and math.isinf(weights[2])


def test_event_log_discards_torn_tail_and_seq_gaps(tmp_path):
    path = str(tmp_path / "events.log")
    log = EventLog(path)
    log.append(Event(1, EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 1.0)))
    log.append(Event(2, EdgeUpdate(UpdateKind.ADD_EDGE, 2, 3, 1.0)))
    log.close()
    with open(path, "ab") as handle:
        handle.write(b"deadbeef {torn")  # crash mid-append
    events, discarded = EventLog(path).read()
    assert [event.seq for event in events] == [1, 2]
    assert discarded == 1

    gapped = EventLog(str(tmp_path / "gap.log"))
    gapped.append(Event(1, EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, 1.0)))
    gapped.append(Event(3, EdgeUpdate(UpdateKind.ADD_EDGE, 2, 3, 1.0)))
    gapped.append(Event(4, EdgeUpdate(UpdateKind.ADD_EDGE, 3, 4, 1.0)))
    gapped.close()
    events, discarded = EventLog(str(tmp_path / "gap.log")).read()
    assert [event.seq for event in events] == [1]  # stop at the gap
    assert discarded == 2


# ----------------------------------------------------------------------
# submit: ack, idempotent resubmit, lifecycle
# ----------------------------------------------------------------------
def test_submit_acks_and_resubmit_is_idempotent(tmp_path):
    service, graph = _service(tmp_path)
    try:
        stream = _clean_stream(graph, 16)
        seqs = [service.submit(update) for update in stream]
        assert seqs == list(range(1, 17))
        # a client that lost the ack resubmits with its explicit seq: no-op
        assert service.submit(stream[4], seq=5) == 5
        service.drain()
        assert service.health()["last_applied_seq"] == 16
        assert service.stats.events_submitted == 16  # the dup was not re-walled
        with pytest.raises(ValueError, match="gap"):
            service.submit(stream[0], seq=99)
    finally:
        service.close()
    with pytest.raises(ServiceDead):
        service.submit(stream[0])


def test_fresh_start_refuses_existing_wal(tmp_path):
    service, graph = _service(tmp_path)
    service.submit(_clean_stream(graph, 4)[0])
    service.drain()
    service.close()
    with pytest.raises(StoreError, match="recover"):
        UpdateService(_engine(graph), str(tmp_path / "svc"))


def test_backpressure_raises_overloaded(tmp_path):
    release = threading.Event()
    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: release.wait(10.0), times=1)
    service, graph = _service(tmp_path, batch_size=1, max_queue=2, faults=faults)
    try:
        stream = _clean_stream(graph, 8)
        service.submit(stream[0])  # taken by the writer, stuck in mid_apply
        deadline = time.monotonic() + 5.0
        while service.health()["queue_depth"] < 2 and time.monotonic() < deadline:
            try:
                service.submit(stream[len(stream) - 1], seq=None, timeout=0.05)
            except ServiceOverloaded:
                break
            time.sleep(0.01)
        with pytest.raises(ServiceOverloaded):
            service.submit(stream[3], timeout=0.1)
        release.set()
        service.drain()
        # once the writer drained the queue, submits flow again
        service.submit(stream[4])
        service.drain()
    finally:
        release.set()
        service.close()


# ----------------------------------------------------------------------
# quarantine and the dead-letter queue
# ----------------------------------------------------------------------
def test_poison_event_quarantines_to_durable_dlq(tmp_path):
    service, graph = _service(tmp_path)
    try:
        good = _clean_stream(graph, 8)
        poison = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, float("nan"))
        for update in good[:4]:
            service.submit(update)
        poison_seq = service.submit(poison)
        for update in good[4:]:
            service.submit(update)
        service.drain()
        entries = service.dlq.entries()
        assert [entry.seq for entry in entries] == [poison_seq]
        assert entries[0].kind == "intrinsic"
        assert "non-finite" in entries[0].problems[0]
        assert service.stats.quarantined_intrinsic == 1
        # the healthy events around the poison all applied
        assert service.health()["last_applied_seq"] == 9
        snapshot = service.snapshot()
        assert snapshot.quarantined >= 1
    finally:
        service.close()
    # the dead-letter log is durable: recovery re-enumerates it
    recovered = UpdateService.recover(str(tmp_path / "svc"))
    try:
        assert recovered.dlq.seqs() == [poison_seq]
        assert recovered.dlq.entries()[0].recovered
    finally:
        recovered.close()


def test_transient_pool_errors_retry_with_backoff(tmp_path):
    faults = FaultInjector()
    faults.arm("mid_apply", WorkerPoolError, times=2)
    service, graph = _service(
        tmp_path, faults=faults, max_apply_retries=2, backoff_base=0.001
    )
    try:
        for update in _clean_stream(graph, 8):
            service.submit(update)
        service.drain()
        assert service.stats.transient_errors == 2
        assert service.stats.apply_retries == 2
        assert service.stats.quarantined_apply == 0
        assert service.health()["last_applied_seq"] == 8
    finally:
        service.close()


def test_watchdog_timeout_restores_engine_and_retries(tmp_path):
    graph = _graph()
    # fault-free reference for the final states
    reference, _ = _service(tmp_path / "ref", graph=graph)
    stream = _clean_stream(graph, 16)
    try:
        for update in stream:
            reference.submit(update)
        reference.drain()
        expected = reference.snapshot().states
    finally:
        reference.close()

    faults = FaultInjector()
    faults.arm("mid_apply", lambda _context: time.sleep(1.0), times=1)
    service, _ = _service(
        tmp_path / "wd",
        graph=graph,
        watchdog_timeout=0.2,
        max_apply_retries=2,
        backoff_base=0.001,
        faults=faults,
    )
    try:
        for update in stream:
            service.submit(update)
        service.drain()
        assert service.stats.watchdog_timeouts == 1
        assert service.stats.watchdog_restores == 1
        assert service.snapshot().states == expected  # bitwise
    finally:
        service.close()


def test_unrecoverable_apply_failure_bisects_to_one_event(tmp_path):
    faults = FaultInjector()
    # every apply attempt covering seq 5 fails: the batch bisects down to
    # the single event, which is quarantined with kind="apply"
    faults.arm(
        "mid_apply",
        OSError(28, "No space left on device"),
        when=lambda context: context["lo"] <= 5 <= context["hi"],
        times=1000,
    )
    service, graph = _service(
        tmp_path, faults=faults, max_apply_retries=1, backoff_base=0.0005
    )
    try:
        for update in _clean_stream(graph, 16):
            service.submit(update)
        service.drain()
        assert service.dlq.seqs() == [5]
        entry = service.dlq.entries()[0]
        assert entry.kind == "apply"
        assert service.stats.quarantined_apply == 1
        assert service.stats.bisect_splits >= 1
        # everything else still applied
        assert service.health()["last_disposed_seq"] == 16
    finally:
        service.close()


# ----------------------------------------------------------------------
# read path
# ----------------------------------------------------------------------
def test_snapshots_are_immutable_and_versions_monotonic(tmp_path):
    service, graph = _service(tmp_path, batch_size=4)
    try:
        stream = _clean_stream(graph, 24)
        for update in stream[:8]:
            service.submit(update)
        service.drain()
        early = service.snapshot()
        early_states = dict(early.states)
        assert early.verify()
        for update in stream[8:]:
            service.submit(update)
        service.drain()
        late = service.snapshot()
        # the old snapshot is frozen: later applies never touched it
        assert early.states == early_states
        assert early.verify()
        assert late.seq > early.seq
        # point and top-k queries answer from the snapshot
        source_value = late.value(0)
        assert source_value == 0.0  # sssp source
        top = late.top_k(3, largest=False)
        assert top[0] == (0, 0.0)
        assert [vertex for vertex, _value in top] == sorted(
            late.states, key=lambda v: (late.states[v], v)
        )[:3]
    finally:
        service.close()


def test_vertex_events_flow_through_service(tmp_path):
    service, graph = _service(tmp_path, batch_size=4)
    try:
        fresh = max(graph.vertices()) + 1
        service.submit(
            VertexUpdate(
                UpdateKind.ADD_VERTEX, fresh, ((0, fresh, 1.25), (fresh, 1, 0.5))
            )
        )
        service.drain()
        assert service.snapshot().value(fresh) == 1.25
        service.submit(VertexUpdate(UpdateKind.DELETE_VERTEX, fresh))
        # deleting a vertex that is already gone folds to a no-op
        service.submit(VertexUpdate(UpdateKind.DELETE_VERTEX, fresh + 1))
        service.drain()
        assert service.snapshot().value(fresh) is None
        assert service.stats.noop_ranges >= 1
    finally:
        service.close()


def test_health_reports_progress_and_staleness(tmp_path):
    service, graph = _service(tmp_path)
    try:
        for update in _clean_stream(graph, 8):
            service.submit(update)
        service.drain()
        health = service.health()
        assert health["ready"] is True
        assert health["dead"] is False
        assert health["queue_depth"] == 0
        assert health["last_walled_seq"] == 8
        assert health["last_disposed_seq"] == 8
        assert health["published_seq"] == 8
        assert health["staleness_events"] == 0
        assert health["staleness_seconds"] >= 0.0
        assert health["stats"]["snapshots_published"] >= 1
        assert health["batch_size"] == 8
    finally:
        service.close()
    assert service.ready() is False
