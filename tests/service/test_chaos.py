"""Chaos harness: the service's failure model, end to end.

One seeded 200-event stream (three poison events at fixed positions) is
driven through the service under every fault the pipeline can suffer —
process kills on both sides of the WAL append, before the apply, inside the
apply, on both sides of the snapshot publish; forced ``WorkerPoolError``
transients; a stuck apply that trips the watchdog — and after recovery every
run must be indistinguishable from the fault-free reference run:

* final states bitwise-identical (exactly-once: no event lost to a crash
  after acknowledgement, none applied twice by replay);
* the same three events in the dead-letter queue, enumerable;
* the engine-store log's event-range annotations identical — the recovered
  run applied literally the same batches;
* every query issued concurrently with the faults saw a consistent
  published version (checksum verifies, sequence never regresses).

The kill scenarios target seq 100 (batch 13 of 25 at batch size 8), away
from the poison batches, so the grid-aligned replay realigns exactly; that
also makes the equivalence hold bitwise for the *accumulative* engine
family (whose propagation is sensitive to how the stream is split into
apply calls), which the ingress/pagerank kill scenario pins down.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind
from repro.graph.generators import community_graph
from repro.parallel.executor import WorkerPoolError
from repro.service import (
    FaultInjector,
    ServiceDead,
    ServiceKilled,
    UpdateService,
)
from repro.storage.store import EngineStore
from repro.storage.edge_store import DeltaLog

NUM_EVENTS = 200
BATCH = 8  # 25 full batches; 200 % 8 == 0 so no ragged tail
POISON_SEQS = (29, 65, 150)  # batches 4, 9 and 19 — away from the kills
KILL_SEQ = 100  # inside batch 13, a poison-free batch
STREAM_SEED = 3
COMPACT_EVERY = 100_000  # keep every log record: the harness audits them


def _graph():
    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=5,
    )


def _stream(graph):
    from repro.workloads.updates import poisoned_event_stream

    events = list(
        poisoned_event_stream(
            graph,
            num_events=NUM_EVENTS - len(POISON_SEQS),
            seed=STREAM_SEED,
            poison_rate=0.0,
            protect=0,
        )
    )
    poisons = [
        EdgeUpdate(UpdateKind.ADD_EDGE, 900, 901, float("nan")),
        EdgeUpdate(UpdateKind.ADD_EDGE, 902, 903, float("inf")),
        EdgeUpdate(UpdateKind.ADD_EDGE, 904, 905, float("-inf")),
    ]
    for seq, poison in zip(POISON_SEQS, poisons):
        events.insert(seq - 1, poison)
    assert len(events) == NUM_EVENTS
    return events


class _Reader(threading.Thread):
    """Concurrent query load: every observed snapshot must be consistent."""

    def __init__(self, service):
        super().__init__(daemon=True)
        self.service = service
        self.halt = threading.Event()
        self.errors = []
        self.observed = 0

    def run(self):
        last_seq = -1
        while not self.halt.is_set():
            snapshot = self.service.snapshot()
            self.observed += 1
            if not snapshot.verify():
                self.errors.append(f"torn snapshot at seq {snapshot.seq}")
            if snapshot.seq < last_seq:
                self.errors.append(
                    f"published version regressed {last_seq} -> {snapshot.seq}"
                )
            last_seq = snapshot.seq
            if snapshot.value(0, 0.0) != 0.0:  # sssp/pagerank source invariant
                pass  # pagerank source is not 0.0; checked via checksum only
            time.sleep(0.001)

    def stop(self):
        self.halt.set()
        self.join(timeout=5.0)


def _applied_ranges(service_dir):
    """Every ``[lo, hi]`` WAL range the engine store saw applied, in order."""
    log = DeltaLog(
        os.path.join(service_dir, UpdateService.ENGINE_DIR, EngineStore.DELTA_LOG)
    )
    try:
        records, _discarded = log.read()
    finally:
        log.close()
    return [tuple(r.meta["events"]) for r in records if r.meta and "events" in r.meta]


def _service(tmp_path, graph, engine_name, algorithm, faults=None, **kwargs):
    engine = build_engine(engine_name, make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    kwargs.setdefault("batch_size", BATCH)
    kwargs.setdefault("compact_every", COMPACT_EVERY)
    kwargs.setdefault("backoff_base", 0.001)
    return UpdateService(engine, str(tmp_path), faults=faults, **kwargs)


def _run_to_completion(service, stream):
    """Submit the whole stream (explicit seqs: resubmits dup-ack) and drain.

    Returns True if the service died mid-run (a kill fired) and recovery is
    needed; False if the run completed.
    """
    try:
        for index, update in enumerate(stream):
            service.submit(update, seq=index + 1)
        service.drain(timeout=120.0)
        return False
    except (ServiceKilled, ServiceDead):
        return True


def _finish(service):
    snapshot = service.snapshot()
    return {
        "states": dict(snapshot.states),
        "checksum": snapshot.checksum,
        "seq": snapshot.seq,
        "dlq": service.dlq.seqs(),
        "health": service.health(),
    }


@pytest.fixture(scope="module")
def reference():
    """Fault-free reference run (module-scoped: every scenario compares to it)."""
    import tempfile, shutil

    graph = _graph()
    stream = _stream(graph)
    results = {}
    for engine_name, algorithm in (("kickstarter", "sssp"), ("ingress", "pagerank")):
        directory = tempfile.mkdtemp(prefix="chaos-ref-")
        service = _service(directory, graph, engine_name, algorithm)
        reader = _Reader(service)
        reader.start()
        try:
            died = _run_to_completion(service, stream)
            assert not died, service._dead_reason
            result = _finish(service)
        finally:
            reader.stop()
            service.close()
        assert reader.errors == []
        result["ranges"] = _applied_ranges(directory)
        results[engine_name, algorithm] = result
        shutil.rmtree(directory)
    # the reference itself quarantined exactly the three poisons
    for result in results.values():
        assert result["dlq"] == list(POISON_SEQS)
        assert result["seq"] == NUM_EVENTS
    return graph, stream, results


def _assert_equivalent(outcome, reference_result, ranges):
    assert outcome["states"] == reference_result["states"]  # bitwise
    assert outcome["seq"] == NUM_EVENTS
    assert outcome["checksum"] == reference_result["checksum"]
    assert outcome["dlq"] == list(POISON_SEQS)
    assert outcome["health"]["last_disposed_seq"] == NUM_EVENTS
    # exactly-once, auditable: the union of runs applied the same ranges,
    # in order, with no overlap
    assert ranges == reference_result["ranges"]
    covered = set()
    for lo, hi in ranges:
        span = set(range(lo, hi + 1))
        assert not (covered & span), f"range [{lo},{hi}] overlaps a prior apply"
        covered |= span


KILL_SCENARIOS = [
    ("pre_wal_append", lambda c: c.get("seq") == KILL_SEQ),
    ("post_wal_append", lambda c: c.get("seq") == KILL_SEQ),
    ("pre_apply", lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1)),
    ("mid_apply", lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1)),
    ("pre_publish", lambda c: c.get("seq") == 104),  # hi of the kill batch
    ("post_publish", lambda c: c.get("seq") == 104),
]


@pytest.mark.parametrize("stage,when", KILL_SCENARIOS, ids=[s for s, _ in KILL_SCENARIOS])
def test_kill_at_stage_recovers_bitwise(tmp_path, reference, stage, when):
    graph, stream, results = reference
    faults = FaultInjector()
    faults.arm(stage, ServiceKilled, when=when)
    service = _service(tmp_path, graph, "kickstarter", "sssp", faults=faults)
    reader = _Reader(service)
    reader.start()
    try:
        died = _run_to_completion(service, stream)
    finally:
        reader.stop()
    assert died, f"the {stage} kill never fired"
    assert faults.fired and faults.fired[0][0] == stage
    assert not service.ready()
    assert reader.errors == []

    recovered = UpdateService.recover(
        str(tmp_path), batch_size=BATCH, compact_every=COMPACT_EVERY, backoff_base=0.001
    )
    reader2 = _Reader(recovered)
    reader2.start()
    try:
        died_again = _run_to_completion(recovered, stream)
        assert not died_again
        outcome = _finish(recovered)
    finally:
        reader2.stop()
        recovered.close()
    assert reader2.errors == []
    _assert_equivalent(outcome, results["kickstarter", "sssp"], _applied_ranges(str(tmp_path)))
    # the recovered DLQ marks replay-rebuilt entries
    assert all(entry.recovered or entry.seq > 96 for entry in recovered.dlq.entries())


def test_kill_recovers_bitwise_for_accumulative_engine(tmp_path, reference):
    """Grid-aligned replay keeps even the split-sensitive family bitwise."""
    graph, stream, results = reference
    faults = FaultInjector()
    faults.arm(
        "mid_apply",
        ServiceKilled,
        when=lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1),
    )
    service = _service(tmp_path, graph, "ingress", "pagerank", faults=faults)
    died = _run_to_completion(service, stream)
    assert died
    recovered = UpdateService.recover(
        str(tmp_path), batch_size=BATCH, compact_every=COMPACT_EVERY, backoff_base=0.001
    )
    try:
        assert not _run_to_completion(recovered, stream)
        outcome = _finish(recovered)
    finally:
        recovered.close()
    _assert_equivalent(
        outcome, results["ingress", "pagerank"], _applied_ranges(str(tmp_path))
    )


def test_double_kill_across_incarnations(tmp_path, reference):
    """A second crash during replay still converges to the reference."""
    graph, stream, results = reference
    first = FaultInjector()
    first.arm(
        "mid_apply",
        ServiceKilled,
        when=lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1),
    )
    service = _service(tmp_path, graph, "kickstarter", "sssp", faults=first)
    assert _run_to_completion(service, stream)

    second = FaultInjector()
    second.arm("post_publish", ServiceKilled, when=lambda c: c.get("seq") == 160)
    middle = UpdateService.recover(
        str(tmp_path),
        batch_size=BATCH,
        compact_every=COMPACT_EVERY,
        backoff_base=0.001,
        faults=second,
    )
    assert _run_to_completion(middle, stream)
    assert second.fired

    final = UpdateService.recover(
        str(tmp_path), batch_size=BATCH, compact_every=COMPACT_EVERY, backoff_base=0.001
    )
    try:
        assert not _run_to_completion(final, stream)
        outcome = _finish(final)
    finally:
        final.close()
    _assert_equivalent(
        outcome, results["kickstarter", "sssp"], _applied_ranges(str(tmp_path))
    )


def test_forced_pool_errors_retry_transparently(tmp_path, reference):
    graph, stream, results = reference
    faults = FaultInjector()
    faults.arm(
        "mid_apply",
        WorkerPoolError("injected worker crash"),
        when=lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1),
        times=2,
    )
    service = _service(
        tmp_path, graph, "kickstarter", "sssp", faults=faults, max_apply_retries=3
    )
    reader = _Reader(service)
    reader.start()
    try:
        assert not _run_to_completion(service, stream)
        outcome = _finish(service)
        assert service.stats.transient_errors == 2
        assert service.stats.apply_retries >= 2
    finally:
        reader.stop()
        service.close()
    assert reader.errors == []
    _assert_equivalent(outcome, results["kickstarter", "sssp"], _applied_ranges(str(tmp_path)))


def test_watchdog_timeout_restores_and_converges(tmp_path, reference):
    graph, stream, results = reference
    faults = FaultInjector()
    faults.arm(
        "mid_apply",
        lambda _context: time.sleep(1.5),
        when=lambda c: c.get("lo", -1) <= KILL_SEQ <= c.get("hi", -1),
        times=1,
    )
    service = _service(
        tmp_path,
        graph,
        "kickstarter",
        "sssp",
        faults=faults,
        watchdog_timeout=0.25,
        max_apply_retries=2,
    )
    reader = _Reader(service)
    reader.start()
    try:
        assert not _run_to_completion(service, stream)
        outcome = _finish(service)
        assert service.stats.watchdog_timeouts == 1
        assert service.stats.watchdog_restores == 1
    finally:
        reader.stop()
        service.close()
    assert reader.errors == []
    _assert_equivalent(outcome, results["kickstarter", "sssp"], _applied_ranges(str(tmp_path)))


def test_resubmit_after_quarantine_across_recovery(tmp_path, reference):
    """A quarantined seq above the recovery floor must stay exactly-once.

    Kill timing: within the poison batch [25..32], bisection applies
    [25..28], dead-letters 29 (appending its dlq.log record), then the kill
    lands in the apply of [30]. The floor is therefore 28 — *below* the
    already-logged quarantine. Recovery gives 29 its fresh chance during
    replay, the verdict repeats, and both sides must dedupe: the in-memory
    DLQ lists 29 once, dlq.log holds a single record for it, and the
    client's resubmit of the whole stream dup-acks into the reference
    outcome.
    """
    from repro.storage.edge_store import CrcLog

    graph, stream, results = reference
    faults = FaultInjector()
    faults.arm(
        "mid_apply",
        ServiceKilled,
        when=lambda c: c.get("lo") == 30 and c.get("hi") == 30,
    )
    service = _service(tmp_path, graph, "kickstarter", "sssp", faults=faults)
    assert _run_to_completion(service, stream)
    assert faults.fired

    def dlq_log_seqs():
        log = CrcLog(os.path.join(str(tmp_path), UpdateService.DLQ_LOG))
        try:
            payloads, _bad = log.read_payloads()
        finally:
            log.close()
        return [payload["seq"] for payload in payloads]

    assert dlq_log_seqs() == [POISON_SEQS[0]]  # quarantined before the kill

    recovered = UpdateService.recover(
        str(tmp_path), batch_size=BATCH, compact_every=COMPACT_EVERY, backoff_base=0.001
    )
    try:
        # floor 28 < 29: the logged quarantine is above the floor, so the
        # DLQ starts empty and replay re-quarantines 29 deterministically
        assert recovered.health()["last_applied_seq"] == 28
        assert not _run_to_completion(recovered, stream)
        outcome = _finish(recovered)
        assert recovered.stats.quarantined_intrinsic == len(POISON_SEQS)
    finally:
        recovered.close()
    _assert_equivalent(
        outcome, results["kickstarter", "sssp"], _applied_ranges(str(tmp_path))
    )
    # the durable log did not grow a duplicate record for seq 29
    log_seqs = dlq_log_seqs()
    assert sorted(log_seqs) == sorted(set(log_seqs)) == list(POISON_SEQS)
