"""Subscription layer: snapshot diffing and the registry/push contracts.

The heart is the property suite pinning :func:`snapshot_diff` — the
vectorized O(changed) diff the publish path feeds every subscriber — to a
brute-force dict diff, over random synthetic snapshots (vertex add/remove,
NaN states, ±inf, -0.0) *and* over real published-snapshot sequences from
one selective engine (kickstarter/sssp, whose states hold infinities) and
one accumulative engine (ingress/pagerank).  The rest covers subscription
semantics: baseline-vs-delta completeness at the subscribe boundary, top-k
watch pushes, vertex watches, slow-consumer eviction, waker delivery, and
registry close on service shutdown.
"""

from __future__ import annotations

import math
import threading

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind
from repro.graph.generators import community_graph
from repro.service import UpdateService
from repro.service.snapshot import StateSnapshot
from repro.service.subscriptions import (
    Subscription,
    SubscriptionEvicted,
    SubscriptionRegistry,
    snapshot_diff,
)
from repro.workloads.updates import poisoned_event_stream

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _snapshot(seq, states):
    return StateSnapshot.capture(
        seq=seq, graph_version=seq, states=states, csr=None, quarantined=0
    )


def _brute_force_diff(old, new):
    """The specification: plain dict walk with NaN==NaN equality."""
    changed = []
    for vertex, value in new.states.items():
        if vertex not in old.states:
            changed.append((vertex, value))
            continue
        prev = old.states[vertex]
        same = prev == value or (math.isnan(prev) and math.isnan(value))
        if not same:
            changed.append((vertex, value))
    removed = [v for v in old.states if v not in new.states]
    return changed, removed


_VALUES = st.one_of(
    st.floats(allow_nan=True, allow_infinity=True, width=64),
    st.sampled_from([0.0, -0.0, 1.5, float("nan"), float("inf"), float("-inf")]),
)


def _assert_diff_matches(old, new):
    changed, removed = snapshot_diff(old, new)
    expect_changed, expect_removed = _brute_force_diff(old, new)

    def key(pair):
        vertex, value = pair
        return (vertex, repr(value))  # repr: NaN-safe, -0.0-distinguishing

    assert sorted(map(key, changed)) == sorted(map(key, expect_changed))
    assert sorted(removed) == sorted(expect_removed)
    # changed values must be new-snapshot values bit-for-bit
    for vertex, value in changed:
        got, want = float(value), float(new.states[vertex])
        assert got == want or (math.isnan(got) and math.isnan(want))


@given(
    base=st.dictionaries(st.integers(0, 40), _VALUES, max_size=30),
    churn=st.lists(
        st.tuples(st.integers(0, 40), st.one_of(st.none(), _VALUES)),
        max_size=20,
    ),
)
@SETTINGS
def test_snapshot_diff_matches_brute_force_random(base, churn):
    """Random states with NaN/inf plus vertex add/remove churn."""
    new_states = dict(base)
    for vertex, value in churn:
        if value is None:
            new_states.pop(vertex, None)
        else:
            new_states[vertex] = value
    old = _snapshot(1, base)
    new = _snapshot(2, new_states)
    _assert_diff_matches(old, new)
    # and the degenerate directions
    _assert_diff_matches(new, old)
    _assert_diff_matches(old, _snapshot(3, {}))
    _assert_diff_matches(_snapshot(0, {}), new)


def test_snapshot_diff_none_baseline_reports_everything():
    new = _snapshot(1, {3: 1.0, 5: float("nan")})
    changed, removed = snapshot_diff(None, new)
    assert {v for v, _ in changed} == {3, 5}
    assert removed == []


def test_snapshot_diff_nan_pair_is_not_a_change():
    old = _snapshot(1, {1: float("nan"), 2: 1.0})
    new = _snapshot(2, {1: float("nan"), 2: 2.0})
    changed, removed = snapshot_diff(old, new)
    assert changed == [(2, 2.0)] and removed == []


def _graph(seed=5):
    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


@pytest.mark.parametrize(
    "engine_name,algorithm",
    [("kickstarter", "sssp"), ("ingress", "pagerank")],
)
def test_snapshot_diff_matches_brute_force_on_engine_sequences(
    tmp_path, engine_name, algorithm
):
    """Published-snapshot chains from a live service: every consecutive
    pair's vectorized diff equals the brute-force dict diff (the selective
    engine keeps unreachable vertices at +inf, exercising the non-finite
    compare on real data)."""
    graph = _graph()
    engine = build_engine(engine_name, make_algorithm(algorithm, source=0))
    engine.initialize(graph)
    service = UpdateService(engine, str(tmp_path / "svc"), batch_size=8)
    chain = [service.snapshot()]
    try:
        for update in poisoned_event_stream(
            graph, num_events=64, seed=11, poison_rate=0.0, protect=0
        ):
            service.submit(update)
        service.drain()
        chain.append(service.snapshot())
        # a second wave to get more than one published transition
        for update in poisoned_event_stream(
            graph, num_events=32, seed=12, poison_rate=0.0, protect=0
        ):
            service.submit(update)
        service.drain()
        chain.append(service.snapshot())
    finally:
        service.close()
    assert chain[-1].seq > chain[0].seq
    for old, new in zip(chain, chain[1:]):
        _assert_diff_matches(old, new)


# ----------------------------------------------------------------------
# subscription / registry semantics
# ----------------------------------------------------------------------
def test_topk_watch_pushes_full_ranking_on_change():
    registry = SubscriptionRegistry()
    old = _snapshot(1, {1: 5.0, 2: 4.0, 3: 3.0})
    sub = registry.subscribe_topk(2, snapshot=old)
    assert sub.baseline == [[1, 5.0], [2, 4.0]]
    new = _snapshot(2, {1: 5.0, 2: 4.0, 3: 9.0})
    registry.publish(old, new)
    deltas = sub.take(timeout=1.0)
    assert len(deltas) == 1
    assert deltas[0]["kind"] == "topk"
    assert deltas[0]["topk"] == [[3, 9.0], [1, 5.0]]
    assert deltas[0]["seq"] == 2


def test_topk_watch_skips_irrelevant_changes():
    registry = SubscriptionRegistry()
    old = _snapshot(1, {1: 5.0, 2: 4.0, 3: 1.0, 4: 0.5})
    sub = registry.subscribe_topk(2, snapshot=old)
    # 4 moves but stays far below the boundary (4.0): no push
    new = _snapshot(2, {1: 5.0, 2: 4.0, 3: 1.0, 4: 0.75})
    registry.publish(old, new)
    assert sub.take(timeout=0.05) == []
    assert sub.pushed == 0


def test_smallest_topk_watch(tmp_path):
    registry = SubscriptionRegistry()
    old = _snapshot(1, {1: 5.0, 2: 4.0, 3: 3.0})
    sub = registry.subscribe_topk(2, largest=False, snapshot=old)
    assert sub.baseline == [[3, 3.0], [2, 4.0]]
    new = _snapshot(2, {1: 0.5, 2: 4.0, 3: 3.0})
    registry.publish(old, new)
    deltas = sub.take(timeout=1.0)
    assert deltas[0]["topk"] == [[1, 0.5], [3, 3.0]]


def test_vertex_watch_filters_and_reports_removal():
    registry = SubscriptionRegistry()
    old = _snapshot(1, {1: 1.0, 2: 2.0, 3: 3.0})
    sub = registry.subscribe_vertices([2, 3], snapshot=old)
    assert sub.baseline == [[2, 2.0], [3, 3.0]]
    new = _snapshot(2, {1: 9.0, 2: 2.5})  # 1 changes (unwatched), 3 removed
    registry.publish(old, new)
    deltas = sub.take(timeout=1.0)
    assert len(deltas) == 1
    assert deltas[0]["changed"] == [[2, 2.5]]
    assert deltas[0]["removed"] == [3]


def test_slow_consumer_is_evicted_not_blocking():
    registry = SubscriptionRegistry(max_pending=3)
    snapshots = [_snapshot(i, {1: float(i)}) for i in range(8)]
    sub = registry.subscribe_vertices([1], snapshot=snapshots[0])
    for old, new in zip(snapshots, snapshots[1:]):
        registry.publish(old, new)  # never drained
    assert sub.evicted
    with pytest.raises(SubscriptionEvicted):
        sub.take_nowait()
    # evicted subs receive nothing further and the writer path stays happy
    registry.publish(snapshots[-2], snapshots[-1])
    assert registry.evictions() == 1


def test_waker_fires_immediately_when_pending_or_evicted():
    registry = SubscriptionRegistry(max_pending=1)
    old = _snapshot(1, {1: 1.0})
    sub = registry.subscribe_vertices([1], snapshot=old)
    fired = threading.Event()
    sub.register_waker(fired.set)
    assert not fired.is_set()
    registry.publish(old, _snapshot(2, {1: 2.0}))
    assert fired.wait(1.0)
    # pending now: a fresh waker fires synchronously
    fired2 = threading.Event()
    sub.register_waker(fired2.set)
    assert fired2.is_set()


def test_unsubscribe_and_registry_close_wake_blocked_takers():
    registry = SubscriptionRegistry()
    sub = registry.subscribe_topk(2, snapshot=_snapshot(1, {1: 1.0}))
    results = []

    def taker():
        results.append(sub.take(timeout=5.0))

    thread = threading.Thread(target=taker)
    thread.start()
    registry.close()
    thread.join(timeout=5.0)
    assert not thread.is_alive()
    assert results == [[]]  # closed, not evicted
    assert registry.evictions() == 0
    with pytest.raises(RuntimeError):
        registry.subscribe_topk(2, snapshot=_snapshot(2, {1: 1.0}))


def test_service_publishes_to_live_subscription(tmp_path):
    """End-to-end in-process: watch top-k through a real service; the final
    pushed ranking equals the drained snapshot's own top_k."""
    graph = _graph()
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    engine.initialize(graph)
    service = UpdateService(engine, str(tmp_path / "svc"), batch_size=8)
    try:
        sub = service.subscriptions.subscribe_topk(5, largest=False)
        for update in poisoned_event_stream(
            graph, num_events=48, seed=7, poison_rate=0.0, protect=0
        ):
            service.submit(update)
        service.drain()
        final = service.snapshot()
        last_topk = [tuple(pair) for pair in sub.baseline]
        deadline_deltas = []
        while True:
            got = sub.take(timeout=0.2)
            if not got:
                break
            deadline_deltas.extend(got)
        for delta in deadline_deltas:
            assert delta["kind"] == "topk"
            last_topk = [tuple(pair) for pair in delta["topk"]]
        assert last_topk == final.top_k(5, largest=False)
        assert service.health()["subscribers"] == 1
    finally:
        service.close()
    # shutdown closed the subscription and woke it
    assert sub.closed
