"""Correctness of event coalescing, for every engine family.

The coalescer's contract is *exactness*: folding a run of raw events into
one delta must reproduce the final adjacency — content **and insertion
order**, because slot order drives the accumulative engines' float-sum
order — that applying the raw events one at a time would have produced.

Two layers of property test:

* graph-level (many random streams): raw one-at-a-time vs segmented +
  coalesced under random split points must leave bitwise-identical graphs,
  including row order;
* engine-level (all 7 engines × applicable algorithms): final states after
  a coalesced-batch run vs a one-event-per-delta run.  Selective engines
  and the restart baseline are bitwise-invariant to batching (established
  by the parallel-backend suite), so they must agree exactly; the
  accumulative family's results depend on how the stream is split into
  apply calls (propagation rounds differ), so they agree within the spec
  tolerance — while their *graphs* still agree bitwise.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, GraphDelta, UpdateKind, VertexUpdate
from repro.graph.generators import community_graph
from repro.graph.graph import Graph
from repro.service.coalescer import (
    FIG10_BATCH_SIZES,
    AdaptiveBatchSizer,
    coalesce_edge_run,
    segment_events,
)
from repro.workloads.updates import poisoned_event_stream

ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]
ENGINES = ["restart", "kickstarter", "risgraph", "graphbolt", "dzig", "ingress", "layph"]


def _applicable(engine_name: str, algorithm: str) -> bool:
    selective = make_algorithm(algorithm).is_selective()
    return {
        "restart": True,
        "ingress": True,
        "layph": True,
        "kickstarter": selective,
        "risgraph": selective,
        "graphbolt": not selective,
        "dzig": not selective,
    }[engine_name]


def _base_graph(seed=11):
    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


def _stream(graph, num_events, seed):
    """A clean (poison-free) adversarial stream with vertex-event barriers."""
    events = list(
        poisoned_event_stream(
            graph, num_events=num_events, seed=seed, poison_rate=0.0, protect=0
        )
    )
    fresh = max(graph.vertices()) + 1
    events.insert(
        min(10, len(events)),
        VertexUpdate(
            UpdateKind.ADD_VERTEX, fresh, ((0, fresh, 2.5), (fresh, 0, 1.5))
        ),
    )
    events.insert(min(25, len(events)), VertexUpdate(UpdateKind.DELETE_VERTEX, fresh))
    return events


def _graph_fingerprint(graph: Graph):
    return (list(graph.vertices()), list(graph.edges()))


def _apply_raw(graph: Graph, events) -> Graph:
    for event in events:
        delta = GraphDelta()
        if isinstance(event, VertexUpdate):
            delta.vertex_updates.append(event)
        else:
            delta.edge_updates.append(event)
        graph = delta.apply(graph)
    return graph


def _random_batches(events, rng, max_batch=12):
    position = 0
    while position < len(events):
        size = rng.randint(1, max_batch)
        yield events[position : position + size]
        position += size


def _apply_coalesced(graph: Graph, events, rng) -> Graph:
    for batch in _random_batches(events, rng):
        for segment in segment_events(batch):
            if isinstance(segment[0], VertexUpdate):
                delta = GraphDelta()
                delta.vertex_updates.extend(segment)
            else:
                delta = coalesce_edge_run(graph, segment)
            if not delta.is_empty():
                graph = delta.apply(graph)
    return graph


# ----------------------------------------------------------------------
# graph-level exactness: content and row order, many random streams
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
def test_coalesced_graph_is_bitwise_identical_any_splits(seed):
    base = _base_graph(seed=3)
    events = _stream(base, 80, seed=100 + seed)
    reference = _apply_raw(base.copy(), events)
    folded = _apply_coalesced(base.copy(), events, random.Random(seed))
    assert _graph_fingerprint(folded) == _graph_fingerprint(reference)


def test_coalescer_folds_redundant_work():
    base = Graph()
    base.add_vertex(0)
    base.add_vertex(1)
    source, target = 0, 1
    assert not base.has_edge(source, target)
    run = [
        EdgeUpdate(UpdateKind.ADD_EDGE, source, target, 1.0),
        EdgeUpdate(UpdateKind.ADD_EDGE, source, target, 2.0),
        EdgeUpdate(UpdateKind.ADD_EDGE, source, target, 3.0),
    ]
    delta = coalesce_edge_run(base, run)
    # overwrite chain collapses to one add carrying the final weight
    assert [
        (u.kind, u.source, u.target, u.weight) for u in delta.edge_updates
    ] == [(UpdateKind.ADD_EDGE, source, target, 3.0)]

    # add+delete of a fresh edge cancels to nothing
    cancel = [
        EdgeUpdate(UpdateKind.ADD_EDGE, source, target, 1.0),
        EdgeUpdate(UpdateKind.DELETE_EDGE, source, target),
    ]
    assert coalesce_edge_run(base, cancel).is_empty()

    # a dangling delete is dropped (raw apply would no-op it)
    dangling = [EdgeUpdate(UpdateKind.DELETE_EDGE, source, target)]
    assert coalesce_edge_run(base, dangling).is_empty()


def test_coalescer_preserves_delete_readd_row_position():
    base = Graph()
    for vertex in range(4):
        base.add_vertex(vertex)
    base.add_edge(0, 1, 1.0)
    base.add_edge(0, 2, 1.0)
    base.add_edge(0, 3, 1.0)
    run = [
        EdgeUpdate(UpdateKind.DELETE_EDGE, 0, 1),
        EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, 9.0),
    ]
    reference = _apply_raw(base.copy(), run)
    delta = coalesce_edge_run(base, run)
    folded = delta.apply(base.copy())
    # the re-added key moved to the end of row 0 in both worlds
    assert list(folded.edges()) == list(reference.edges())
    assert [t for s, t, _w in folded.edges() if s == 0] == [2, 3, 1]


def test_undirected_runs_pass_through():
    base = Graph(directed=False)
    base.add_vertex(0)
    base.add_vertex(1)
    run = [
        EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, 1.0),
        EdgeUpdate(UpdateKind.ADD_EDGE, 1, 0, 2.0),
    ]
    delta = coalesce_edge_run(base, run)
    assert len(delta.edge_updates) == 2  # no cross-alias folding


def test_segment_events_vertex_barriers():
    edge = EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, 1.0)
    vertex = VertexUpdate(UpdateKind.ADD_VERTEX, 9)
    segments = segment_events([edge, edge, vertex, edge, vertex, vertex])
    assert [len(s) for s in segments] == [2, 1, 1, 1, 1]
    assert [u for s in segments for u in s] == [edge, edge, vertex, edge, vertex, vertex]


# ----------------------------------------------------------------------
# engine-level: all 7 engines × applicable algorithms
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "engine_name,algorithm",
    [
        (engine, algorithm)
        for engine in ENGINES
        for algorithm in ALGORITHMS
        if _applicable(engine, algorithm)
    ],
)
def test_coalesced_batches_match_one_at_a_time(engine_name, algorithm):
    base = _base_graph()
    spec = make_algorithm(algorithm, source=0)

    reference = build_engine(engine_name, spec)
    reference.initialize(base)
    events = _stream(base, 60, seed=42)
    for event in events:
        delta = GraphDelta()
        if isinstance(event, VertexUpdate):
            delta.vertex_updates.append(event)
        else:
            delta.edge_updates.append(event)
        reference.apply_delta(delta)

    subject = build_engine(engine_name, spec)
    subject.initialize(base)
    rng = random.Random(7)
    for batch in _random_batches(events, rng):
        target = subject._storage_target()
        for segment in segment_events(batch):
            if isinstance(segment[0], VertexUpdate):
                delta = GraphDelta()
                delta.vertex_updates.extend(segment)
            else:
                delta = coalesce_edge_run(target.graph, segment)
            if not delta.is_empty():
                subject.apply_delta(delta)
                target = subject._storage_target()

    ref_target = reference._storage_target()
    sub_target = subject._storage_target()
    # the graphs agree bitwise for every engine — coalescing is exact
    assert _graph_fingerprint(sub_target.graph) == _graph_fingerprint(
        ref_target.graph
    )
    if spec.is_selective() or engine_name == "restart":
        # batching-invariant families: states agree bitwise
        assert sub_target.states == ref_target.states
    else:
        # accumulative propagation depends on the apply-call split; the
        # family contract is agreement within the convergence tolerance
        # band (layph's layered approximation is the widest at ~1e-3)
        assert spec.states_match(ref_target.states, sub_target.states, tolerance=5e-3)


# ----------------------------------------------------------------------
# adaptive batch sizing on the fig10 grid
# ----------------------------------------------------------------------
def test_adaptive_sizer_walks_the_fig10_grid():
    sizer = AdaptiveBatchSizer(target_latency=0.05)
    assert sizer.size == 10
    # a slow batch steps down one grid notch
    assert sizer.record(10, 0.5, backlog=0) == 2
    # slow again: already at the bottom, stays
    assert sizer.record(2, 0.5, backlog=100) == 2
    # fast with a backlog steps up
    assert sizer.record(2, 0.001, backlog=50) == 10
    assert sizer.record(10, 0.001, backlog=50) == 50
    # fast but no backlog: stay (small batches keep snapshots fresh)
    assert sizer.record(50, 0.001, backlog=0) == 50
    assert sizer.observations == 5
    assert tuple(sizer.grid) == FIG10_BATCH_SIZES


def test_adaptive_sizer_rejects_off_grid_initial():
    with pytest.raises(ValueError):
        AdaptiveBatchSizer(initial=7)
