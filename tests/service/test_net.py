"""HTTP front end: endpoint contracts, backpressure, push, and SIGKILL.

Everything except the kill leg runs the server in-process (one
``asyncio.run`` per test, server + client sharing the loop, the service's
writer on its own thread as always).  The kill leg boots the standalone
``python -m repro.service.net`` process, drives acked submits while a
chunked subscription stream is open, SIGKILLs it mid-stream, and proves the
over-the-wire durability contract: every HTTP-200-acked event is present
after ``UpdateService.recover()`` with states bitwise-identical to a
fault-free reference run, and a subscriber reconnecting to the recovered
service re-anchors on a consistent baseline and delta stream.
"""

from __future__ import annotations

import asyncio
import math
import os
import signal
import subprocess
import sys

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.delta import EdgeUpdate, UpdateKind
from repro.service import UpdateService
from repro.service.net import (
    AsyncServiceClient,
    demo_graph,
    serve,
    value_from_wire,
)
from repro.workloads.updates import poisoned_event_stream

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _make_service(tmp_path, name="svc", **kwargs):
    graph = demo_graph()
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    engine.initialize(graph)
    kwargs.setdefault("batch_size", 8)
    return UpdateService(engine, str(tmp_path / name), **kwargs), graph


def _events(graph, n=48, seed=7):
    return poisoned_event_stream(
        graph, num_events=n, seed=seed, poison_rate=0.0, protect=0
    )


def _run_with_server(service, fn, **server_kwargs):
    """Boot server + client on a fresh loop, run ``fn(server, client)``."""

    async def runner():
        server = await serve(service, **server_kwargs)
        client = AsyncServiceClient(server.host, server.port)
        try:
            return await fn(server, client)
        finally:
            await client.close()
            await server.aclose()

    try:
        return asyncio.run(runner())
    finally:
        if not service.health()["dead"]:
            service.close()


def _pairs(wire_pairs):
    return [(int(v), value_from_wire(val)) for v, val in wire_pairs]


# ----------------------------------------------------------------------
# request/response endpoints
# ----------------------------------------------------------------------
def test_submit_query_drain_roundtrip(tmp_path):
    service, graph = _make_service(tmp_path)
    events = _events(graph, 24)

    async def scenario(server, client):
        status, doc = await client.ready()
        assert status == 200 and doc["ready"] is True
        # single submits with explicit seqs
        for seq, update in enumerate(events[:8], start=1):
            status, doc = await client.submit(update, seq=seq)
            assert status == 200
            assert doc["acks"] == [seq] and doc["duplicates"] == []
        # one batched submit for the rest (server assigns seqs)
        status, doc = await client.submit_batch(
            [(None, update) for update in events[8:]]
        )
        assert status == 200
        assert doc["acks"] == list(range(9, len(events) + 1))
        status, doc = await client.drain()
        assert status == 200 and doc["drained"] is True
        assert doc["health"]["last_disposed_seq"] == len(events)

        snapshot = service.snapshot()
        status, doc = await client.health()
        assert status == 200
        assert doc["published_seq"] == snapshot.seq
        assert doc["staleness_events"] == 0

        # point read: bitwise equality through the hex side-channel
        vertex = sorted(snapshot.states)[3]
        status, doc = await client.value(vertex)
        assert status == 200 and doc["vertex"] == vertex
        assert float.fromhex(doc["hex"]) == snapshot.states[vertex] or (
            math.isnan(float.fromhex(doc["hex"]))
            and math.isnan(snapshot.states[vertex])
        )
        assert doc["checksum"] == snapshot.checksum

        # top-k read matches the snapshot's own ranking
        status, doc = await client.topk(5, largest=False)
        assert status == 200
        assert _pairs(doc["entries"]) == snapshot.top_k(5, largest=False)
        return True

    assert _run_with_server(service, scenario)


def test_idempotent_resubmit_and_seq_gap(tmp_path):
    service, graph = _make_service(tmp_path)
    events = _events(graph, 8)

    async def scenario(server, client):
        for seq, update in enumerate(events, start=1):
            status, _doc = await client.submit(update, seq=seq)
            assert status == 200
        # a retried batch dup-acks every seq, re-enqueueing nothing
        status, doc = await client.submit_batch(
            [(seq, update) for seq, update in enumerate(events, start=1)]
        )
        assert status == 200
        assert doc["acks"] == doc["duplicates"] == list(range(1, 9))
        # a gap is a client bug: 409 with the expected next seq in detail
        status, doc = await client.submit(events[0], seq=42)
        assert status == 409 and doc["error"] == "seq_conflict"
        assert "gap" in doc["detail"]
        assert service.health()["stats"]["events_submitted"] == len(events)
        return True

    assert _run_with_server(service, scenario)


def test_poison_submit_reports_quarantine_diagnosis(tmp_path):
    service, _graph = _make_service(tmp_path)

    async def scenario(server, client):
        poison = EdgeUpdate(UpdateKind.ADD_EDGE, 1, 2, float("nan"))
        status, doc = await client.submit(poison, seq=1)
        assert status == 200  # durable (WAL'd) even though it will dead-letter
        assert doc["acks"] == [1]
        diagnosis = doc["quarantine"]["1"]
        assert any("weight" in problem for problem in diagnosis["problems"])
        await client.drain()
        status, doc = await client.dlq()
        assert status == 200
        assert [entry["seq"] for entry in doc["entries"]] == [1]
        assert doc["entries"][0]["kind"] == "intrinsic"
        return True

    assert _run_with_server(service, scenario)


def test_overload_maps_to_429_with_retry_after(tmp_path):
    # batch_size far above the queue bound: the writer waits for a full
    # grid, so submitted events sit in the queue and the bound is reachable
    service, graph = _make_service(tmp_path, batch_size=64, max_queue=4)
    events = _events(graph, 8)

    async def scenario(server, client):
        for seq, update in enumerate(events[:4], start=1):
            status, _doc = await client.submit(update, seq=seq)
            assert status == 200
        status, doc = await client.submit(events[4], seq=5, timeout=0)
        assert status == 429
        assert doc["error"] == "overloaded"
        assert doc["acks"] == []  # nothing from this request was WAL'd
        assert server.stats["overloaded"] == 1
        # the client backs off, the service drains, then the retry lands
        status, _doc = await client.drain()
        assert status == 200
        status, doc = await client.submit(events[4], seq=5, timeout=0)
        assert status == 200 and doc["acks"] == [5]
        return True

    assert _run_with_server(service, scenario)


def test_error_statuses(tmp_path):
    service, _graph = _make_service(tmp_path)

    async def scenario(server, client):
        status, doc = await client.request("GET", "/nope")
        assert status == 404 and doc["error"] == "unknown_endpoint"
        status, doc = await client.request("GET", "/submit")
        assert status == 405 and doc["error"] == "method_not_allowed"
        status, doc = await client.request("GET", "/value/abc")
        assert status == 400 and doc["error"] == "bad_vertex"
        status, doc = await client.request("GET", "/value/999999")
        assert status == 404 and doc["error"] == "unknown_vertex"
        status, doc = await client.request("GET", "/topk?k=0")
        assert status == 400
        status, doc = await client.request("POST", "/submit", {"events": []})
        assert status == 400 and doc["error"] == "bad_events"
        status, doc = await client.request("POST", "/submit", {"no": "update"})
        assert status == 400
        status, doc = await client.request(
            "GET", "/subscription/unknown-id/poll?wait=0"
        )
        assert status == 404 and doc["hint"].startswith("resubscribe")
        return True

    assert _run_with_server(service, scenario)


def test_oversized_body_is_413(tmp_path):
    service, _graph = _make_service(tmp_path)

    async def scenario(server, client):
        status, doc = await client.request(
            "POST", "/submit", {"junk": "x" * 4096}
        )
        assert status == 413 and doc["error"] == "body_too_large"
        return True

    assert _run_with_server(service, scenario, max_body=1024)


def test_not_ready_after_close_is_503(tmp_path):
    service, _graph = _make_service(tmp_path)

    async def scenario(server, client):
        service.close()
        status, doc = await client.ready()
        assert status == 503 and doc["ready"] is False
        status, doc = await client.submit(
            EdgeUpdate(UpdateKind.ADD_EDGE, 0, 1, 1.0), seq=1
        )
        assert status == 503 and doc["error"] == "service_unavailable"
        return True

    assert _run_with_server(service, scenario)


# ----------------------------------------------------------------------
# subscriptions over the wire
# ----------------------------------------------------------------------
def _shortcut_updates(snapshot, count=1, weight=1e-6):
    """Edges source->v with tiny weight: v's SSSP distance must drop."""
    victims = [
        v
        for v, value in sorted(snapshot.states.items())
        if v != 0 and math.isfinite(value) and value > 0.001
    ]
    assert len(victims) >= count
    return victims[:count], [
        EdgeUpdate(UpdateKind.ADD_EDGE, 0, v, weight) for v in victims[:count]
    ]


def test_long_poll_delivers_watched_vertex_delta(tmp_path):
    service, _graph = _make_service(tmp_path, batch_size=1)

    async def scenario(server, client):
        (victim,), updates = _shortcut_updates(service.snapshot())
        status, sub = await client.subscribe_vertices([victim])
        assert status == 200
        baseline = dict(_pairs(sub["baseline"]))
        assert victim in baseline

        async def poll_then_submit():
            poller = asyncio.create_task(client_poll())
            await asyncio.sleep(0.05)
            other = AsyncServiceClient(server.host, server.port)
            try:
                status, doc = await other.submit(updates[0], seq=1)
                assert status == 200
            finally:
                await other.close()
            return await poller

        async def client_poll():
            status, doc = await client.poll(sub["id"], wait=10.0)
            assert status == 200
            return doc

        doc = await asyncio.wait_for(poll_then_submit(), 15.0)
        deltas = doc["deltas"]
        assert deltas, "long-poll should have been woken by the publish"
        changed = dict(_pairs(deltas[-1]["changed"]))
        assert changed[victim] == service.snapshot().states[victim]
        assert changed[victim] < baseline[victim]
        # unsubscribe, then the id is gone
        status, _doc = await client.unsubscribe(sub["id"])
        assert status == 200
        status, _doc = await client.poll(sub["id"], wait=0)
        assert status == 404
        return True

    assert _run_with_server(service, scenario)


def test_stream_pushes_topk_deltas(tmp_path):
    service, _graph = _make_service(tmp_path, batch_size=1)

    async def scenario(server, client):
        victims, updates = _shortcut_updates(service.snapshot(), count=3)
        status, sub = await client.subscribe_topk(4, largest=False)
        assert status == 200
        records = []

        async def reader():
            async for record in client.stream(sub["id"]):
                records.append(record)
                if record["kind"] in ("closed", "evicted"):
                    return
                if sum(1 for r in records if r["kind"] == "topk") >= 1:
                    return

        task = asyncio.create_task(reader())
        await asyncio.sleep(0.05)
        other = AsyncServiceClient(server.host, server.port)
        try:
            for seq, update in enumerate(updates, start=1):
                status, _doc = await other.submit(update, seq=seq)
                assert status == 200
            await other.drain()
        finally:
            await other.close()
        await asyncio.wait_for(task, 15.0)
        assert records[0]["kind"] == "hello"
        assert _pairs(records[0]["baseline"]) == [
            tuple(pair) for pair in _pairs(sub["baseline"])
        ]
        topk_records = [r for r in records if r["kind"] == "topk"]
        assert topk_records, f"no topk push in {records}"
        seqs = [r["seq"] for r in topk_records]
        assert seqs == sorted(seqs)
        return True

    assert _run_with_server(service, scenario)


def test_slow_consumer_gets_410_and_resubscribes(tmp_path):
    service, _graph = _make_service(tmp_path, batch_size=1)

    async def scenario(server, client):
        victims, updates = _shortcut_updates(service.snapshot(), count=4)
        status, sub = await client.subscribe_vertices(victims, max_pending=1)
        assert status == 200
        # four separate publishes, never polled: bounded queue drops + evicts
        for seq, update in enumerate(updates, start=1):
            status, _doc = await client.submit(update, seq=seq)
            assert status == 200
        await client.drain()
        status, doc = await client.poll(sub["id"], wait=0)
        assert status == 410
        assert doc["error"] == "subscriber_evicted"
        assert "resubscribe" in doc["hint"]
        # the hinted recovery works: fresh subscription, fresh baseline
        status, fresh = await client.subscribe_vertices(victims)
        assert status == 200
        baseline = dict(_pairs(fresh["baseline"]))
        snapshot = service.snapshot()
        assert all(baseline[v] == snapshot.states[v] for v in victims)
        return True

    assert _run_with_server(service, scenario)


# ----------------------------------------------------------------------
# the kill leg: 200-acked means durable, over the wire
# ----------------------------------------------------------------------
def _spawn_server(directory):
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.net", "--directory", directory],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
        text=True,
    )
    seen = []
    for _ in range(50):  # skip interpreter warnings until the bind line
        line = proc.stdout.readline().strip()
        seen.append(line)
        if line.startswith("LISTENING"):
            _tag, host, port = line.split()
            return proc, host, int(port)
        if not line and proc.poll() is not None:
            break
    proc.kill()
    raise AssertionError(f"server failed to boot: {seen!r}")


def test_sigkill_mid_stream_recovers_bitwise(tmp_path):
    graph = demo_graph()
    events = _events(graph, 120, seed=9)
    directory = str(tmp_path / "svc")
    proc, host, port = _spawn_server(directory)
    stream_records = []

    async def drive():
        client = AsyncServiceClient(host, port)
        status, sub = await client.subscribe_topk(5, largest=False)
        assert status == 200

        async def reader():
            try:
                async for record in client.stream(sub["id"]):
                    stream_records.append(record)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                pass  # the kill severs the stream mid-chunk

        task = asyncio.create_task(reader())
        acked = 0
        for seq, update in enumerate(events[:60], start=1):
            status, doc = await client.submit(update, seq=seq)
            assert status == 200 and doc["acks"] == [seq]
            acked = seq
        # SIGKILL with the stream open and the pipeline mid-flight
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        with pytest.raises((OSError, asyncio.IncompleteReadError)):
            for attempt in range(2):  # keep-alive socket may die lazily
                await client.submit(events[60], seq=61)
        await asyncio.wait_for(task, 10.0)
        await client.close()
        return acked

    try:
        acked = asyncio.run(drive())
    finally:
        if proc.poll() is None:
            proc.kill()
    assert acked == 60

    # pre-kill stream: hello + monotone, bounded topk pushes (no phantoms)
    assert stream_records and stream_records[0]["kind"] == "hello"
    topk_seqs = [r["seq"] for r in stream_records if r["kind"] == "topk"]
    assert topk_seqs == sorted(topk_seqs)
    assert all(seq <= acked + 1 for seq in topk_seqs)

    # recover in-process: every acked seq must be on disk
    recovered = UpdateService.recover(directory, batch_size=8)
    try:
        last_walled = recovered.health()["last_walled_seq"]
        assert last_walled >= acked
        assert recovered.health()["replaying"] or recovered.ready()
        recovered.drain()
        assert recovered.ready()

        # fault-free reference over the same durable prefix
        ref_engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
        ref_engine.initialize(demo_graph())
        reference = UpdateService(ref_engine, str(tmp_path / "ref"), batch_size=8)
        try:
            for seq, update in enumerate(events[:last_walled], start=1):
                reference.submit(update, seq=seq)
            reference.drain()
            ref_snap = reference.snapshot()
        finally:
            reference.close()
        rec_snap = recovered.snapshot()
        assert rec_snap.seq == ref_snap.seq
        assert rec_snap.states == ref_snap.states  # bitwise: dict float equality
        assert rec_snap.top_k(10, largest=False) == ref_snap.top_k(10, largest=False)

        # a reconnecting subscriber re-anchors consistently on the recovered
        # service and its stream tracks the post-recovery publishes
        async def reconnect():
            server = await serve(recovered)
            client = AsyncServiceClient(server.host, server.port)
            try:
                status, sub = await client.subscribe_topk(5, largest=False)
                assert status == 200
                assert _pairs(sub["baseline"]) == rec_snap.top_k(5, largest=False)
                assert sub["seq"] == rec_snap.seq
                for seq, update in enumerate(
                    events[last_walled : last_walled + 16],
                    start=last_walled + 1,
                ):
                    status, doc = await client.submit(update, seq=seq)
                    assert status == 200
                await client.drain()
                status, doc = await client.poll(sub["id"], wait=2.0)
                assert status == 200
                last = _pairs(sub["baseline"])
                for delta in doc["deltas"]:
                    assert delta["kind"] == "topk"
                    last = _pairs(delta["topk"])
                assert last == recovered.snapshot().top_k(5, largest=False)
            finally:
                await client.close()
                await server.aclose()

        asyncio.run(reconnect())
    finally:
        if not recovered.health()["dead"]:
            recovered.close()
