"""Persistent slab-arena cache (PR 10): resident blocks == fresh exports, bitwise.

The arena layer's contract is that whatever bytes a worker reads through the
resident shared-memory block are *exactly* the bytes of the slab the caller
just compiled — whether the call was a miss (full export), a hit (masks-only
refresh) or an in-place patch of O(changed) slot ranges.  The property tests
drive cache-served CSR snapshots through random delta sequences (weight-only
steady state, structural churn with vertex turnover, growth past the region
capacity, churn past the re-export fraction) and compare every served block
byte-for-byte against the freshly built slab, while pinning the expected
hit/miss/patch counter trajectory.  The fallbacks — ``REPRO_SLAB_ARENA=0``,
``REPRO_SHM=0`` and uncacheable per-call compiles — must all yield ``None``
from ``refs_for`` so the backend degrades to the per-call export path.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.engine.algorithms import make_algorithm
from repro.engine.dense_propagation import build_propagation_slab
from repro.graph.csr_cache import CSRCache
from repro.graph.delta import GraphDelta
from repro.graph.generators import community_graph
from repro.parallel import arena, executor, shm
from repro.parallel.executor import POOL_STATS
from repro.workloads.updates import random_edge_delta, random_vertex_delta

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable in this environment"
)

ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]


@pytest.fixture()
def fresh_arena():
    executor.shutdown_pools()
    POOL_STATS.reset()
    yield arena.slab_arena_cache()
    shm.detach_all()
    arena.reset_slab_arenas()
    executor.shutdown_pools()


def _graph(seed: int = 13):
    return community_graph(
        num_communities=3,
        community_size_range=(14, 20),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


def _weight_delta(graph, num_changes: int, seed: int) -> GraphDelta:
    """Reweight ``num_changes`` existing edges — vertex id space unchanged,
    so the CSR patches forward with ``same_ids`` notes (the steady state)."""
    rng = random.Random(seed)
    edges = sorted(graph.edges())
    rng.shuffle(edges)
    delta = GraphDelta()
    for source, target, weight in edges[:num_changes]:
        delta.delete_edge(source, target)
        delta.add_edge(source, target, round(float(weight) + rng.uniform(0.1, 2.0), 3))
    return delta


def _slab(spec, cache: CSRCache, graph):
    built = build_propagation_slab(
        spec, cache.adjacency(spec, graph), {}, {0: 1.0}
    )
    assert built is not None, "slab compilation unexpectedly fell back"
    return built[0]


def _assert_block_matches(refs, slab):
    """The shared block a worker would attach is bitwise the slab's arrays."""
    assert refs is not None
    for key, array in (
        ("targets", slab.targets),
        ("factors", slab.factors),
        ("absorb", slab.absorb),
    ):
        view = shm.attach(refs[key])
        assert view.dtype == array.dtype
        assert view.shape == array.shape
        assert view.tobytes() == array.tobytes(), f"{key} diverged from fresh export"
    assert (refs["allowed"] is None) == (slab.allowed is None)
    if slab.allowed is not None:
        assert shm.attach(refs["allowed"]).tobytes() == slab.allowed.tobytes()


# ----------------------------------------------------------------------
# the property: served blocks are bitwise fresh exports
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_weight_delta_sequence_patches_in_place(fresh_arena, algorithm):
    """Steady state: weight-only deltas must be served by in-place patches
    (one initial export, zero further misses), every block bitwise."""
    spec = make_algorithm(algorithm, source=0)
    cache = CSRCache()
    graph = _graph()
    slab = _slab(spec, cache, graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_misses == 1
    for step in range(6):
        delta = _weight_delta(graph, num_changes=3, seed=100 + step)
        new_graph = delta.apply(graph)
        cache.apply_delta(spec, graph, new_graph, delta)
        graph = new_graph
        slab = _slab(spec, cache, graph)
        _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_misses == 1, "steady-state delta forced a re-export"
    assert POOL_STATS.arena_patches == 6


def test_repeat_calls_hit_the_resident_block(fresh_arena):
    spec = make_algorithm("sssp", source=0)
    cache = CSRCache()
    graph = _graph()
    slab = _slab(spec, cache, graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    for _ in range(3):
        slab = _slab(spec, cache, graph)
        _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_misses == 1
    assert POOL_STATS.arena_hits == 3


@pytest.mark.parametrize("algorithm", ["sssp", "pagerank"])
def test_structural_churn_stays_bitwise(fresh_arena, algorithm):
    """Edge and vertex turnover (ids shifting between snapshots): whatever
    mix of patches, re-exports and rebuilds results, every served block must
    equal the fresh compile byte-for-byte."""
    spec = make_algorithm(algorithm, source=0)
    cache = CSRCache()
    graph = _graph(seed=29)
    served = 0
    for step in range(8):
        slab = _slab(spec, cache, graph)
        refs = fresh_arena.refs_for(slab)
        _assert_block_matches(refs, slab)
        served += 1
        if step % 3 == 2:
            delta = random_vertex_delta(
                graph, num_additions=2, num_deletions=1, seed=800 + step, protect=0
            )
        else:
            delta = random_edge_delta(
                graph, num_additions=4, num_deletions=3, seed=700 + step, protect=0
            )
        new_graph = delta.apply(graph)
        cache.apply_delta(spec, graph, new_graph, delta)
        graph = new_graph
    assert (
        POOL_STATS.arena_misses + POOL_STATS.arena_patches + POOL_STATS.arena_hits
        == served
    )


def test_churn_fraction_forces_reexport(fresh_arena):
    """A patch touching more than ``REPRO_CSR_REBUILD_FRACTION`` of the edge
    slots must give way to a full re-export (the amortization guard)."""
    spec = make_algorithm("sssp", source=0)
    # rebuild_fraction=1.0 keeps the CSR cache patching (and producing patch
    # notes) no matter the delta size, so the *arena's* churn guard decides.
    cache = CSRCache(rebuild_fraction=1.0)
    graph = _graph(seed=31)
    slab = _slab(spec, cache, graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    num_edges = graph.num_edges()
    delta = _weight_delta(graph, num_changes=num_edges // 2 + 1, seed=5)
    new_graph = delta.apply(graph)
    cache.apply_delta(spec, graph, new_graph, delta)
    slab = _slab(spec, cache, new_graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_patches == 0
    assert POOL_STATS.arena_misses == 2


def test_growth_past_region_capacity_reallocates(fresh_arena):
    """A snapshot that outgrows its power-of-two regions re-exports into a
    fresh (bigger) arena and keeps serving bitwise-identical blocks."""
    spec = make_algorithm("sssp", source=0)
    cache = CSRCache(rebuild_fraction=1.0)
    graph = community_graph(
        num_communities=2,
        community_size_range=(8, 10),
        intra_edge_probability=0.15,
        inter_edges_per_community=2,
        weighted=True,
        seed=3,
    )
    slab = _slab(spec, cache, graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    small_targets = int(slab.targets.size)
    # quadruple-ish the edge count: past any pow2 slack of the small block
    delta = random_edge_delta(
        graph,
        num_additions=small_targets * 3,
        num_deletions=0,
        seed=17,
        protect=0,
    )
    new_graph = delta.apply(graph)
    cache.apply_delta(spec, graph, new_graph, delta)
    slab = _slab(spec, cache, new_graph)
    assert int(slab.targets.size) > 2 * small_targets
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_misses == 2
    # ...and the grown block keeps hitting
    slab = _slab(spec, cache, new_graph)
    _assert_block_matches(fresh_arena.refs_for(slab), slab)
    assert POOL_STATS.arena_hits == 1


# ----------------------------------------------------------------------
# fallbacks: refs_for must return None, never a wrong block
# ----------------------------------------------------------------------
def test_arena_disabled_by_env(fresh_arena, monkeypatch):
    spec = make_algorithm("sssp", source=0)
    cache = CSRCache()
    graph = _graph()
    slab = _slab(spec, cache, graph)
    monkeypatch.setenv("REPRO_SLAB_ARENA", "0")
    assert fresh_arena.refs_for(slab) is None
    monkeypatch.delenv("REPRO_SLAB_ARENA")
    monkeypatch.setenv("REPRO_SHM", "0")
    assert fresh_arena.refs_for(slab) is None


def test_uncached_compile_is_not_arena_keyed(fresh_arena, monkeypatch):
    """With the CSR cache disabled every compile is a per-call object — the
    slab must carry no block token, or the arena would churn per call."""
    monkeypatch.setenv("REPRO_CSR_CACHE", "0")
    spec = make_algorithm("sssp", source=0)
    cache = CSRCache()
    graph = _graph()
    slab = _slab(spec, cache, graph)
    assert slab.block_token is None
    assert fresh_arena.refs_for(slab) is None
    assert POOL_STATS.arena_misses == 0


# ----------------------------------------------------------------------
# the parallel shortcut phase rides the same pool
# ----------------------------------------------------------------------
def _metrics_fingerprint(metrics):
    return (
        metrics.iterations,
        metrics.edge_activations,
        metrics.vertex_updates,
        list(metrics.activations_per_round),
        list(metrics.active_vertices_per_round),
    )


@pytest.mark.parametrize("algorithm", ["sssp", "pagerank"])
def test_layph_shortcut_phase_pooled_and_bitwise(fresh_arena, monkeypatch, algorithm):
    """Deferred shortcut solves of rebuilt subgraphs run as one LPT-scheduled
    pool batch and stay bitwise-identical (states *and* metrics) to serial."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    from repro.bench.harness import build_engine

    def run(backend: str):
        spec = make_algorithm(algorithm, source=0)
        engine = build_engine("layph", spec, backend=backend)
        engine.initialize(_graph(seed=47))
        outputs = []
        for step in range(4):
            delta = random_edge_delta(
                engine.graph,
                num_additions=5,
                num_deletions=4,
                seed=900 + step,
                protect=0,
            )
            result = engine.apply_delta(delta)
            outputs.append((dict(result.states), _metrics_fingerprint(result.metrics)))
        return outputs

    serial = run("numpy")
    POOL_STATS.reset()
    parallel = run("numpy-parallel")
    for step, (expected, actual) in enumerate(zip(serial, parallel)):
        assert expected[0] == actual[0], f"states diverged at delta {step}"
        assert expected[1] == actual[1], f"metrics diverged at delta {step}"
    assert POOL_STATS.shortcut_batches >= 1, (
        "no deferred shortcut batch ever reached the pool"
    )
