"""Lint-style guard: the slab kernels stay engine-free.

The whole point of :mod:`repro.parallel.slabs` is that its kernels operate on
plain array slabs — no ``Graph``, no ``AlgorithmSpec``, no engine objects —
so they can run unchanged inside worker processes that only see shared-memory
array views.  These tests enforce that boundary structurally: the module may
import nothing from ``repro``, and no public kernel may grow a parameter that
smells like an engine-side object.
"""

from __future__ import annotations

import ast
import inspect
import pathlib

import repro.parallel.slabs as slabs

ALLOWED_IMPORT_ROOTS = {"__future__", "dataclasses", "math", "numpy", "typing"}

#: parameter names that would mean a kernel started taking engine objects
FORBIDDEN_PARAMETERS = {
    "adjacency",
    "csr",
    "delta",
    "engine",
    "graph",
    "layered",
    "spec",
    "subgraph",
}


def test_slabs_module_imports_no_engine_code():
    tree = ast.parse(pathlib.Path(slabs.__file__).read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            modules = [node.module or ""]
        else:
            continue
        for module in modules:
            root = module.split(".")[0]
            assert root in ALLOWED_IMPORT_ROOTS, (
                f"repro.parallel.slabs imports {module!r}; slab kernels must "
                f"not depend on engine-side code"
            )


def test_slab_kernels_accept_only_array_slabs():
    checked = 0
    for name, function in inspect.getmembers(slabs, inspect.isfunction):
        if name.startswith("_") or function.__module__ != slabs.__name__:
            continue
        parameters = set(inspect.signature(function).parameters)
        offending = parameters & FORBIDDEN_PARAMETERS
        assert not offending, f"{name} takes engine-side parameters {offending}"
        checked += 1
    # the suite is vacuous if the kernels moved elsewhere
    assert checked >= 8, f"only {checked} public kernels found in slabs"
