"""Bitwise parity of ``numpy-parallel`` with serial ``numpy`` for every engine.

The process-parallel backend's contract is *bitwise identity*: row-partitioned
gathers concatenate in partition order and per-subgraph results merge in the
serial processing order, so states, round counts, edge activations and the
selective engines' dependency forests must all equal the serial numpy run —
not merely approximate it.  The suite drives every engine through a random
delta sequence under both backends (with ``REPRO_PARALLEL_MIN_EDGES=0`` so
even these small graphs cross the parallel threshold and ``REPRO_WORKERS=2``)
and also pins the graceful fallbacks: ``workers=1`` and ``REPRO_SHM=0`` must
quietly run the serial kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.engine.runner import run_batch
from repro.graph.generators import community_graph
from repro.parallel import executor, shm
from repro.workloads.updates import random_edge_delta

ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]
ENGINES = ["restart", "kickstarter", "risgraph", "graphbolt", "dzig", "ingress", "layph"]
NUM_DELTAS = 3


def _applicable(engine_name: str, algorithm: str) -> bool:
    selective = make_algorithm(algorithm).is_selective()
    return {
        "restart": True,
        "ingress": True,
        "layph": True,
        "kickstarter": selective,
        "risgraph": selective,
        "graphbolt": not selective,
        "dzig": not selective,
    }[engine_name]


def _base_graph():
    return community_graph(
        num_communities=4,
        community_size_range=(18, 30),
        intra_edge_probability=0.22,
        inter_edges_per_community=4,
        weighted=True,
        seed=11,
    )


def _metrics_fingerprint(metrics):
    return (
        metrics.iterations,
        metrics.edge_activations,
        metrics.vertex_updates,
        list(metrics.activations_per_round),
        list(metrics.active_vertices_per_round),
    )


def _parent_forest(engine):
    """The selective engines' dependency forest, whichever store holds it."""
    if getattr(engine, "dep_table", None) is not None:
        return engine.dep_table.to_parents_dict()
    parents = getattr(engine, "parents", None)
    return dict(parents) if parents is not None else None


def _run_sequence(engine_name: str, algorithm: str, backend: str):
    spec = make_algorithm(algorithm, source=0)
    engine = build_engine(engine_name, spec, backend=backend)
    graph = _base_graph()
    engine.initialize(graph)
    outputs = []
    for step in range(NUM_DELTAS):
        delta = random_edge_delta(
            graph, num_additions=3, num_deletions=2, seed=400 + step, protect=0
        )
        result = engine.apply_delta(delta)
        outputs.append((dict(result.states), _metrics_fingerprint(result.metrics)))
        graph = engine.graph
    return outputs, _parent_forest(engine)


@pytest.fixture()
def parallel_env(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")


@pytest.mark.parametrize(
    "engine_name,algorithm",
    [
        (engine, algorithm)
        for engine in ENGINES
        for algorithm in ALGORITHMS
        if _applicable(engine, algorithm)
    ],
)
def test_engine_parity_over_delta_sequence(parallel_env, engine_name, algorithm):
    serial_outputs, serial_forest = _run_sequence(engine_name, algorithm, "numpy")
    parallel_outputs, parallel_forest = _run_sequence(
        engine_name, algorithm, "numpy-parallel"
    )
    for step, (serial, parallel) in enumerate(zip(serial_outputs, parallel_outputs)):
        assert serial[0] == parallel[0], f"states diverged at delta {step}"
        assert serial[1] == parallel[1], f"metrics diverged at delta {step}"
    assert serial_forest == parallel_forest


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_batch_parity(parallel_env, algorithm):
    spec = make_algorithm(algorithm, source=0)
    graph = _base_graph()
    serial = run_batch(spec, graph, backend="numpy")
    parallel = run_batch(spec, graph, backend="numpy-parallel")
    assert serial.states == parallel.states
    assert _metrics_fingerprint(serial.metrics) == _metrics_fingerprint(
        parallel.metrics
    )


def test_parallel_pool_actually_dispatches(parallel_env):
    if not shm.shm_available():
        pytest.skip("shared memory unavailable in this environment")
    executor.shutdown_pools()
    outputs, _forest = _run_sequence("layph", "sssp", "numpy-parallel")
    assert outputs  # the run completed through the pool-backed phases
    assert executor._POOLS, "numpy-parallel never spawned a worker pool"
    executor.shutdown_pools()


def test_workers_1_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "1")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    assert executor.parallel_pool() is None
    serial_outputs, serial_forest = _run_sequence("layph", "sssp", "numpy")
    parallel_outputs, parallel_forest = _run_sequence(
        "layph", "sssp", "numpy-parallel"
    )
    assert serial_outputs == parallel_outputs
    assert serial_forest == parallel_forest


def test_shm_disabled_falls_back_to_serial(monkeypatch):
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    monkeypatch.setenv("REPRO_SHM", "0")
    assert not shm.shm_available()
    assert executor.parallel_pool() is None
    serial_outputs, _ = _run_sequence("graphbolt", "pagerank", "numpy")
    parallel_outputs, _ = _run_sequence("graphbolt", "pagerank", "numpy-parallel")
    assert serial_outputs == parallel_outputs


def test_shared_arena_round_trip():
    if not shm.shm_available():
        pytest.skip("shared memory unavailable in this environment")
    first = np.arange(7, dtype=np.float64)
    second = np.zeros(3, dtype=bool)
    arena, refs = shm.share_many([first, second])
    try:
        assert len(refs) == 2
        view = arena.view(0)
        assert np.array_equal(view, first)
        view[:] = view * 2
        assert np.array_equal(arena.view(0), first * 2)
        assert arena.view(1).dtype == np.bool_
    finally:
        arena.close()
