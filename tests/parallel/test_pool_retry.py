"""Retry-on-fresh-pool behaviour of the worker pool (PR 8 satellite).

When a worker dies mid-batch, ``run_with_respawn`` must retry the batch once
on a freshly spawned pool — with re-exported payloads where the payloads are
mutable — and only degrade to the serial fallback when the retry also fails.
The tests kill a real worker process mid-batch (the ``chaos_kill`` task runs
``os._exit`` inside the worker, skipping all cleanup, exactly like OOM/SIGKILL)
and assert the retry path engaged (``POOL_STATS.pool_retries``) with results
bitwise-identical to the serial reference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import executor, shm
from repro.parallel.executor import (
    POOL_STATS,
    WorkerPoolError,
    run_with_respawn,
)
from repro.parallel.slabs import gather_messages

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable in this environment"
)


def _gather_case(seed: int):
    """A small row-partitioned gather batch and its serial reference."""
    rng = np.random.default_rng(seed)
    num_rows, num_targets = 12, 9
    counts = rng.integers(0, 4, size=num_rows).astype(np.int64)
    total = int(counts.sum())
    starts = np.concatenate(([0], np.cumsum(counts)[:-1])).astype(np.int64)
    targets = rng.integers(0, num_targets, size=total).astype(np.int64)
    factors = rng.uniform(0.1, 2.0, size=total)
    absorb = np.zeros(num_targets, dtype=bool)
    out_values = rng.uniform(0.0, 1.0, size=num_rows)
    payload = {
        "targets": targets,
        "factors": factors,
        "absorb": absorb,
        "allowed": None,
        "starts": starts,
        "counts": counts,
        "total": total,
        "out_values": out_values,
        "selective": False,
        "combine_add": False,
        "identity": 0.0,
        "tolerance": 1e-12,
    }
    reference = gather_messages(**payload)
    return payload, reference


@pytest.fixture()
def fresh_pools():
    executor.shutdown_pools()
    POOL_STATS.reset()
    yield
    executor.shutdown_pools()


def test_retry_engages_and_results_match_serial(fresh_pools):
    payload, (expected_targets, expected_messages) = _gather_case(5)
    pool = executor.get_pool(2)
    attempts = []

    def build_tasks():
        # first attempt carries a worker-killing task; the rebuilt batch
        # after the respawn carries only the real work
        attempts.append(len(attempts))
        tasks = [("gather", dict(payload))]
        if len(attempts) == 1:
            tasks.append(("chaos_kill", {}))
        return tasks, [float(payload["total"]), 1.0][: len(tasks)]

    results, pool_used = run_with_respawn(pool, build_tasks)
    assert len(attempts) == 2, "retry never rebuilt the task batch"
    assert POOL_STATS.pool_retries == 1
    assert POOL_STATS.retry_successes == 1
    assert pool_used is not pool, "retry must adopt the freshly spawned pool"
    assert pool_used.alive and not pool.alive
    kept_targets, kept_messages = results[0]
    assert np.array_equal(kept_targets, expected_targets)
    assert kept_messages.tobytes() == expected_messages.tobytes()


def test_shutdown_pools_releases_arenas_and_is_idempotent(fresh_pools):
    """Teardown must release persistent arena segments *before* joining the
    workers (a worker blocked on a dead segment would hang the join), and a
    second/third ``shutdown_pools`` call must be a clean no-op."""
    pool = executor.get_pool(2)
    assert pool.alive
    resident = shm.PersistentArena([np.arange(6, dtype=np.float64)])
    assert not resident.closed
    executor.shutdown_pools()
    assert resident.closed, "shutdown_pools left a persistent arena segment live"
    assert not pool.alive
    assert not executor._POOLS
    executor.shutdown_pools()
    executor.shutdown_pools()
    # the executor comes back cleanly after a full teardown
    revived = executor.get_pool(2)
    assert revived.alive and revived is not pool


def test_second_failure_propagates(fresh_pools):
    pool = executor.get_pool(2)

    def always_killing():
        return [("chaos_kill", {})], [1.0]

    with pytest.raises(WorkerPoolError):
        run_with_respawn(pool, always_killing)
    assert POOL_STATS.pool_retries == 1
    assert POOL_STATS.retry_successes == 0


def test_propagation_survives_worker_killed_mid_batch(fresh_pools, monkeypatch):
    """End-to-end: kill a live worker under a real engine delta; the pooled
    propagation retries on a fresh pool and stays bitwise-identical."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_PARALLEL_MIN_EDGES", "0")
    import os
    import signal

    from repro.bench.harness import build_engine
    from repro.engine.algorithms import make_algorithm
    from repro.graph.generators import community_graph
    from repro.workloads.updates import random_edge_delta

    graph = community_graph(
        num_communities=3,
        community_size_range=(16, 24),
        intra_edge_probability=0.25,
        inter_edges_per_community=3,
        weighted=True,
        seed=21,
    )
    delta = random_edge_delta(graph, num_additions=4, num_deletions=3, seed=9, protect=0)

    def run(backend: str, kill: bool):
        spec = make_algorithm("sssp", source=0)
        engine = build_engine("layph", spec, backend=backend)
        engine.initialize(graph)
        if kill:
            # SIGKILL one worker as the first batch is dispatched — get_pool
            # would quietly respawn an already-dead pool, so the kill has to
            # land mid-run for the WorkerPoolError retry path to engage
            original_run = executor.WorkerPool.run
            state = {"killed": False}

            def killing_run(self, tasks, costs=None):
                if not state["killed"]:
                    state["killed"] = True
                    victim = self._processes[0]
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=5.0)
                return original_run(self, tasks, costs)

            monkeypatch.setattr(executor.WorkerPool, "run", killing_run)
        result = engine.apply_delta(delta)
        return dict(result.states)

    serial = run("numpy", kill=False)
    POOL_STATS.reset()
    survived = run("numpy-parallel", kill=True)
    assert survived == serial
    assert POOL_STATS.pool_retries >= 1, "kill never exercised the retry path"
    assert POOL_STATS.retry_successes >= 1
