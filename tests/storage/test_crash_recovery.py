"""Kill-and-restore at every log-record boundary, for every engine.

The durable store's headline contract is *bitwise* resume: a process killed
after any fsync'd log record (or mid-write, leaving a torn tail) must restore
to exactly the state of the uninterrupted run — states, graph edge order,
mutation-counter version, the selective engines' dependency forests, the BSP
engines' memo iterations and Layph's layered skeleton — and then produce
bit-identical states *and metrics* for every subsequent delta.

The harness runs one reference sequence per engine×algorithm combo (20 random
deltas with a store attached, compaction every 7 records), copies the store
directory at every delta boundary — each copy is what a kill at that boundary
leaves on disk — and then restores every copy:

* boundary ``k`` restores warm and matches the reference checkpoint ``k``;
* applying the next reference delta reproduces reference step ``k+1``'s
  states and full metrics fingerprint;
* a restore from mid-sequence replays the rest of the sequence bitwise;
* truncating the log's final line (a kill mid-append) resumes at ``k-1``.

The reference run per combo is cached at module scope: the boundary copies
are pristine (every test re-copies before restoring, since a restored engine
re-attaches the store and keeps logging into its directory).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import community_graph
from repro.storage.store import restore_engine
from repro.workloads.updates import random_edge_delta

ALGORITHMS = ["sssp", "bfs", "pagerank", "php"]
ENGINES = ["restart", "kickstarter", "risgraph", "graphbolt", "dzig", "ingress", "layph"]
NUM_DELTAS = 20
COMPACT_EVERY = 7


def _applicable(engine_name: str, algorithm: str) -> bool:
    selective = make_algorithm(algorithm).is_selective()
    return {
        "restart": True,
        "ingress": True,
        "layph": True,
        "kickstarter": selective,
        "risgraph": selective,
        "graphbolt": not selective,
        "dzig": not selective,
    }[engine_name]


COMBOS = [
    (engine, algorithm)
    for engine in ENGINES
    for algorithm in ALGORITHMS
    if _applicable(engine, algorithm)
]


def _base_graph():
    return community_graph(
        num_communities=4,
        community_size_range=(18, 30),
        intra_edge_probability=0.22,
        inter_edges_per_community=4,
        weighted=True,
        seed=11,
    )


def _metrics_fingerprint(metrics):
    return (
        metrics.iterations,
        metrics.edge_activations,
        metrics.vertex_updates,
        list(metrics.activations_per_round),
        list(metrics.active_vertices_per_round),
    )


def _parent_forest(target):
    """The selective engines' dependency forest, whichever store holds it."""
    if getattr(target, "dep_table", None) is not None:
        return target.dep_table.to_parents_dict()
    parents = getattr(target, "parents", None)
    return dict(parents) if parents is not None else None


def _extras_fingerprint(target):
    """Canonical form of the engine's cross-delta derived state.

    ``_snapshot_extras`` is exactly the state the store claims to preserve
    (memo matrices, dependency tables, Layph's layered skeleton + proxy
    states), so fingerprinting its two halves — JSON meta canonically, arrays
    as raw bytes (bitwise, hence NaN-safe) — compares all of it at once.
    """
    meta, arrays = target._snapshot_extras()
    return (
        json.dumps(meta, sort_keys=True),
        {
            key: (str(array.dtype), array.shape, np.asarray(array).tobytes())
            for key, array in sorted(arrays.items())
        },
    )


@dataclass
class Checkpoint:
    """Reference engine state at one delta boundary."""

    states: Dict[int, float]
    edges: list
    version: int
    forest: Optional[Dict[int, Optional[int]]]
    extras: tuple


@dataclass
class ReferenceRun:
    """One uninterrupted 20-delta run plus its per-boundary store copies."""

    boundary_dirs: List[Path]
    deltas: list
    checkpoints: List[Checkpoint]
    #: per-step ``(states, metrics fingerprint)`` of the reference deltas
    step_outputs: List[Tuple[Dict[int, float], tuple]]
    initial_metrics_fp: tuple


def _capture(engine) -> Checkpoint:
    target = engine._storage_target()
    return Checkpoint(
        states=dict(engine.states),
        edges=list(engine.graph.edges()),
        version=engine.graph.version,
        forest=_parent_forest(target),
        extras=_extras_fingerprint(target),
    )


_REFERENCE_CACHE: Dict[Tuple[str, str], ReferenceRun] = {}


def _reference_run(engine_name, algorithm, tmp_path_factory) -> ReferenceRun:
    key = (engine_name, algorithm)
    run = _REFERENCE_CACHE.get(key)
    if run is None:
        run = _build_reference(engine_name, algorithm, tmp_path_factory)
        _REFERENCE_CACHE[key] = run
    return run


def _build_reference(engine_name, algorithm, tmp_path_factory) -> ReferenceRun:
    root = tmp_path_factory.mktemp(f"ref-{engine_name}-{algorithm}")
    store_dir = root / "store"
    spec = make_algorithm(algorithm, source=0)
    engine = build_engine(engine_name, spec)
    engine.initialize(_base_graph())
    engine.save(str(store_dir), compact_every=COMPACT_EVERY)

    boundary_dirs: List[Path] = []
    checkpoints: List[Checkpoint] = []
    deltas: list = []
    step_outputs: List[Tuple[Dict[int, float], tuple]] = []

    def snapshot_boundary(k: int) -> None:
        copy = root / f"boundary-{k}"
        shutil.copytree(store_dir, copy)
        boundary_dirs.append(copy)
        checkpoints.append(_capture(engine))

    snapshot_boundary(0)
    for step in range(NUM_DELTAS):
        delta = random_edge_delta(
            engine.graph, num_additions=3, num_deletions=2, seed=100 + step, protect=0
        )
        deltas.append(delta)
        result = engine.apply_delta(delta)
        step_outputs.append(
            (dict(result.states), _metrics_fingerprint(result.metrics))
        )
        snapshot_boundary(step + 1)

    return ReferenceRun(
        boundary_dirs=boundary_dirs,
        deltas=deltas,
        checkpoints=checkpoints,
        step_outputs=step_outputs,
        initial_metrics_fp=_metrics_fingerprint(engine.initial_metrics),
    )


def _restore_copy(boundary_dir: Path, scratch: Path, tag: str):
    """Restore from a private copy (restores re-attach and keep logging)."""
    work = scratch / tag
    shutil.copytree(boundary_dir, work)
    return restore_engine(str(work))


def _assert_checkpoint(engine, checkpoint: Checkpoint, label: str) -> None:
    target = engine._storage_target()
    assert dict(engine.states) == checkpoint.states, f"states diverged at {label}"
    assert list(engine.graph.edges()) == checkpoint.edges, f"edges diverged at {label}"
    assert engine.graph.version == checkpoint.version, f"version diverged at {label}"
    assert _parent_forest(target) == checkpoint.forest, f"forest diverged at {label}"
    assert _extras_fingerprint(target) == checkpoint.extras, (
        f"derived state (memo/dep/layered) diverged at {label}"
    )


# ----------------------------------------------------------------------
# the headline: kill at every record boundary, restore, resume bitwise
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine_name,algorithm", COMBOS)
def test_kill_and_restore_at_every_boundary(
    engine_name, algorithm, tmp_path, tmp_path_factory
):
    ref = _reference_run(engine_name, algorithm, tmp_path_factory)
    for k in range(NUM_DELTAS + 1):
        engine, report = _restore_copy(ref.boundary_dirs[k], tmp_path, f"k{k}")
        assert report.warm, f"boundary {k} demoted to cold init: {report.reason}"
        assert report.discarded_log_records == 0
        assert engine.last_restore_report is report
        _assert_checkpoint(engine, ref.checkpoints[k], f"boundary {k}")
        assert _metrics_fingerprint(engine.initial_metrics) == ref.initial_metrics_fp
        if k < NUM_DELTAS:
            # the restored engine's very next delta must reproduce the
            # reference step bit-for-bit, metrics included
            result = engine.apply_delta(ref.deltas[k])
            expect_states, expect_fp = ref.step_outputs[k]
            assert dict(result.states) == expect_states, (
                f"states diverged on the delta after restarting at boundary {k}"
            )
            assert _metrics_fingerprint(result.metrics) == expect_fp, (
                f"metrics diverged on the delta after restarting at boundary {k}"
            )


@pytest.mark.parametrize("engine_name,algorithm", COMBOS)
def test_full_continuation_from_mid_sequence(
    engine_name, algorithm, tmp_path, tmp_path_factory
):
    """Restore at the midpoint, replay the rest, land on the final checkpoint."""
    ref = _reference_run(engine_name, algorithm, tmp_path_factory)
    mid = NUM_DELTAS // 2
    engine, report = _restore_copy(ref.boundary_dirs[mid], tmp_path, "mid")
    assert report.warm, report.reason
    for step in range(mid, NUM_DELTAS):
        result = engine.apply_delta(ref.deltas[step])
        expect_states, expect_fp = ref.step_outputs[step]
        assert dict(result.states) == expect_states, f"states diverged at step {step}"
        assert _metrics_fingerprint(result.metrics) == expect_fp, (
            f"metrics diverged at step {step}"
        )
    _assert_checkpoint(engine, ref.checkpoints[NUM_DELTAS], "final boundary")


# ----------------------------------------------------------------------
# mid-write kills: a torn final log line resumes at the previous boundary
# ----------------------------------------------------------------------
def _tear_log_tail(store_dir: Path) -> bool:
    """Cut into the log's final line (a kill mid-``append``); False if empty."""
    log_path = store_dir / "delta.log"
    raw = log_path.read_bytes()
    if not raw:
        return False
    log_path.write_bytes(raw[:-9])
    return True


@pytest.mark.parametrize("engine_name,algorithm", COMBOS)
def test_torn_log_tail_resumes_previous_boundary(
    engine_name, algorithm, tmp_path, tmp_path_factory
):
    ref = _reference_run(engine_name, algorithm, tmp_path_factory)
    work = tmp_path / "torn"
    shutil.copytree(ref.boundary_dirs[NUM_DELTAS], work)
    assert _tear_log_tail(work), "fixture expects a non-empty log at this boundary"
    engine, report = restore_engine(str(work))
    assert report.warm, report.reason
    assert report.discarded_log_records == 1
    _assert_checkpoint(
        engine, ref.checkpoints[NUM_DELTAS - 1], "torn-tail resume point"
    )
    # re-applying the delta whose record was torn reproduces the lost step
    result = engine.apply_delta(ref.deltas[NUM_DELTAS - 1])
    expect_states, expect_fp = ref.step_outputs[NUM_DELTAS - 1]
    assert dict(result.states) == expect_states
    assert _metrics_fingerprint(result.metrics) == expect_fp


@pytest.mark.parametrize(
    "engine_name,algorithm", [("kickstarter", "sssp"), ("graphbolt", "pagerank")]
)
def test_torn_tail_at_every_nonempty_boundary(
    engine_name, algorithm, tmp_path, tmp_path_factory
):
    """Sweep the mid-write kill across the whole sequence for two engines.

    Boundaries right after a compaction hold an empty log (nothing to tear);
    every other boundary must recover to exactly the previous one.
    """
    ref = _reference_run(engine_name, algorithm, tmp_path_factory)
    torn = 0
    for k in range(1, NUM_DELTAS + 1):
        work = tmp_path / f"torn-{k}"
        shutil.copytree(ref.boundary_dirs[k], work)
        if not _tear_log_tail(work):
            continue
        torn += 1
        engine, report = restore_engine(str(work))
        assert report.warm, f"boundary {k}: {report.reason}"
        assert report.discarded_log_records == 1
        _assert_checkpoint(engine, ref.checkpoints[k - 1], f"torn boundary {k}")
    # compaction fires every COMPACT_EVERY records, so exactly those
    # boundaries had empty logs
    assert torn == NUM_DELTAS - NUM_DELTAS // COMPACT_EVERY
