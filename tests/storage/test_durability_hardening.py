"""Regression tests for the durability hardening around the store.

Three properties, each of which silently held (or silently failed) before it
was made explicit:

* *Directory entries are durable*: after a snapshot ``os.replace`` or a log
  rewrite, the containing directory is fsync'd — a crash right after the
  rename can no longer resurrect the old file name on journaling
  filesystems.
* *Persistence failures degrade, never crash*: an ``OSError`` out of the
  delta log or the autosave path becomes a ``RuntimeWarning`` and the
  in-memory engine keeps working.
* *A torn log append cannot poison the log*: ``CrcLog.append_payload`` rolls
  the file back to the pre-append offset when the write fails partway, so a
  failed append in the *middle* of a session never hides the records
  appended after it from the longest-valid-prefix read.

Plus round-trips for the two fields recovery leans on: ``LogRecord.meta``
annotations and the baseline-folded ``app_meta`` watermark.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import community_graph
from repro.storage import edge_store as edge_store_module
from repro.storage import store as store_module
from repro.storage.edge_store import CrcLog, fsync_dir
from repro.storage.store import EngineStore, restore_engine
from repro.workloads.updates import random_edge_delta


def _graph():
    return community_graph(
        num_communities=2,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=13,
    )


def _engine_with_store(tmp_path, compact_every=100):
    spec = make_algorithm("sssp", source=0)
    engine = build_engine("kickstarter", spec)
    engine.initialize(_graph())
    store = engine.save(str(tmp_path / "store"), compact_every=compact_every)
    return engine, store


# ----------------------------------------------------------------------
# directory fsync
# ----------------------------------------------------------------------
def test_save_fsyncs_store_directory(tmp_path, monkeypatch):
    synced = []
    monkeypatch.setattr(
        store_module, "fsync_dir", lambda path: synced.append(os.path.abspath(path))
    )
    engine, store = _engine_with_store(tmp_path)
    synced.clear()
    store.save(engine)
    assert os.path.abspath(store.directory) in synced


def test_log_truncate_fsyncs_directory(tmp_path, monkeypatch):
    synced = []
    monkeypatch.setattr(
        edge_store_module,
        "fsync_dir",
        lambda path: synced.append(os.path.abspath(path)),
    )
    log = CrcLog(str(tmp_path / "probe.log"))
    try:
        log.append_payload({"n": 1})
        log.truncate()
    finally:
        log.close()
    assert os.path.abspath(str(tmp_path)) in synced


def test_fsync_dir_swallows_oserror(tmp_path):
    # a directory that cannot be opened must not raise out of fsync_dir
    fsync_dir(str(tmp_path / "no-such-subdir"))


# ----------------------------------------------------------------------
# OSError degradation
# ----------------------------------------------------------------------
def test_apply_delta_survives_log_oserror(tmp_path, monkeypatch):
    engine, store = _engine_with_store(tmp_path)

    def broken_log_delta(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr(store, "log_delta", broken_log_delta)
    delta = random_edge_delta(engine.graph, 3, 2, seed=3, protect=0)
    before = dict(engine.states)
    with pytest.warns(RuntimeWarning, match="delta applied in memory only"):
        engine.apply_delta(delta)
    assert engine.states != before or engine.graph is not None  # still alive
    # the engine keeps serving further deltas without a store write
    with pytest.warns(RuntimeWarning, match="delta applied in memory only"):
        engine.apply_delta(random_edge_delta(engine.graph, 2, 1, seed=4, protect=0))


def test_autosave_oserror_becomes_warning(monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "1")
    monkeypatch.setenv("REPRO_STORE_AUTOSAVE", "1")

    def broken_mkdtemp(*args, **kwargs):
        raise OSError(30, "Read-only file system")

    import tempfile

    monkeypatch.setattr(tempfile, "mkdtemp", broken_mkdtemp)
    engine = build_engine("kickstarter", make_algorithm("sssp", source=0))
    with pytest.warns(RuntimeWarning, match="autosave failed"):
        engine.initialize(_graph())
    # initialization completed despite the failed autosave
    assert engine.states
    assert engine._storage_target()._store is None


# ----------------------------------------------------------------------
# torn-append rollback
# ----------------------------------------------------------------------
class _PartialWriteFile:
    """Proxy that writes half of one record then fails, like a full disk."""

    def __init__(self, real):
        self._real = real
        self.break_next = False

    def write(self, data):
        if self.break_next:
            self.break_next = False
            self._real.write(data[: max(1, len(data) // 2)])
            self._real.flush()
            raise OSError(28, "No space left on device")
        return self._real.write(data)

    def __getattr__(self, name):
        return getattr(self._real, name)


def test_failed_append_rolls_back_partial_line(tmp_path):
    path = str(tmp_path / "torn.log")
    log = CrcLog(path)
    try:
        log.append_payload({"n": 1})
        proxy = _PartialWriteFile(log._file)
        log._file = proxy
        proxy.break_next = True
        with pytest.raises(OSError):
            log.append_payload({"n": 2})
        # the half-written line was truncated away, so the next append
        # starts on a clean boundary and stays readable
        log.append_payload({"n": 3})
        payloads, discarded = log.read_payloads()
    finally:
        log.close()
    assert payloads == [{"n": 1}, {"n": 3}]
    assert discarded == 0


# ----------------------------------------------------------------------
# recovery metadata round-trips
# ----------------------------------------------------------------------
def test_log_record_meta_roundtrips(tmp_path):
    engine, store = _engine_with_store(tmp_path)
    delta = random_edge_delta(engine.graph, 3, 2, seed=9, protect=0)
    engine.apply_delta(delta, log_meta={"events": [11, 18]})
    records, discarded = store.log.read()
    assert discarded == 0
    assert records[-1].meta == {"events": [11, 18]}
    # records logged without meta stay meta-less
    engine.apply_delta(random_edge_delta(engine.graph, 2, 1, seed=10, protect=0))
    records, _ = store.log.read()
    assert records[-1].meta is None


def test_app_meta_survives_baseline_fold(tmp_path):
    engine, store = _engine_with_store(tmp_path)
    store.app_meta["applied_event_seq"] = "42"
    store.save(engine)
    store.close()
    restored, report = restore_engine(str(tmp_path / "store"))
    try:
        assert report.warm, report.reason
        assert (
            restored._storage_target()._store.app_meta["applied_event_seq"] == "42"
        )
    finally:
        restored._storage_target()._store.close()
