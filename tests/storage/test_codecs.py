"""Round-trip property tests for every snapshot codec.

The codecs' contract (see :mod:`repro.storage.codecs`) is **bitwise**
round-tripping: floats travel as their raw 8 bytes, id lists keep their
insertion order, ``NaN`` absence markers survive, and decoding never counts
as a recompile.  Each codec is exercised on structures produced by the real
engines (so the encoded shapes are the ones the store actually sees) plus
the degenerate cases — empty graphs, post-vertex-removal remaps, ``None``
parents — and the SQLite edge baseline is checked to carry the graph's
mutation-counter version and both adjacency insertion orders.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.engine.propagation import FactorAdjacency
from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.generators import community_graph
from repro.graph.graph import Graph
from repro.incremental.dep_table import DepTable
from repro.incremental.memo import MemoTable
from repro.layph.layered_graph import LayeredGraph
from repro.storage.codecs import (
    decode_dep_table,
    decode_factor_adjacency,
    decode_factor_csr,
    decode_float_map,
    decode_iteration_dicts,
    decode_memo_table,
    decode_parent_map,
    encode_dep_table,
    encode_factor_adjacency,
    encode_factor_csr,
    encode_float_map,
    encode_iteration_dicts,
    encode_memo_table,
    encode_parent_map,
    pack,
    unpack,
)
from repro.workloads.updates import random_edge_delta


def _graph():
    return community_graph(
        num_communities=3,
        community_size_range=(10, 16),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=23,
    )


def _npz_round_trip(arrays, tmp_path, mmap=False):
    """Push arrays through an actual ``.npz`` file, as the store does."""
    path = tmp_path / "arrays.npz"
    np.savez(path, **arrays)
    if mmap:
        loaded = {}
        import zipfile

        extract_dir = tmp_path / "extracted"
        with zipfile.ZipFile(path) as archive:
            members = archive.namelist()
            archive.extractall(extract_dir)
        for member in members:
            key = member[: -len(".npy")] if member.endswith(".npy") else member
            loaded[key] = np.load(extract_dir / member, mmap_mode="r")
        return loaded
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


# ----------------------------------------------------------------------
# pack / unpack
# ----------------------------------------------------------------------
def test_pack_unpack_partitions_by_prefix():
    a = np.arange(3)
    b = np.arange(4)
    packed = {**pack("left", {"ids": a}), **pack("right", {"ids": b})}
    assert set(packed) == {"left/ids", "right/ids"}
    assert unpack("left", packed)["ids"] is a
    assert unpack("right", packed)["ids"] is b
    # a prefix is not a substring match: "left" must not swallow "leftover/"
    packed["leftover/ids"] = np.arange(5)
    assert set(unpack("left", packed)) == {"ids"}


# ----------------------------------------------------------------------
# ordered float maps
# ----------------------------------------------------------------------
def test_float_map_round_trip_preserves_order_and_bits():
    mapping = {7: 0.1 + 0.2, 3: -1.5, 99: float("inf"), 1: 1e-308}
    decoded = decode_float_map(encode_float_map(mapping))
    assert decoded == mapping
    assert list(decoded) == list(mapping)  # insertion order, not sorted
    assert decoded[7] == 0.1 + 0.2  # exact bits, not a reprint


def test_float_map_empty():
    assert decode_float_map(encode_float_map({})) == {}


# ----------------------------------------------------------------------
# FactorCSR
# ----------------------------------------------------------------------
def test_factor_csr_round_trip_through_npz(tmp_path):
    spec = make_algorithm("sssp", source=0)
    csr = FactorCSR.from_graph(spec, _graph())
    arrays = _npz_round_trip(encode_factor_csr(csr), tmp_path)
    decoded = decode_factor_csr(arrays)
    assert list(decoded.vertex_ids) == list(csr.vertex_ids)
    assert np.array_equal(decoded.offsets, csr.offsets)
    assert np.array_equal(decoded.targets, csr.targets)
    assert decoded.factors.tobytes() == np.asarray(csr.factors).tobytes()
    # a decode is a load, not a recompile
    assert decoded.compile_count == 0 or decoded.compile_count == csr.compile_count


def test_factor_csr_round_trip_empty_graph():
    spec = make_algorithm("pagerank")
    csr = FactorCSR.from_graph(spec, Graph())
    decoded = decode_factor_csr(encode_factor_csr(csr))
    assert decoded.num_vertices == 0
    assert decoded.num_edges == 0


def test_factor_csr_round_trip_after_vertex_removal():
    """The id remap after removing vertices survives the round trip."""
    spec = make_algorithm("sssp", source=0)
    graph = _graph()
    victim = max(graph.vertices())
    delta = GraphDelta()
    delta.delete_vertex(victim)
    smaller = delta.apply(graph)
    csr = FactorCSR.from_graph(spec, smaller)
    assert victim not in csr.index
    decoded = decode_factor_csr(encode_factor_csr(csr))
    assert list(decoded.vertex_ids) == list(csr.vertex_ids)
    assert decoded.index == csr.index
    assert np.array_equal(decoded.targets, csr.targets)


def test_factor_csr_mmap_decode_copies_by_default(tmp_path):
    spec = make_algorithm("sssp", source=0)
    csr = FactorCSR.from_graph(spec, _graph())
    arrays = _npz_round_trip(encode_factor_csr(csr), tmp_path, mmap=True)
    assert not arrays["factors"].flags.writeable  # really memory-mapped
    decoded = decode_factor_csr(arrays)  # copy=True default
    assert decoded.factors.flags.writeable
    shared = decode_factor_csr(arrays, copy=False)  # out-of-core consumer
    assert shared.factors is arrays["factors"]


# ----------------------------------------------------------------------
# MemoTable (NaN = absent vertex)
# ----------------------------------------------------------------------
def test_memo_table_round_trip_with_nan_columns(tmp_path):
    memo = MemoTable([4, 1, 9], graph_version=17)
    memo.append(np.array([1.0, float("nan"), 3.0]))
    memo.append(np.array([0.5, 2.5, float("nan")]))
    meta, arrays = encode_memo_table(memo)
    decoded = decode_memo_table(meta, _npz_round_trip(arrays, tmp_path))
    assert list(decoded.vertex_ids) == [4, 1, 9]
    assert decoded.graph_version == 17
    assert decoded.num_levels == 2
    # bitwise matrix equality (NaN-safe: compare the raw bytes)
    assert (
        decoded._matrix[: decoded.num_levels].tobytes()
        == memo._matrix[: memo.num_levels].tobytes()
    )
    # the absent-vertex marker is still NaN, not a number
    assert math.isnan(decoded.row(0)[1])
    # the decoded table stays growable
    decoded.append(np.array([1.0, 1.0, 1.0]))
    assert decoded.num_levels == 3


def test_memo_table_round_trip_from_live_engine(tmp_path):
    """The memo an actual BSP engine builds survives encode/decode bitwise."""
    engine = build_engine("graphbolt", make_algorithm("pagerank"), backend="numpy")
    graph = _graph()
    engine.initialize(graph)
    engine.apply_delta(random_edge_delta(graph, 3, 2, seed=3, protect=0))
    if engine.memo is None:
        pytest.skip("dense memo store disabled in this configuration")
    meta, arrays = encode_memo_table(engine.memo)
    decoded = decode_memo_table(meta, _npz_round_trip(arrays, tmp_path))
    assert decoded.matches_ids(engine.memo.vertex_ids)
    assert decoded.to_dicts() == engine.memo.to_dicts()


# ----------------------------------------------------------------------
# DepTable
# ----------------------------------------------------------------------
def test_dep_table_round_trip(tmp_path):
    spec = make_algorithm("sssp", source=0)
    graph = _graph()
    csr = FactorCSR.from_graph(spec, graph)
    parents = {vertex: None for vertex in csr.vertex_ids}
    states = {vertex: float(vertex) for vertex in csr.vertex_ids}
    # a small chain of real parents on top of the all-roots default
    ids = list(csr.vertex_ids)
    parents[ids[1]] = ids[0]
    parents[ids[2]] = ids[1]
    table = DepTable.from_parents(csr, states, parents, math.inf, graph_version=5)
    meta, arrays = encode_dep_table(table)
    decoded = decode_dep_table(meta, _npz_round_trip(arrays, tmp_path))
    assert decoded.graph_version == 5
    assert list(decoded.vertex_ids) == ids
    assert decoded.to_parents_dict() == table.to_parents_dict()
    assert decoded.values.tobytes() == table.values.tobytes()
    # levels are rebuilt lazily, not persisted
    assert decoded.forest_levels() is not None


def test_parent_map_round_trip_with_none_roots():
    parents = {5: None, 2: 5, 11: 2, 0: None}
    decoded = decode_parent_map(encode_parent_map(parents))
    assert decoded == parents
    assert list(decoded) == list(parents)


# ----------------------------------------------------------------------
# iteration dicts (the Python-backend BSP memo)
# ----------------------------------------------------------------------
def test_iteration_dicts_round_trip_with_absent_vertices(tmp_path):
    iterations = [
        {1: 0.25, 2: 0.25, 3: 0.5},
        {1: 0.3, 3: 0.7},  # vertex 2 absent at this level
        {},
    ]
    meta, arrays = encode_iteration_dicts(iterations)
    decoded = decode_iteration_dicts(meta, _npz_round_trip(arrays, tmp_path))
    assert decoded == iterations
    assert [list(level) for level in decoded] == [list(level) for level in iterations]


# ----------------------------------------------------------------------
# FactorAdjacency (Layph upper layer / subgraph-local adjacencies)
# ----------------------------------------------------------------------
def test_factor_adjacency_round_trip_preserves_rows_and_version():
    spec = make_algorithm("pagerank")
    graph = _graph()
    adjacency = FactorAdjacency.from_graph(spec, graph)
    adjacency._version = 42
    decoded = decode_factor_adjacency(encode_factor_adjacency(adjacency))
    assert decoded._version == 42
    assert list(decoded._adjacency) == list(adjacency._adjacency)
    for source in adjacency._adjacency:
        assert decoded._adjacency[source] == adjacency._adjacency[source]


# ----------------------------------------------------------------------
# LayeredGraph skeleton
# ----------------------------------------------------------------------
def test_layered_graph_state_round_trip():
    spec = make_algorithm("sssp", source=0)
    engine = build_engine("layph", spec)
    graph = _graph()
    engine.initialize(graph)
    # mutate past the initial build so replication indexes are non-trivial
    engine.apply_delta(random_edge_delta(engine.graph, 3, 2, seed=9, protect=0))
    layered = engine.layered
    state = layered.to_state()
    rebuilt = LayeredGraph.from_state(spec, engine.graph, engine.config, state)
    assert rebuilt.to_state() == state
    # the skeleton is behaviorally identical, not just structurally: the
    # rebuilt upper layer serves the same adjacency rows
    assert encode_factor_adjacency(rebuilt.upper_adjacency) == encode_factor_adjacency(
        layered.upper_adjacency
    )


# ----------------------------------------------------------------------
# SQLite edge baseline (graph + version + both insertion orders)
# ----------------------------------------------------------------------
def test_edge_baseline_round_trip_carries_version_and_orders(tmp_path):
    from repro.storage.edge_store import DurableEdgeStore

    graph = _graph()
    for _ in range(3):  # advance the mutation counter past zero
        graph = random_edge_delta(graph, 2, 1, seed=31, protect=0).apply(graph)
    store = DurableEdgeStore(str(tmp_path / "graph.db"))
    store.write_baseline(graph, last_seq=12, extra_meta={"identity": "{}"})
    loaded, last_seq = store.load_baseline()
    store.close()
    assert last_seq == 12
    assert loaded.version == graph.version
    assert list(loaded.edges()) == list(graph.edges())
    # the in-adjacency insertion order drives in-CSR slot order, which
    # drives bitwise float fold order — it must survive SQLite verbatim
    for vertex in graph.vertices():
        assert list(loaded.in_neighbors(vertex)) == list(graph.in_neighbors(vertex))
        assert list(loaded.out_neighbors(vertex)) == list(graph.out_neighbors(vertex))


def test_edge_baseline_round_trip_empty_graph(tmp_path):
    from repro.storage.edge_store import DurableEdgeStore

    store = DurableEdgeStore(str(tmp_path / "graph.db"))
    store.write_baseline(Graph(), last_seq=0, extra_meta={})
    loaded, last_seq = store.load_baseline()
    store.close()
    assert last_seq == 0
    assert loaded.num_vertices() == 0
    assert loaded.num_edges() == 0
