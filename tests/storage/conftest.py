"""The storage suite exercises the durable store itself, so it must run with
the subsystem enabled regardless of the ambient ``REPRO_STORE`` /
``REPRO_STORE_AUTOSAVE`` knobs (a knob leg that disables the store would
otherwise fail every test here instead of testing the disabled behaviour).
Tests that cover the knobs set them explicitly via ``monkeypatch`` inside the
test body, which overrides this baseline.
"""

import pytest


@pytest.fixture(autouse=True)
def _storage_knobs_baseline(monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "1")
    monkeypatch.setenv("REPRO_STORE_AUTOSAVE", "0")
