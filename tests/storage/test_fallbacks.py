"""Corruption and escape-hatch behavior of the durable store.

Every snapshot defect — flipped bytes in the ``.npz``, a tampered sidecar, a
missing manifest, a format bump, an identity swap — must degrade *cleanly*:
``restore_engine`` surfaces a :class:`RuntimeWarning`, demotes to cold batch
initialization on the fully replayed graph (so no logged delta is ever lost),
and records the path in the returned :class:`RestoreReport`.  A demote is
never allowed to crash, and the demoted engine must equal a from-scratch
engine on the same graph bitwise.

Log corruption is softer still: torn or garbage tail lines are discarded by
the longest-valid-prefix read, the log is rewritten clean, and recovery stays
*warm* at the last intact record.

The ``REPRO_STORE=0`` escape hatch turns the whole subsystem off (save is a
no-op, restore refuses), and ``REPRO_STORE_AUTOSAVE=1`` makes every
``initialize`` exercise the log/snapshot machinery against a throwaway store.
"""

from __future__ import annotations

import glob
import hashlib
import json
import os
import shutil

import pytest

from repro.bench.harness import build_engine
from repro.engine.algorithms import make_algorithm
from repro.graph.generators import community_graph
from repro.storage.edge_store import StoreError
from repro.storage.store import EngineStore, restore_engine
from repro.workloads.updates import random_edge_delta

NUM_DELTAS = 5


def _graph():
    return community_graph(
        num_communities=3,
        community_size_range=(12, 18),
        intra_edge_probability=0.25,
        inter_edges_per_community=3,
        weighted=True,
        seed=7,
    )


@pytest.fixture()
def populated_store(tmp_path):
    """A reference engine with an attached store and a few logged deltas."""
    spec = make_algorithm("sssp", source=0)
    engine = build_engine("kickstarter", spec)
    engine.initialize(_graph())
    store_dir = tmp_path / "store"
    engine.save(str(store_dir), compact_every=100)  # keep every record in the log
    for step in range(NUM_DELTAS):
        engine.apply_delta(
            random_edge_delta(engine.graph, 3, 2, seed=50 + step, protect=0)
        )
    return engine, store_dir


def _assert_demotes(store_dir, reason_fragment, reference):
    """Restore must warn, demote, and land on the reference's exact graph."""
    with pytest.warns(RuntimeWarning, match="demoting to cold"):
        engine, report = restore_engine(str(store_dir))
    assert report.warm is False
    assert reason_fragment in report.reason
    assert report.snapshot_seq is None
    assert engine.last_restore_report is report
    # no logged delta was lost: the demote replayed the full log first
    assert list(engine.graph.edges()) == list(reference.graph.edges())
    # the demoted engine is a clean cold start on that graph — bitwise equal
    # to a from-scratch engine
    cold = build_engine("kickstarter", make_algorithm("sssp", source=0))
    cold.initialize(reference.graph)
    assert engine.states == cold.states
    # the demote path re-saved a fresh snapshot, so the *next* restore is warm
    target = engine._storage_target()
    assert target._store is not None
    assert target._store.saves >= 1
    again, report2 = restore_engine(str(store_dir))
    assert report2.warm, report2.reason
    assert again.states == engine.states
    return engine, report


# ----------------------------------------------------------------------
# snapshot defects: each one demotes, none crashes
# ----------------------------------------------------------------------
def test_corrupt_npz_demotes_to_cold_init(populated_store):
    reference, store_dir = populated_store
    npz_path = glob.glob(str(store_dir / "snapshot-*.npz"))[0]
    data = bytearray(open(npz_path, "rb").read())
    data[len(data) // 2] ^= 0xFF
    open(npz_path, "wb").write(bytes(data))
    _assert_demotes(store_dir, "array checksum mismatch", reference)


def test_tampered_sidecar_demotes(populated_store):
    reference, store_dir = populated_store
    sidecar_path = glob.glob(str(store_dir / "snapshot-*.json"))[0]
    sidecar = json.loads(open(sidecar_path, "rb").read())
    sidecar["npz_sha256"] = "0" * 64
    open(sidecar_path, "wb").write(json.dumps(sidecar).encode())
    _assert_demotes(store_dir, "sidecar checksum mismatch", reference)


def test_missing_manifest_demotes(populated_store):
    reference, store_dir = populated_store
    os.remove(store_dir / "MANIFEST.json")
    _assert_demotes(store_dir, "no snapshot manifest", reference)


def test_missing_npz_demotes(populated_store):
    reference, store_dir = populated_store
    os.remove(glob.glob(str(store_dir / "snapshot-*.npz"))[0])
    _assert_demotes(store_dir, "missing snapshot arrays", reference)


def test_format_version_bump_demotes(populated_store):
    """A snapshot written by a future store format is not trusted."""
    reference, store_dir = populated_store
    manifest_path = store_dir / "MANIFEST.json"
    manifest = json.loads(open(manifest_path, "rb").read())
    manifest["format"] = 999
    open(manifest_path, "wb").write(json.dumps(manifest, sort_keys=True).encode())
    _assert_demotes(store_dir, "format 999", reference)


def test_identity_mismatch_demotes(populated_store):
    """A (checksum-valid) snapshot of a different engine is rejected."""
    reference, store_dir = populated_store
    sidecar_path = glob.glob(str(store_dir / "snapshot-*.json"))[0]
    sidecar = json.loads(open(sidecar_path, "rb").read())
    sidecar["meta"]["identity"]["engine"] = "risgraph"
    sidecar_bytes = json.dumps(sidecar, sort_keys=True).encode()
    open(sidecar_path, "wb").write(sidecar_bytes)
    manifest_path = store_dir / "MANIFEST.json"
    manifest = json.loads(open(manifest_path, "rb").read())
    manifest["sidecar_sha256"] = hashlib.sha256(sidecar_bytes).hexdigest()
    open(manifest_path, "wb").write(json.dumps(manifest, sort_keys=True).encode())
    _assert_demotes(store_dir, "different engine", reference)


# ----------------------------------------------------------------------
# log corruption: discard the tail, stay warm, rewrite the log clean
# ----------------------------------------------------------------------
def _log_line_count(store_dir):
    return len((store_dir / "delta.log").read_bytes().splitlines())


def test_garbage_log_tail_is_discarded_and_rewritten(populated_store):
    reference, store_dir = populated_store
    log_path = store_dir / "delta.log"
    with open(log_path, "ab") as handle:
        handle.write(b"\x00\xffnot a log record")  # torn append, no newline
    engine, report = restore_engine(str(store_dir))
    assert report.warm
    assert report.discarded_log_records == 1
    assert report.replayed_deltas == NUM_DELTAS
    assert engine.states == reference.states
    # the log was rewritten without the garbage: a second restore is clean
    assert _log_line_count(store_dir) == NUM_DELTAS
    _again, report2 = restore_engine(str(store_dir))
    assert report2.warm
    assert report2.discarded_log_records == 0


def test_corrupted_log_crc_discards_that_record(populated_store):
    reference, store_dir = populated_store
    log_path = store_dir / "delta.log"
    lines = log_path.read_bytes().splitlines(keepends=True)
    # flip one payload byte of the last record: its CRC no longer matches
    last = bytearray(lines[-1])
    last[20] ^= 0x01
    log_path.write_bytes(b"".join(lines[:-1]) + bytes(last))
    engine, report = restore_engine(str(store_dir))
    assert report.warm
    assert report.discarded_log_records == 1
    assert report.replayed_deltas == NUM_DELTAS - 1


def test_empty_directory_raises_store_error(tmp_path):
    """No baseline at all is a hard error, not a silent empty engine."""
    with pytest.raises(StoreError, match="no baseline"):
        restore_engine(str(tmp_path))


# ----------------------------------------------------------------------
# REPRO_STORE=0: the subsystem is fully off
# ----------------------------------------------------------------------
def test_repro_store_0_disables_save_and_restore(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", "0")
    engine = build_engine("graphbolt", make_algorithm("pagerank"))
    engine.initialize(_graph())
    assert engine.save(str(tmp_path / "store")) is None
    assert engine._store is None
    assert not os.path.exists(tmp_path / "store") or not os.listdir(
        tmp_path / "store"
    )
    with pytest.raises(StoreError, match="REPRO_STORE=0"):
        restore_engine(str(tmp_path / "store"))
    # deltas still apply normally with persistence off
    engine.apply_delta(random_edge_delta(engine.graph, 2, 1, seed=1, protect=0))


def test_repro_store_0_does_not_break_existing_store(populated_store, monkeypatch):
    """Flipping the hatch off after a store exists leaves its files intact."""
    _reference, store_dir = populated_store
    before = sorted(os.listdir(store_dir))
    monkeypatch.setenv("REPRO_STORE", "0")
    with pytest.raises(StoreError):
        restore_engine(str(store_dir))
    assert sorted(os.listdir(store_dir)) == before


# ----------------------------------------------------------------------
# REPRO_STORE_AUTOSAVE=1: initialize() exercises the store machinery
# ----------------------------------------------------------------------
def test_autosave_attaches_a_store_on_initialize(monkeypatch):
    monkeypatch.setenv("REPRO_STORE_AUTOSAVE", "1")
    engine = build_engine("ingress", make_algorithm("sssp", source=0))
    engine.initialize(_graph())
    target = engine._storage_target()
    store = target._store
    assert store is not None
    try:
        assert os.path.exists(os.path.join(store.directory, EngineStore.GRAPH_DB))
        assert os.path.exists(os.path.join(store.directory, EngineStore.MANIFEST))
        # the autosaved store restores warm and bitwise
        restored, report = restore_engine(store.directory)
        assert report.warm, report.reason
        assert restored.states == engine.states
    finally:
        store.close()
        shutil.rmtree(store.directory, ignore_errors=True)


def test_autosave_does_not_fire_during_demote(populated_store, monkeypatch):
    """The demote path re-initializes; that must not recurse into autosave."""
    reference, store_dir = populated_store
    os.remove(store_dir / "MANIFEST.json")
    monkeypatch.setenv("REPRO_STORE_AUTOSAVE", "1")
    with pytest.warns(RuntimeWarning, match="demoting to cold"):
        engine, report = restore_engine(str(store_dir))
    assert report.warm is False
    # the engine's store is the original directory, not an autosave tempdir
    assert engine._storage_target()._store.directory == str(store_dir)


# ----------------------------------------------------------------------
# save-order crash windows: a kill between save steps stays recoverable
# ----------------------------------------------------------------------
def test_kill_between_snapshot_and_baseline_recovers(populated_store, tmp_path):
    """Simulate dying after the manifest write but before the SQLite fold.

    That on-disk state is: new snapshot at seq N, baseline still at an older
    seq, log still holding every record — exactly what the save order
    guarantees.  Recovery must reach the snapshot by replaying the log prefix
    and stay warm.
    """
    reference, store_dir = populated_store
    # build the "half-saved" directory: take the live store (snapshot at the
    # initial save, log holding all NUM_DELTAS records) — this *is* the
    # pre-baseline window for the compaction that would come next
    work = tmp_path / "window"
    shutil.copytree(store_dir, work)
    engine, report = restore_engine(str(work))
    assert report.warm
    assert report.baseline_seq == 0
    assert report.snapshot_seq == 0
    assert report.replayed_deltas == NUM_DELTAS
    assert engine.states == reference.states
