"""Unit tests for the propagation backend registry and the numpy backend."""

import math

import pytest

from repro.engine.backends import (
    BACKEND_ENV_VAR,
    available_backends,
    get_backend,
    resolve_backend,
)
from repro.engine.dense_propagation import classify_spec, propagate_numpy
from repro.engine.metrics import ExecutionMetrics
from repro.engine.algorithms import BFS, PHP, PageRank, SSSP
from repro.engine.propagation import (
    FactorAdjacency,
    NonConvergenceError,
    SilencedAdjacency,
    propagate,
)
from repro.engine.runner import run_batch
from repro.graph.graph import Graph


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"python", "numpy"} <= set(available_backends())

    def test_explicit_name_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend("python") == "python"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None) == "numpy"

    def test_default_is_python(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "python"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_names_are_case_insensitive(self):
        assert resolve_backend("NumPy") == "numpy"

    def test_python_backend_has_no_indirection(self):
        assert get_backend("python") is None
        assert callable(get_backend("numpy"))


class TestClassifySpec:
    def test_builtin_algorithms_classify(self):
        assert classify_spec(SSSP(source=0)) == ("min", "add")
        assert classify_spec(BFS(source=0)) == ("min", "add")
        assert classify_spec(PageRank()) == ("sum", "mul")
        assert classify_spec(PHP(source=0)) == ("sum", "mul")

    def test_delegating_wrapper_classifies(self):
        spec = SSSP(source=0)

        class Wrapper:
            def __getattr__(self, item):
                return getattr(spec, item)

        assert classify_spec(Wrapper()) == ("min", "add")

    def test_exotic_algebra_rejected(self):
        class MaxSpec(SSSP):
            def aggregate(self, left, right):
                return max(left, right)

        assert classify_spec(MaxSpec()) is None

    def test_exotic_combine_rejected(self):
        class WeirdCombine(SSSP):
            def combine(self, message, factor):
                return message - factor

        assert classify_spec(WeirdCombine()) is None

    def test_undeclared_spec_rejected(self):
        # Custom specs must opt in via ``dense_algebra``; without the
        # declaration the vectorized backend never runs them, even when the
        # operators would probe as standard.
        from repro.engine.algorithm import AlgorithmSpec

        class UndeclaredSSSP(SSSP):
            dense_algebra = None

        assert AlgorithmSpec.dense_algebra is None
        assert classify_spec(UndeclaredSSSP()) is None

    def test_wrong_declaration_rejected(self):
        class MislabeledSSSP(SSSP):
            dense_algebra = ("sum", "mul")

        assert classify_spec(MislabeledSSSP()) is None

    def test_custom_significance_rejected(self):
        # A custom rule can agree with the default on every probed value and
        # still diverge elsewhere, so any override must force the fallback.
        class TrimmedSignificance(SSSP):
            def is_significant(self, message):
                return message != self.aggregate_identity() and message < 100.0

        assert classify_spec(TrimmedSignificance()) is None


class TestFactorCSR:
    def test_from_graph_matches_factor_adjacency_compilation(self):
        from repro.graph.csr import FactorCSR

        graph = Graph.from_edges(
            [(0, 1, 2.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0), (3, 1, 1.0), (4, 0, 3.0)]
        )
        spec = PageRank()
        direct = FactorCSR.from_graph(spec, graph)
        via_adjacency = FactorCSR.from_factor_adjacency(
            FactorAdjacency.from_graph(spec, graph), universe=graph.vertices()
        )
        assert direct.vertex_ids == via_adjacency.vertex_ids
        assert direct.offsets.tolist() == via_adjacency.offsets.tolist()
        assert direct.targets.tolist() == via_adjacency.targets.tolist()
        assert direct.factors.tolist() == via_adjacency.factors.tolist()
        assert direct.num_vertices == graph.num_vertices()
        assert direct.num_edges == graph.num_edges()


class TestNumpyBackend:
    def test_unsupported_spec_returns_none_and_mutates_nothing(self):
        class MaxSpec(SSSP):
            def aggregate(self, left, right):
                return max(left, right)

        states = {0: 1.0}
        pending = {1: 2.0}
        metrics = ExecutionMetrics()
        result = propagate_numpy(
            MaxSpec(), FactorAdjacency({0: [(1, 1.0)]}), states, pending, metrics
        )
        assert result is None
        assert states == {0: 1.0}
        assert pending == {1: 2.0}
        assert metrics.iterations == 0

    def test_unsupported_adjacency_returns_none(self):
        result = propagate_numpy(SSSP(source=0), lambda v: [], {}, {0: 0.0})
        assert result is None

    def test_propagate_falls_back_for_plain_callables(self):
        # A bare callable adjacency cannot be compiled to CSR; the dispatcher
        # must silently run the Python loop instead.
        states = {}
        propagate(
            SSSP(source=0),
            lambda v: [(v + 1, 1.0)] if v < 3 else [],
            states,
            {0: 0.0},
            backend="numpy",
        )
        assert states == {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}

    def test_matches_python_loop_on_fixed_graph(self):
        graph = Graph.from_edges(
            [(0, 1, 2.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0), (3, 1, 1.0)]
        )
        for spec_factory in (
            lambda: SSSP(source=0),
            lambda: BFS(source=0),
            lambda: PageRank(),
            lambda: PHP(source=0),
        ):
            py = run_batch(spec_factory(), graph, backend="python")
            vec = run_batch(spec_factory(), graph, backend="numpy")
            assert py.states == vec.states
            assert py.metrics.iterations == vec.metrics.iterations
            assert py.metrics.edge_activations == vec.metrics.edge_activations
            assert py.metrics.activations_per_round == vec.metrics.activations_per_round
            assert py.metrics.vertex_updates == vec.metrics.vertex_updates

    def test_silenced_adjacency_absorbs(self):
        base = FactorAdjacency({0: [(1, 1.0)], 1: [(2, 1.0)]})
        silenced = SilencedAdjacency(base, {1})
        for backend in ("python", "numpy"):
            states = {}
            propagate(SSSP(source=0), silenced, states, {0: 0.0}, backend=backend)
            # vertex 1 receives but never re-propagates, so 2 stays unreached
            assert states == {0: 0.0, 1: 1.0}

    def test_max_rounds_leaves_pending(self):
        adjacency = FactorAdjacency({0: [(1, 1.0)], 1: [(2, 1.0)]})
        for backend in ("python", "numpy"):
            states = {}
            pending = {0: 0.0}
            metrics = ExecutionMetrics()
            propagate(
                SSSP(source=0),
                adjacency,
                states,
                pending,
                metrics,
                max_rounds=1,
                backend=backend,
            )
            assert metrics.iterations == 1
            assert pending == {1: 1.0}
            assert states == {0: 0.0}

    def test_allowed_targets_filters_but_counts_activations(self):
        adjacency = FactorAdjacency({0: [(1, 1.0), (2, 1.0)]})
        for backend in ("python", "numpy"):
            states = {}
            metrics = ExecutionMetrics()
            propagate(
                SSSP(source=0),
                adjacency,
                states,
                {0: 0.0},
                metrics,
                allowed_targets=lambda v: v != 2,
                backend=backend,
            )
            assert states == {0: 0.0, 1: 1.0}
            assert metrics.edge_activations == 2

    def test_nan_inputs_fall_back_to_python_loop(self):
        # np.minimum propagates NaN where Python's branchy min keeps the
        # non-NaN operand, so NaN-carrying inputs must not run vectorized.
        nan = math.nan
        adjacency = FactorAdjacency({0: [(1, nan), (2, 1.0)]})
        assert propagate_numpy(SSSP(source=0), adjacency, {}, {0: 0.0}) is None
        clean = FactorAdjacency({0: [(1, 1.0)]})
        assert propagate_numpy(SSSP(source=0), clean, {1: nan}, {0: 0.0}) is None
        assert propagate_numpy(SSSP(source=0), clean, {}, {0: nan}) is None
        # The dispatcher still produces the Python loop's answer.
        for backend in ("python", "numpy"):
            states = {}
            propagate(SSSP(source=0), adjacency, states, {0: 0.0}, backend=backend)
            assert states[0] == 0.0 and states[2] == 1.0

    def test_php_source_absorbs(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 0, 1.0)])
        py = run_batch(PHP(source=0), graph, backend="python")
        vec = run_batch(PHP(source=0), graph, backend="numpy")
        assert py.states == vec.states
        assert py.metrics.edge_activations == vec.metrics.edge_activations


class TestLocalUploadNonConvergence:
    def test_raises_instead_of_returning_partial_results(self):
        from repro.layph.engine import LayphEngine

        class _Subgraph:
            index = 0
            boundary = frozenset()
            # A lossless 2-cycle: PageRank-style messages (factor 1.0) never
            # decay, so the upload loop can never converge.
            local_adjacency = FactorAdjacency({1: [(2, 1.0)], 2: [(1, 1.0)]})

        engine = LayphEngine(PageRank())
        with pytest.raises(NonConvergenceError):
            engine._local_upload(
                _Subgraph(), {}, {1: 1.0}, ExecutionMetrics()
            )
