"""Unit tests for the incremental CSR cache (:mod:`repro.graph.csr_cache`)."""

import numpy as np
import pytest

from repro.engine.algorithms import BFS, PHP, PageRank, SSSP
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import FactorAdjacency, SilencedAdjacency, propagate
from repro.graph.csr import FactorCSR
from repro.graph.csr_cache import (
    CSR_CACHE_ENV_VAR,
    CSRCache,
    CachedGraphAdjacency,
    csr_cache_enabled,
    master_factor_csr,
)
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph

ALL_SPECS = [SSSP(source=0), BFS(source=0), PageRank(), PHP(source=0)]


def _base_graph() -> Graph:
    return Graph.from_edges(
        [
            (0, 1, 2.0),
            (1, 2, 1.0),
            (0, 2, 5.0),
            (2, 3, 1.0),
            (3, 1, 1.0),
            (4, 0, 3.0),
            (3, 4, 2.0),
            (2, 4, 4.0),
        ]
    )


def assert_csr_identical(left: FactorCSR, right: FactorCSR) -> None:
    assert left.vertex_ids == right.vertex_ids
    assert left.index == right.index
    assert np.array_equal(left.offsets, right.offsets)
    assert np.array_equal(left.targets, right.targets)
    assert np.array_equal(left.factors, right.factors)
    assert left.offsets.dtype == right.offsets.dtype
    assert left.targets.dtype == right.targets.dtype
    assert left.factors.dtype == right.factors.dtype


class TestGraphVersion:
    def test_mutations_bump_version(self):
        graph = Graph()
        version = graph.version
        graph.add_vertex(7)
        assert graph.version > version
        version = graph.version
        graph.add_edge(7, 8, 1.0)
        assert graph.version > version
        version = graph.version
        graph.update_edge_weight(7, 8, 2.0)
        assert graph.version > version
        version = graph.version
        graph.remove_edge(7, 8)
        assert graph.version > version
        version = graph.version
        graph.remove_vertex(8)
        assert graph.version > version

    def test_noop_add_vertex_keeps_version(self):
        graph = Graph()
        graph.add_vertex(1)
        version = graph.version
        graph.add_vertex(1)
        assert graph.version == version

    def test_copy_preserves_structure(self):
        graph = _base_graph()
        assert graph.copy() == graph


class TestDeltaPatching:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_patched_arrays_match_fresh_compile(self, spec):
        graph = _base_graph()
        cache = CSRCache(enabled=True, rebuild_fraction=1.0)
        cache.out_csr(spec, graph)
        cache.in_csr(spec, graph)
        assert cache.compiles == 2

        deltas = [
            GraphDelta.from_edge_changes(additions=[(1, 4, 7.0)], deletions=[(0, 2)]),
            # the PR 1 bug class: an ADD_EDGE overwriting an existing edge
            GraphDelta.from_edge_changes(additions=[(0, 1, 9.0)]),
            GraphDelta.from_edge_changes(deletions=[(3, 1), (2, 3)]),
        ]
        vertex_delta = GraphDelta()
        vertex_delta.add_vertex(9, edges=[(9, 0, 1.5), (2, 9, 2.5)])
        vertex_delta.delete_vertex(4)
        deltas.append(vertex_delta)

        for delta in deltas:
            new_graph = delta.apply(graph)
            cache.apply_delta(spec, graph, new_graph, delta)
            assert_csr_identical(
                cache.out_csr(spec, new_graph), FactorCSR.from_graph(spec, new_graph)
            )
            assert_csr_identical(
                cache.in_csr(spec, new_graph),
                FactorCSR.from_graph_in_edges(spec, new_graph),
            )
            graph = new_graph
        assert cache.patches == 2 * len(deltas)
        # every equality check above was served from a patched entry
        assert cache.compiles == 2

    def test_out_csr_equals_factor_adjacency_compile(self):
        spec = PageRank()
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        via_adjacency = FactorCSR.from_factor_adjacency(
            FactorAdjacency.from_graph(spec, graph), universe=graph.vertices()
        )
        assert_csr_identical(cache.out_csr(spec, graph), via_adjacency)

    def test_rebuild_threshold_abandons_patch(self):
        spec = SSSP(source=0)
        graph = _base_graph()
        cache = CSRCache(enabled=True, rebuild_fraction=0.1)
        cache.out_csr(spec, graph)
        delta = GraphDelta.from_edge_changes(
            additions=[(0, 3, 1.0), (1, 4, 1.0), (4, 2, 1.0)], deletions=[(0, 2)]
        )
        new_graph = delta.apply(graph)
        cache.apply_delta(spec, graph, new_graph, delta)
        assert cache.rebuilds == 1
        assert cache.patches == 0
        # the next access recompiles lazily and is correct
        assert_csr_identical(
            cache.out_csr(spec, new_graph), FactorCSR.from_graph(spec, new_graph)
        )


class TestInvalidation:
    def test_out_of_band_mutation_forces_rebuild(self):
        """Mutating the graph outside a GraphDelta must not serve a stale CSR."""
        spec = SSSP(source=0)
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        stale = cache.out_csr(spec, graph)
        assert cache.compiles == 1
        version_before = graph.version
        graph.add_edge(4, 2, 0.5)  # no GraphDelta, no apply_delta call
        assert graph.version > version_before
        rebuilt = cache.out_csr(spec, graph)
        assert cache.compiles == 2
        assert rebuilt is not stale
        assert_csr_identical(rebuilt, FactorCSR.from_graph(spec, graph))

    def test_weight_overwrite_out_of_band_is_detected(self):
        # Same bug class as PR 1's overwriting ADD_EDGE, but out of band:
        # the weight change must invalidate the cached factors.
        spec = SSSP(source=0)
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        cache.out_csr(spec, graph)
        graph.add_edge(0, 1, 99.0)  # overwrite, vertex set unchanged
        fresh = cache.out_csr(spec, graph)
        assert cache.compiles == 2
        position = fresh.offsets[fresh.index[0]]
        row = fresh.factors[position : fresh.offsets[fresh.index[0] + 1]]
        assert 99.0 in row.tolist()

    def test_mismatched_graph_object_is_not_served(self):
        spec = SSSP(source=0)
        graph = _base_graph()
        other = _base_graph()
        cache = CSRCache(enabled=True)
        cache.out_csr(spec, graph)
        cache.out_csr(spec, other)
        assert cache.compiles == 2

    def test_apply_delta_with_stale_entry_drops_it(self):
        spec = SSSP(source=0)
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        cache.out_csr(spec, graph)
        graph.add_edge(4, 2, 0.5)  # out-of-band: entry version is now stale
        delta = GraphDelta.from_edge_changes(additions=[(1, 3, 1.0)])
        new_graph = delta.apply(graph)
        cache.apply_delta(spec, graph, new_graph, delta)
        assert cache.patches == 0
        assert cache.invalidations >= 1
        assert_csr_identical(
            cache.out_csr(spec, new_graph), FactorCSR.from_graph(spec, new_graph)
        )


class TestCacheKnob:
    def test_env_knob_disables_memoization(self, monkeypatch):
        monkeypatch.setenv(CSR_CACHE_ENV_VAR, "0")
        assert not csr_cache_enabled()
        cache = CSRCache()
        assert not cache.enabled
        spec = SSSP(source=0)
        graph = _base_graph()
        cache.out_csr(spec, graph)
        cache.out_csr(spec, graph)
        assert cache.compiles == 2  # no memoization, both calls compile fresh

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        assert csr_cache_enabled()
        cache = CSRCache()
        spec = SSSP(source=0)
        graph = _base_graph()
        first = cache.out_csr(spec, graph)
        assert cache.out_csr(spec, graph) is first
        assert cache.compiles == 1
        assert cache.hits == 1


class TestCachedGraphAdjacency:
    def test_matches_factor_adjacency_semantics(self):
        spec = PageRank()
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        cached = cache.adjacency(spec, graph)
        reference = FactorAdjacency.from_graph(spec, graph)
        assert sorted(cached.vertices_with_out_edges()) == sorted(
            reference.vertices_with_out_edges()
        )
        for vertex in graph.vertices():
            assert cached(vertex) == reference(vertex)
        assert len(cached) == len(reference)

    def test_propagate_identical_through_cached_adjacency(self):
        graph = _base_graph()
        for spec_factory in (lambda: SSSP(source=0), lambda: PageRank()):
            results = {}
            for kind in ("fresh", "cached"):
                spec = spec_factory()
                cache = CSRCache(enabled=True)
                adjacency = (
                    FactorAdjacency.from_graph(spec, graph)
                    if kind == "fresh"
                    else cache.adjacency(spec, graph)
                )
                states = spec.initial_states(graph)
                pending = {
                    v: m
                    for v, m in spec.initial_messages(graph).items()
                    if spec.is_significant(m)
                }
                metrics = ExecutionMetrics()
                propagate(spec, adjacency, states, pending, metrics, backend="numpy")
                results[kind] = (states, metrics)
            assert results["fresh"][0] == results["cached"][0]
            assert (
                results["fresh"][1].activations_per_round
                == results["cached"][1].activations_per_round
            )
            assert results["fresh"][1].vertex_updates == results["cached"][1].vertex_updates

    def test_universe_outside_graph_falls_back(self):
        spec = SSSP(source=0)
        graph = _base_graph()
        cache = CSRCache(enabled=True)
        cached = cache.adjacency(spec, graph)
        assert cached.compiled_csr({0, 1}) is not None
        assert cached.compiled_csr({0, 12345}) is None


class TestUndirectedGraphs:
    """Undirected graphs install/remove the reverse edge alongside every
    update; the delta-footprint narrowing and the CSR patching must treat
    both endpoints as changed."""

    def _undirected_graph(self) -> Graph:
        return Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 4, 2.0)], directed=False
        )

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.name)
    def test_patched_csr_matches_fresh_compile_undirected(self, spec):
        graph = self._undirected_graph()
        cache = CSRCache(enabled=True, rebuild_fraction=1.0)
        cache.out_csr(spec, graph)
        cache.in_csr(spec, graph)
        deltas = [
            GraphDelta.from_edge_changes(additions=[(0, 3, 4.0)]),
            GraphDelta.from_edge_changes(deletions=[(1, 2)]),
            GraphDelta.from_edge_changes(additions=[(2, 3, 9.0)]),  # overwrite
        ]
        for delta in deltas:
            new_graph = delta.apply(graph)
            cache.apply_delta(spec, graph, new_graph, delta)
            assert_csr_identical(
                cache.out_csr(spec, new_graph), FactorCSR.from_graph(spec, new_graph)
            )
            assert_csr_identical(
                cache.in_csr(spec, new_graph),
                FactorCSR.from_graph_in_edges(spec, new_graph),
            )
            graph = new_graph
        assert cache.patches == 2 * len(deltas)

    def test_touched_sources_covers_both_endpoints(self):
        graph = self._undirected_graph()
        delta = GraphDelta.from_edge_changes(additions=[(0, 3, 4.0)], deletions=[(1, 2)])
        assert {0, 3, 1, 2} <= delta.touched_sources(graph)

    @pytest.mark.parametrize("engine_name", ["ingress", "graphbolt", "dzig"])
    def test_undirected_engines_match_restart(self, engine_name):
        # The revision/dirty-scan narrowing must not drop the reverse-edge
        # endpoints (review regression): incremental == batch on G ⊕ ΔG.
        from repro.engine.algorithms import make_algorithm
        from repro.engine.runner import run_batch
        from repro.incremental import make_engine

        graph = self._undirected_graph()
        delta = GraphDelta.from_edge_changes(additions=[(0, 3, 4.0)], deletions=[(1, 2)])
        spec = make_algorithm("pagerank")
        reference = run_batch(make_algorithm("pagerank"), delta.apply(graph)).states
        for backend in ("python", "numpy"):
            engine = make_engine(engine_name, spec, backend=backend)
            engine.initialize(graph.copy())
            result = engine.apply_delta(delta)
            assert set(result.states) == set(reference)
            for vertex in reference:
                assert result.states[vertex] == pytest.approx(
                    reference[vertex], abs=1e-4
                ), (engine_name, backend, vertex)


class TestEngineDeltaSequences:
    """Engine-level lockdown of the patched-CSR path: a sequence of deltas
    through Ingress (which propagates over the cached full-graph CSR under
    the numpy backend) must stay bitwise-identical to the Python backend for
    all four algorithms."""

    @pytest.mark.parametrize("algorithm", ["sssp", "bfs", "pagerank", "php"])
    def test_ingress_sequence_identical_across_backends(self, algorithm, monkeypatch):
        # This test specifically locks down the *patched*-CSR path, so the
        # cache is always on here, even in the REPRO_CSR_CACHE=0 CI leg.
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        from repro.engine.algorithms import make_algorithm
        from repro.graph.generators import erdos_renyi_graph
        from repro.incremental import make_engine
        from repro.workloads.updates import random_edge_delta

        graph = erdos_renyi_graph(120, 700, weighted=True, seed=2)
        results = {}
        for backend in ("python", "numpy"):
            engine = make_engine("ingress", make_algorithm(algorithm, source=0), backend=backend)
            engine.initialize(graph.copy())
            current = graph.copy()
            runs = []
            for seed in range(6):
                delta = random_edge_delta(current, 4, 4, seed=seed, protect=0)
                runs.append(engine.apply_delta(delta))
                current = delta.apply(current)
            results[backend] = (runs, engine)
        py_runs, _ = results["python"]
        np_runs, np_engine = results["numpy"]
        assert np_engine.csr_cache.patches >= 6  # the CSR was patched, not recompiled
        for py, vec in zip(py_runs, np_runs):
            assert py.states == vec.states
            assert py.metrics.iterations == vec.metrics.iterations
            assert py.metrics.edge_activations == vec.metrics.edge_activations
            assert py.metrics.activations_per_round == vec.metrics.activations_per_round
            assert py.metrics.vertex_updates == vec.metrics.vertex_updates


class TestCompileShortCircuit:
    """`propagate` must not recompile when states/pending are unchanged
    between retries — the compile memo keyed on the adjacency version and
    universe short-circuits the second call."""

    def _run(self, spec, adjacency, graph):
        states = spec.initial_states(graph)
        pending = {
            v: m for v, m in spec.initial_messages(graph).items() if spec.is_significant(m)
        }
        propagate(spec, adjacency, states, pending, backend="numpy")
        return states

    def test_repeated_propagate_compiles_once(self, monkeypatch):
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        spec = SSSP(source=0)
        graph = _base_graph()
        adjacency = FactorAdjacency.from_graph(spec, graph)
        FactorCSR.compile_count = 0
        first = self._run(spec, adjacency, graph)
        assert FactorCSR.compile_count == 1
        second = self._run(spec, adjacency, graph)  # identical states/pending
        assert FactorCSR.compile_count == 1, "retry with unchanged inputs recompiled"
        assert first == second

    def test_disabled_cache_recompiles(self, monkeypatch):
        monkeypatch.setenv(CSR_CACHE_ENV_VAR, "0")
        spec = SSSP(source=0)
        graph = _base_graph()
        adjacency = FactorAdjacency.from_graph(spec, graph)
        FactorCSR.compile_count = 0
        self._run(spec, adjacency, graph)
        self._run(spec, adjacency, graph)
        assert FactorCSR.compile_count == 2

    def test_silenced_variants_share_one_master_compile(self, monkeypatch):
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        spec = SSSP(source=0)
        graph = _base_graph()
        adjacency = FactorAdjacency.from_graph(spec, graph)
        FactorCSR.compile_count = 0
        for silenced in ({1}, {2}, {1, 2}, set()):
            states = {}
            propagate(
                spec,
                SilencedAdjacency(adjacency, silenced),
                states,
                {0: 0.0},
                backend="numpy",
            )
        assert FactorCSR.compile_count == 1

    def test_mutation_invalidates_master_memo(self, monkeypatch):
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        spec = SSSP(source=0)
        graph = _base_graph()
        adjacency = FactorAdjacency.from_graph(spec, graph)
        FactorCSR.compile_count = 0
        self._run(spec, adjacency, graph)
        adjacency.add(4, 1, 0.5)
        states = {}
        propagate(spec, adjacency, states, {0: 0.0}, backend="numpy")
        assert FactorCSR.compile_count == 2
        assert states[1] == pytest.approx(2.0)  # 0 ->(3.0? no) — shortest 0->1 = 2.0

    def test_master_memo_grows_universe_monotonically(self, monkeypatch):
        monkeypatch.delenv(CSR_CACHE_ENV_VAR, raising=False)
        adjacency = FactorAdjacency({0: [(1, 1.0)]})
        first = master_factor_csr(adjacency, {0, 1})
        second = master_factor_csr(adjacency, {0, 1, 5})
        assert 5 in second.index
        third = master_factor_csr(adjacency, {0})
        assert third is second
