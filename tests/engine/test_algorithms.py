"""Unit tests for the algorithm specifications and the batch runner."""

import math

import pytest

from repro.engine.algorithms import BFS, PHP, PageRank, SSSP, make_algorithm
from repro.engine.runner import run_batch
from repro.graph.graph import Graph


class TestSSSP:
    def test_simple_path(self):
        graph = Graph.from_edges([(0, 1, 2.0), (1, 2, 3.0)])
        result = run_batch(SSSP(source=0), graph)
        assert result.states == {0: 0.0, 1: 2.0, 2: 5.0}

    def test_chooses_shorter_path(self, small_weighted_graph):
        result = run_batch(SSSP(source=0), small_weighted_graph)
        # 0->1 (2), 0->1->2 (3), 0->1->2->3 (5), 0->1->2->3->4 (6)
        assert result.states[1] == 2.0
        assert result.states[2] == 3.0
        assert result.states[3] == 5.0
        assert result.states[4] == 6.0

    def test_unreachable_vertex_stays_infinite(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        graph.add_vertex(7)
        result = run_batch(SSSP(source=0), graph)
        assert math.isinf(result.states[7])

    def test_cycle_does_not_loop_forever(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        result = run_batch(SSSP(source=0), graph)
        assert result.states == {0: 0.0, 1: 1.0, 2: 2.0}

    def test_source_not_zero(self):
        graph = Graph.from_edges([(5, 6, 1.5), (6, 7, 2.5)])
        result = run_batch(SSSP(source=5), graph)
        assert result.states[7] == 4.0

    def test_spec_properties(self):
        spec = SSSP(source=0)
        assert spec.is_selective()
        assert not spec.is_invertible()
        assert spec.aggregate(3.0, 5.0) == 3.0
        assert spec.combine(2.0, 3.0) == 5.0
        assert spec.combine_identity() == 0.0
        assert math.isinf(spec.aggregate_identity())
        with pytest.raises(NotImplementedError):
            spec.negate(1.0)


class TestBFS:
    def test_hop_counts_ignore_weights(self):
        graph = Graph.from_edges([(0, 1, 100.0), (1, 2, 100.0), (0, 2, 500.0)])
        result = run_batch(BFS(source=0), graph)
        assert result.states == {0: 0.0, 1: 1.0, 2: 1.0}

    def test_edge_factor_is_always_one(self):
        graph = Graph.from_edges([(0, 1, 42.0)])
        assert BFS(source=0).edge_factor(graph, 0, 1) == 1.0


class TestPageRank:
    def test_scores_sum_to_vertex_count(self):
        # With teleport mass (1-d) per vertex the total PR mass equals |V|
        # when every vertex has an out-edge.
        graph = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (0, 2, 1.0), (2, 1, 1.0), (1, 0, 1.0)]
        )
        result = run_batch(PageRank(damping=0.85, tolerance=1e-9), graph)
        assert sum(result.states.values()) == pytest.approx(3.0, rel=1e-3)

    def test_symmetric_cycle_gives_equal_scores(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        result = run_batch(PageRank(tolerance=1e-9), graph)
        values = list(result.states.values())
        assert max(values) - min(values) < 1e-6

    def test_sink_receives_more_than_source(self):
        graph = Graph.from_edges([(0, 1, 1.0), (2, 1, 1.0)])
        result = run_batch(PageRank(), graph)
        assert result.states[1] > result.states[0]

    def test_matches_power_iteration(self):
        graph = Graph.from_edges(
            [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0), (3, 0, 1.0)]
        )
        result = run_batch(PageRank(damping=0.85, tolerance=1e-10), graph)
        # Reference fixed point x = (1-d) + d * A^T x computed independently.
        damping = 0.85
        scores = {v: 1.0 for v in graph.vertices()}
        for _ in range(200):
            scores = {
                v: (1 - damping)
                + damping
                * sum(
                    scores[u] / graph.out_degree(u) for u in graph.in_neighbors(v)
                )
                for v in graph.vertices()
            }
        for vertex, value in scores.items():
            assert result.states[vertex] == pytest.approx(value, abs=1e-4)

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            PageRank(damping=1.5)

    def test_dangling_vertex_factor_is_zero(self):
        graph = Graph.from_edges([(0, 1, 1.0)])
        spec = PageRank()
        assert spec.edge_factor(graph, 1, 0) == 0.0

    def test_spec_properties(self):
        spec = PageRank()
        assert not spec.is_selective()
        assert spec.is_invertible()
        assert spec.negate(2.0) == -2.0
        assert spec.combine_identity() == 1.0
        assert spec.aggregate_identity() == 0.0


class TestPHP:
    def test_source_state_is_one(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        result = run_batch(PHP(source=0), graph)
        assert result.states[0] == pytest.approx(1.0)

    def test_closer_vertices_score_higher(self):
        graph = Graph.from_edges([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        result = run_batch(PHP(source=0), graph)
        assert result.states[1] > result.states[2] > result.states[3]

    def test_returning_walks_are_absorbed(self):
        # Mass flowing back into the source must not be re-emitted: with the
        # cycle 0 -> 1 -> 0, vertex 1's score is exactly d (one hop),
        # not d / (1 - d^2) as it would be without absorption.
        graph = Graph.from_edges([(0, 1, 1.0), (1, 0, 1.0)])
        result = run_batch(PHP(source=0, damping=0.8), graph)
        assert result.states[1] == pytest.approx(0.8, abs=1e-6)

    def test_weights_matter(self):
        graph = Graph.from_edges([(0, 1, 9.0), (0, 2, 1.0)])
        result = run_batch(PHP(source=0), graph)
        assert result.states[1] > result.states[2]

    def test_invalid_damping_rejected(self):
        with pytest.raises(ValueError):
            PHP(source=0, damping=0.0)

    def test_absorbs_only_source(self):
        spec = PHP(source=3)
        assert spec.absorbs(3)
        assert not spec.absorbs(0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,expected",
        [("sssp", SSSP), ("bfs", BFS), ("pagerank", PageRank), ("pr", PageRank), ("php", PHP)],
    )
    def test_make_algorithm(self, name, expected):
        assert isinstance(make_algorithm(name, source=2), expected)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_algorithm("connected-components")

    def test_source_is_forwarded(self):
        assert make_algorithm("sssp", source=4).source == 4
        assert make_algorithm("php", source=4).source == 4
