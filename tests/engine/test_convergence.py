"""Unit tests for the state-map comparison helpers, NaN handling included.

NaN states signal corruption, and IEEE comparison semantics (``NaN != NaN``,
every ``NaN > x`` False) used to make them invisible: ``states_equal``
silently failed with no signal and ``max_divergence`` reported a corrupted
map as "divergent by 0.0".
"""

import math

from repro.engine.convergence import (
    finite_vertices,
    max_divergence,
    states_close,
    states_equal,
)

NAN = math.nan
INF = math.inf


class TestStatesEqual:
    def test_equal_maps(self):
        assert states_equal({0: 1.0, 1: INF}, {0: 1.0, 1: INF})

    def test_value_mismatch(self):
        assert not states_equal({0: 1.0}, {0: 2.0})

    def test_key_mismatch(self):
        assert not states_equal({0: 1.0}, {0: 1.0, 1: 2.0})

    def test_nan_equals_nan(self):
        assert states_equal({0: NAN, 1: 2.0}, {0: NAN, 1: 2.0})

    def test_nan_against_number_differs(self):
        assert not states_equal({0: NAN}, {0: 0.0})
        assert not states_equal({0: 0.0}, {0: NAN})

    def test_nan_against_infinity_differs(self):
        assert not states_equal({0: NAN}, {0: INF})


class TestStatesClose:
    def test_within_tolerance(self):
        assert states_close({0: 1.0}, {0: 1.0 + 1e-6}, tolerance=1e-5)

    def test_outside_tolerance(self):
        assert not states_close({0: 1.0}, {0: 1.1}, tolerance=1e-5)

    def test_infinities_must_match(self):
        assert states_close({0: INF}, {0: INF})
        assert not states_close({0: INF}, {0: -INF})
        assert not states_close({0: INF}, {0: 1.0})

    def test_nan_both_sides_is_close(self):
        assert states_close({0: NAN}, {0: NAN})

    def test_nan_one_side_is_never_close(self):
        # abs(nan - x) > tolerance is False, so the naive check would pass.
        assert not states_close({0: NAN}, {0: 1.0})
        assert not states_close({0: 1.0}, {0: NAN})
        assert not states_close({0: NAN}, {0: INF})


class TestMaxDivergence:
    def test_reports_worst_vertex(self):
        vertex, gap = max_divergence({0: 1.0, 1: 5.0}, {0: 1.5, 1: 3.0})
        assert vertex == 1
        assert gap == 2.0

    def test_matching_infinities_agree(self):
        vertex, gap = max_divergence({0: INF}, {0: INF})
        assert vertex is None
        assert gap == 0.0

    def test_single_infinity_is_infinitely_divergent(self):
        vertex, gap = max_divergence({0: INF}, {0: 1.0})
        assert vertex == 0
        assert gap == INF

    def test_opposite_infinities_are_infinitely_divergent(self):
        vertex, gap = max_divergence({0: INF}, {0: -INF})
        assert vertex == 0
        assert gap == INF

    def test_nan_one_side_is_infinitely_divergent(self):
        vertex, gap = max_divergence({0: NAN, 1: 1.0}, {0: 1.0, 1: 1.0})
        assert vertex == 0
        assert gap == INF

    def test_nan_both_sides_agree(self):
        vertex, gap = max_divergence({0: NAN}, {0: NAN})
        assert vertex is None
        assert gap == 0.0

    def test_empty_and_disjoint_maps(self):
        assert max_divergence({}, {}) == (None, 0.0)
        assert max_divergence({0: 1.0}, {1: 1.0}) == (None, 0.0)


class TestFiniteVertices:
    def test_filters_infinities(self):
        assert sorted(finite_vertices({0: 1.0, 1: INF, 2: -3.0})) == [0, 2]
