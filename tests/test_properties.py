"""Property-based tests (hypothesis) for the core invariants.

The central property is the paper's Equation (4): for random graphs and
random deltas, every incremental engine must agree with a from-scratch batch
run on the updated graph.  Supporting properties cover the graph/delta
algebra and the shortcut folding (Definition 3).
"""

from __future__ import annotations

import math

import numpy as np

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bench.harness import build_engine
from repro.engine.algorithms import PageRank, SSSP, make_algorithm
from repro.engine.convergence import states_close
from repro.engine.propagation import FactorAdjacency
from repro.engine.runner import run_batch
from repro.graph.csr import FactorCSR
from repro.graph.csr_cache import CSRCache
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.layph.shortcuts import compute_shortcuts_from

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_vertices: int = 14, max_edges: int = 45):
    """Random small weighted digraphs that always contain vertex 0."""
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_vertices - 1),
                st.integers(0, num_vertices - 1),
                st.integers(1, 9),
            ),
            max_size=max_edges,
        )
    )
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for source, target, weight in edges:
        if source != target:
            graph.add_edge(source, target, float(weight))
    return graph


@st.composite
def graph_and_delta(draw):
    """A random graph together with a random batch update against it."""
    graph = draw(small_graphs())
    vertices = sorted(graph.vertices())
    delta = GraphDelta()
    existing = list(graph.edges())
    deletions = draw(st.lists(st.sampled_from(existing), max_size=4)) if existing else []
    for source, target, _weight in deletions:
        delta.delete_edge(source, target)
    additions = draw(
        st.lists(
            st.tuples(st.sampled_from(vertices), st.sampled_from(vertices), st.integers(1, 9)),
            max_size=4,
        )
    )
    for source, target, weight in additions:
        if source != target:
            delta.add_edge(source, target, float(weight))
    return graph, delta


def _random_delta(draw, graph: Graph, tag: int) -> GraphDelta:
    """One random batch update against the *current* ``graph``.

    Mixes edge deletions, edge insertions (including weight-overwriting
    re-insertions of existing edges, the PR 1 bug class), and vertex
    insertions/deletions.
    """
    vertices = sorted(graph.vertices())
    delta = GraphDelta()
    existing = list(graph.edges())
    if existing:
        for source, target, _weight in draw(st.lists(st.sampled_from(existing), max_size=3)):
            delta.delete_edge(source, target)
    if vertices:
        additions = draw(
            st.lists(
                st.tuples(
                    st.sampled_from(vertices), st.sampled_from(vertices), st.integers(1, 9)
                ),
                max_size=3,
            )
        )
        for source, target, weight in additions:
            if source != target:
                delta.add_edge(source, target, float(weight))
        if draw(st.booleans()):
            new_vertex = max(vertices) + 1 + tag
            attach = draw(st.sampled_from(vertices))
            delta.add_vertex(new_vertex, edges=[(new_vertex, attach, 2.0)])
        removable = [v for v in vertices if v != 0]
        if removable and draw(st.booleans()):
            delta.delete_vertex(draw(st.sampled_from(removable)))
    return delta


@st.composite
def graph_and_delta_sequence(draw, max_deltas: int = 4):
    """A random graph plus a sequence of random batch updates against it."""
    graph = draw(small_graphs())
    deltas = []
    current = graph
    for tag in range(draw(st.integers(min_value=2, max_value=max_deltas))):
        delta = _random_delta(draw, current, tag)
        deltas.append(delta)
        current = delta.apply(current)
    return graph, deltas


@st.composite
def oriented_graph_and_delta_sequence(draw, max_deltas: int = 3):
    """Like :func:`graph_and_delta_sequence`, but drawing both orientations.

    Undirected graphs install the reverse of every edge, which exercises the
    both-endpoints-touched corners of the delta-footprint narrowing and the
    memo-table remaps.
    """
    directed = draw(st.booleans())
    base = draw(small_graphs())
    if directed:
        graph = base
    else:
        graph = Graph(directed=False)
        for vertex in base.vertices():
            graph.add_vertex(vertex)
        for source, target, weight in base.edges():
            graph.add_edge(source, target, weight)
    deltas = []
    current = graph
    for tag in range(draw(st.integers(min_value=1, max_value=max_deltas))):
        delta = _random_delta(draw, current, tag)
        deltas.append(delta)
        current = delta.apply(current)
    return graph, deltas


# ----------------------------------------------------------------------
# graph / delta algebra
# ----------------------------------------------------------------------
class TestGraphProperties:
    @SETTINGS
    @given(small_graphs())
    def test_degree_sums_match_edge_count(self, graph):
        assert sum(graph.out_degree(v) for v in graph.vertices()) == graph.num_edges()
        assert sum(graph.in_degree(v) for v in graph.vertices()) == graph.num_edges()

    @SETTINGS
    @given(small_graphs())
    def test_copy_equals_original(self, graph):
        assert graph.copy() == graph

    @SETTINGS
    @given(small_graphs())
    def test_reverse_twice_is_identity(self, graph):
        assert graph.reverse().reverse() == graph

    @SETTINGS
    @given(graph_and_delta())
    def test_delta_inversion_roundtrip(self, data):
        graph, delta = data
        updated = delta.apply(graph)
        restored = delta.inverted(graph).apply(updated)
        # Re-adding a deleted edge restores its weight, so the roundtrip is
        # exact whenever the delta did not both delete and re-add same edge.
        deleted = {(s, t) for s, t, _ in delta.deleted_edges(graph)}
        added = {(s, t) for s, t, _ in delta.added_edges(graph)}
        if not deleted & added:
            assert restored == graph

    @SETTINGS
    @given(graph_and_delta())
    def test_apply_never_mutates_original(self, data):
        graph, delta = data
        snapshot = graph.copy()
        delta.apply(graph)
        assert graph == snapshot


# ----------------------------------------------------------------------
# batch semantics
# ----------------------------------------------------------------------
class TestBatchProperties:
    @SETTINGS
    @given(small_graphs())
    def test_sssp_triangle_inequality(self, graph):
        states = run_batch(SSSP(source=0), graph).states
        for source, target, weight in graph.edges():
            if not math.isinf(states[source]):
                assert states[target] <= states[source] + weight + 1e-9

    @SETTINGS
    @given(small_graphs())
    def test_sssp_source_is_zero_and_nonnegative(self, graph):
        states = run_batch(SSSP(source=0), graph).states
        assert states[0] == 0.0
        assert all(value >= 0.0 for value in states.values())

    @SETTINGS
    @given(small_graphs())
    def test_pagerank_scores_at_least_teleport(self, graph):
        states = run_batch(PageRank(damping=0.85), graph).states
        assert all(value >= (1 - 0.85) - 1e-9 for value in states.values())

    @SETTINGS
    @given(small_graphs())
    def test_pagerank_total_mass_bounded(self, graph):
        # Dangling vertices leak mass, so the total is at most |V| and at
        # least the teleport mass.
        states = run_batch(PageRank(damping=0.85), graph).states
        total = sum(states.values())
        n = graph.num_vertices()
        assert (1 - 0.85) * n - 1e-6 <= total <= n + 1e-6


# ----------------------------------------------------------------------
# incremental == batch (Equation (4))
# ----------------------------------------------------------------------
class TestIncrementalProperties:
    @SETTINGS
    @given(graph_and_delta(), st.sampled_from(["ingress", "kickstarter", "risgraph", "layph"]))
    def test_selective_engines_match_restart(self, data, engine_name):
        graph, delta = data
        spec = make_algorithm("sssp", source=0)
        engine = build_engine(engine_name, spec)
        engine.initialize(graph)
        result = engine.apply_delta(delta)
        reference = run_batch(make_algorithm("sssp", source=0), delta.apply(graph)).states
        assert states_close(result.states, reference, tolerance=1e-6)

    @SETTINGS
    @given(graph_and_delta(), st.sampled_from(["ingress", "graphbolt", "dzig", "layph"]))
    def test_accumulative_engines_match_restart(self, data, engine_name):
        graph, delta = data
        spec = make_algorithm("pagerank")
        engine = build_engine(engine_name, spec)
        engine.initialize(graph)
        result = engine.apply_delta(delta)
        reference = run_batch(make_algorithm("pagerank"), delta.apply(graph)).states
        assert states_close(result.states, reference, tolerance=1e-3)


# ----------------------------------------------------------------------
# backend equivalence: python loop vs vectorized CSR engine
# ----------------------------------------------------------------------
def _assert_metric_identical(py_metrics, np_metrics):
    assert py_metrics.iterations == np_metrics.iterations
    assert py_metrics.edge_activations == np_metrics.edge_activations
    assert py_metrics.activations_per_round == np_metrics.activations_per_round
    assert py_metrics.active_vertices_per_round == np_metrics.active_vertices_per_round
    assert py_metrics.vertex_updates == np_metrics.vertex_updates


def _assert_states_identical(left, right, tolerance=1e-9):
    assert set(left) == set(right)
    for vertex in left:
        a, b = left[vertex], right[vertex]
        assert a == b or abs(a - b) <= tolerance, (vertex, a, b)


class TestBackendEquivalence:
    """The numpy backend must be metric-compatible with the Python loop:
    same converged states, same round counts, same per-round edge
    activations — for all four algorithms, batch and incremental."""

    @SETTINGS
    @given(small_graphs(), st.sampled_from(["sssp", "bfs", "pagerank", "php"]))
    def test_batch_backends_identical(self, graph, algorithm):
        py = run_batch(make_algorithm(algorithm, source=0), graph, backend="python")
        vec = run_batch(make_algorithm(algorithm, source=0), graph, backend="numpy")
        _assert_states_identical(py.states, vec.states)
        _assert_metric_identical(py.metrics, vec.metrics)

    @SETTINGS
    @given(
        graph_and_delta(),
        st.sampled_from(["ingress", "layph", "restart"]),
        st.sampled_from(["sssp", "bfs", "pagerank", "php"]),
    )
    def test_incremental_backends_identical(self, data, engine_name, algorithm):
        graph, delta = data
        results = {}
        for backend in ("python", "numpy"):
            engine = build_engine(
                engine_name, make_algorithm(algorithm, source=0), backend=backend
            )
            engine.initialize(graph.copy())
            results[backend] = engine.apply_delta(delta)
        _assert_states_identical(results["python"].states, results["numpy"].states)
        _assert_metric_identical(results["python"].metrics, results["numpy"].metrics)


# ----------------------------------------------------------------------
# incremental CSR cache: patched arrays == fresh compile (every delta)
# ----------------------------------------------------------------------
def _assert_csr_identical(left, right):
    assert left.vertex_ids == right.vertex_ids
    assert np.array_equal(left.offsets, right.offsets)
    assert np.array_equal(left.targets, right.targets)
    assert np.array_equal(left.factors, right.factors)


class TestCSRCacheProperties:
    """A random delta sequence pushed through the CSRCache must leave arrays
    identical to a fresh ``FactorCSR`` compile after every delta — for all
    four algorithms, in both edge orientations."""

    @SETTINGS
    @given(graph_and_delta_sequence(), st.sampled_from(["sssp", "bfs", "pagerank", "php"]))
    def test_patched_csr_identical_to_fresh_compile(self, data, algorithm):
        graph, deltas = data
        spec = make_algorithm(algorithm, source=0)
        cache = CSRCache(enabled=True, rebuild_fraction=1.0)
        current = graph.copy()
        cache.out_csr(spec, current)
        cache.in_csr(spec, current)
        for delta in deltas:
            updated = delta.apply(current)
            cache.apply_delta(spec, current, updated, delta)
            _assert_csr_identical(
                cache.out_csr(spec, updated), FactorCSR.from_graph(spec, updated)
            )
            _assert_csr_identical(
                cache.out_csr(spec, updated),
                FactorCSR.from_factor_adjacency(
                    FactorAdjacency.from_graph(spec, updated), universe=updated.vertices()
                ),
            )
            _assert_csr_identical(
                cache.in_csr(spec, updated), FactorCSR.from_graph_in_edges(spec, updated)
            )
            current = updated


# ----------------------------------------------------------------------
# backend equivalence of the BSP engines (GraphBolt / DZiG)
# ----------------------------------------------------------------------
class TestBSPBackendEquivalence:
    """GraphBolt's and DZiG's vectorized BSP pulls must reproduce the Python
    loops exactly: same memoized iterations, converged states, round counts
    and edge activations — batch and incremental."""

    @SETTINGS
    @given(
        graph_and_delta(),
        st.sampled_from(["graphbolt", "dzig"]),
        st.sampled_from(["pagerank", "php"]),
    )
    def test_bsp_backends_identical(self, data, engine_name, algorithm):
        graph, delta = data
        results = {}
        for backend in ("python", "numpy"):
            engine = build_engine(
                engine_name, make_algorithm(algorithm, source=0), backend=backend
            )
            initial = engine.initialize(graph.copy())
            incremental = engine.apply_delta(delta)
            results[backend] = (initial, incremental, engine.iterations)
        py_init, py_inc, py_iters = results["python"]
        np_init, np_inc, np_iters = results["numpy"]
        _assert_states_identical(py_init.states, np_init.states, tolerance=0.0)
        _assert_metric_identical(py_init.metrics, np_init.metrics)
        _assert_states_identical(py_inc.states, np_inc.states, tolerance=0.0)
        _assert_metric_identical(py_inc.metrics, np_inc.metrics)
        assert len(py_iters) == len(np_iters)
        for py_level, np_level in zip(py_iters, np_iters):
            assert py_level == np_level


# ----------------------------------------------------------------------
# dense memo table (GraphBolt / DZiG) == dict reference, bitwise
# ----------------------------------------------------------------------
class TestMemoStoreEquivalence:
    """The dense ``MemoTable`` store must be bitwise interchangeable with the
    dict reference: identical memoized iterations, states, rounds and edge
    activations over random delta sequences (vertex additions/removals and
    index remaps included), in both graph orientations — and flipping the
    ``REPRO_MEMO_DENSE`` escape hatch must reproduce the dict path under the
    numpy backend exactly."""

    @SETTINGS
    @given(
        oriented_graph_and_delta_sequence(),
        st.sampled_from(["graphbolt", "dzig"]),
        st.sampled_from(["pagerank", "php"]),
    )
    def test_dense_store_matches_dict_reference(self, data, engine_name, algorithm):
        graph, deltas = data

        def run(backend, memo_dense):
            import os

            previous = os.environ.get("REPRO_MEMO_DENSE")
            os.environ["REPRO_MEMO_DENSE"] = "1" if memo_dense else "0"
            try:
                engine = build_engine(
                    engine_name, make_algorithm(algorithm, source=0), backend=backend
                )
                initial = engine.initialize(graph.copy())
                incremental = [engine.apply_delta(delta) for delta in deltas]
                return engine, initial, incremental
            finally:
                if previous is None:
                    del os.environ["REPRO_MEMO_DENSE"]
                else:
                    os.environ["REPRO_MEMO_DENSE"] = previous

        py_engine, py_init, py_inc = run("python", memo_dense=True)
        dense_engine, dense_init, dense_inc = run("numpy", memo_dense=True)
        dict_engine, dict_init, dict_inc = run("numpy", memo_dense=False)
        assert py_engine.memo is None
        assert dict_engine.memo is None

        for other_init, other_inc in ((dense_init, dense_inc), (dict_init, dict_inc)):
            _assert_states_identical(py_init.states, other_init.states, tolerance=0.0)
            _assert_metric_identical(py_init.metrics, other_init.metrics)
            for py_result, other_result in zip(py_inc, other_inc):
                _assert_states_identical(
                    py_result.states, other_result.states, tolerance=0.0
                )
                _assert_metric_identical(py_result.metrics, other_result.metrics)

        py_iters = py_engine.iterations
        for other in (dense_engine, dict_engine):
            other_iters = other.iterations
            assert len(py_iters) == len(other_iters)
            for py_level, other_level in zip(py_iters, other_iters):
                assert py_level == other_level


# ----------------------------------------------------------------------
# vectorized revision-message deduction == dict reference, bitwise
# ----------------------------------------------------------------------
class TestRevisionMessageEquivalence:
    """``accumulative_revision_messages`` with the out-edge CSR snapshots must
    produce the exact pending map of the dict reference (same targets, same
    float bits), and candidate narrowing must never change the outcome."""

    @SETTINGS
    @given(
        oriented_graph_and_delta_sequence(max_deltas=2),
        st.sampled_from(["pagerank", "php"]),
    )
    def test_vectorized_deduction_identical(self, data, algorithm):
        from repro.incremental.revision import accumulative_revision_messages

        graph, deltas = data
        spec = make_algorithm(algorithm, source=0)
        current = graph
        states = run_batch(spec, current).states
        for delta in deltas:
            updated = delta.apply(current)
            reference = accumulative_revision_messages(spec, current, updated, states)
            narrowed = accumulative_revision_messages(
                spec,
                current,
                updated,
                states,
                candidates=delta.touched_sources(current),
            )
            vectorized = accumulative_revision_messages(
                spec,
                current,
                updated,
                states,
                candidates=delta.touched_sources(current),
                old_csr=FactorCSR.from_graph(spec, current),
                new_csr=FactorCSR.from_graph(spec, updated),
            )
            for other in (narrowed, vectorized):
                assert other[1] == reference[1]
                assert other[2] == reference[2]
                assert set(other[0]) == set(reference[0])
                for vertex in reference[0]:
                    assert other[0][vertex] == reference[0][vertex], (
                        vertex,
                        reference[0][vertex],
                        other[0][vertex],
                    )
            current = updated
            states = run_batch(spec, current).states


# ----------------------------------------------------------------------
# shortcut folding (Definition 3)
# ----------------------------------------------------------------------
class TestShortcutProperties:
    @SETTINGS
    @given(small_graphs())
    def test_sssp_shortcuts_bound_true_distances(self, graph):
        """A shortcut is an internal-only path, so it can never be shorter
        than the unrestricted shortest path between the same endpoints."""
        spec = SSSP(source=0)
        adjacency = FactorAdjacency.from_graph(spec, graph)
        boundary = {0}
        shortcuts = compute_shortcuts_from(spec, adjacency, 0, boundary)
        true_distances = run_batch(SSSP(source=0), graph).states
        for target, weight in shortcuts.items():
            assert weight >= true_distances[target] - 1e-9
