"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.graph.generators import community_graph, erdos_renyi_graph
from repro.graph.graph import Graph


def paper_example_graph() -> Graph:
    """The 9-vertex example graph of Figure 2a.

    Vertices v0..v8; two dense subgraphs G1 = {v1, v2, v3} and
    G2 = {v5, v6, v7, v8} (G2's entry is v5 reached from v4, exit towards
    v0); edge weights follow the figure.  The exact layout of the figure is
    hard to read from the PDF text, so this reconstruction keeps the
    properties the worked examples rely on: v0 is the SSSP source, deleting
    (v3, v4) and adding (v3, v2) changes only subgraph G1's side, and the
    paper's shortcut weights for G1 ({1, 4, 1, 2} before the update,
    {1, 3, 1, 4} after) are reproduced by the shortcut calculator.
    """
    edges = [
        (0, 1, 1.0),   # v0 -> v1
        (1, 3, 1.0),   # v1 -> v3
        (3, 4, 1.0),   # v3 -> v4  (deleted by the example update)
        (1, 2, 3.0),   # v1 -> v2
        (2, 4, 1.0),   # v2 -> v4
        (4, 5, 3.0),   # v4 -> v5
        (5, 6, 1.0),   # v5 -> v6
        (6, 7, 1.0),   # v6 -> v7
        (6, 8, 1.0),   # v6 -> v8
        (8, 5, 1.0),   # v8 -> v5
        (5, 0, 2.0),   # v5 -> v0 (back edge, keeps v5 an exit vertex)
    ]
    return Graph.from_edges(edges)


@pytest.fixture
def example_graph() -> Graph:
    return paper_example_graph()


@pytest.fixture
def small_weighted_graph() -> Graph:
    """A small weighted digraph with a cycle and a dead end."""
    return Graph.from_edges(
        [
            (0, 1, 2.0),
            (0, 2, 5.0),
            (1, 2, 1.0),
            (2, 3, 2.0),
            (3, 1, 4.0),
            (3, 4, 1.0),
            (2, 4, 6.0),
        ]
    )


@pytest.fixture
def community_graph_small() -> Graph:
    """A community-structured graph suitable for Layph tests."""
    return community_graph(
        num_communities=6,
        community_size_range=(8, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=7,
    )


@pytest.fixture
def random_graph() -> Graph:
    return erdos_renyi_graph(60, 300, weighted=True, seed=3)
