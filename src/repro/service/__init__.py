"""Fault-tolerant streaming update service around the incremental engines.

``UpdateService`` turns any initialized :class:`IncrementalEngine` into a
long-running update/query server: WAL-backed ingestion with exactly-once
acknowledgement, a coalescing single-writer apply loop with watchdog,
retries and bisect-and-quarantine, immutable versioned snapshots on the
read path, and crash recovery from the service directory.

``repro.service.net`` puts that API on the network — an asyncio HTTP/1.1
front end (``serve()`` / ``ServiceServer`` / ``AsyncServiceClient``) with
idempotent submits, 429 backpressure, and push subscriptions
(``SubscriptionRegistry``) delivering snapshot-diff deltas over long-poll
and chunked streams.
"""

from repro.service.coalescer import (
    FIG10_BATCH_SIZES,
    AdaptiveBatchSizer,
    coalesce_edge_run,
    segment_events,
)
from repro.service.events import Event, EventLog, update_from_payload, update_payload
from repro.service.faults import (
    NO_FAULTS,
    STAGES,
    FaultInjector,
    ServiceDead,
    ServiceKilled,
    ServiceOverloaded,
)
from repro.service.net import (
    AsyncServiceClient,
    HttpError,
    ServiceServer,
    serve,
    value_from_wire,
    wire_value,
)
from repro.service.service import (
    ApplyTimeout,
    DeadLetterQueue,
    QuarantinedEvent,
    ServiceStats,
    UpdateService,
)
from repro.service.snapshot import StateSnapshot, states_checksum
from repro.service.subscriptions import (
    Subscription,
    SubscriptionEvicted,
    SubscriptionRegistry,
    snapshot_diff,
)

__all__ = [
    "AdaptiveBatchSizer",
    "ApplyTimeout",
    "AsyncServiceClient",
    "DeadLetterQueue",
    "Event",
    "EventLog",
    "FIG10_BATCH_SIZES",
    "FaultInjector",
    "HttpError",
    "NO_FAULTS",
    "QuarantinedEvent",
    "STAGES",
    "ServiceDead",
    "ServiceKilled",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceStats",
    "StateSnapshot",
    "Subscription",
    "SubscriptionEvicted",
    "SubscriptionRegistry",
    "UpdateService",
    "coalesce_edge_run",
    "segment_events",
    "serve",
    "snapshot_diff",
    "states_checksum",
    "update_from_payload",
    "update_payload",
    "value_from_wire",
    "wire_value",
]
