"""Fault-tolerant streaming update service around the incremental engines.

``UpdateService`` turns any initialized :class:`IncrementalEngine` into a
long-running update/query server: WAL-backed ingestion with exactly-once
acknowledgement, a coalescing single-writer apply loop with watchdog,
retries and bisect-and-quarantine, immutable versioned snapshots on the
read path, and crash recovery from the service directory.
"""

from repro.service.coalescer import (
    FIG10_BATCH_SIZES,
    AdaptiveBatchSizer,
    coalesce_edge_run,
    segment_events,
)
from repro.service.events import Event, EventLog, update_from_payload, update_payload
from repro.service.faults import (
    NO_FAULTS,
    STAGES,
    FaultInjector,
    ServiceDead,
    ServiceKilled,
    ServiceOverloaded,
)
from repro.service.service import (
    ApplyTimeout,
    DeadLetterQueue,
    QuarantinedEvent,
    ServiceStats,
    UpdateService,
)
from repro.service.snapshot import StateSnapshot, states_checksum

__all__ = [
    "AdaptiveBatchSizer",
    "ApplyTimeout",
    "DeadLetterQueue",
    "Event",
    "EventLog",
    "FIG10_BATCH_SIZES",
    "FaultInjector",
    "NO_FAULTS",
    "QuarantinedEvent",
    "STAGES",
    "ServiceDead",
    "ServiceKilled",
    "ServiceOverloaded",
    "ServiceStats",
    "StateSnapshot",
    "UpdateService",
    "coalesce_edge_run",
    "segment_events",
    "states_checksum",
    "update_from_payload",
    "update_payload",
]
