"""Fault injection for the streaming update service.

The chaos harness (``tests/service/test_chaos.py``) needs to break the
service at *exact* pipeline stages, deterministically.  Rather than
scattering test-only conditionals through the service, the service calls
``faults.fire(stage, ...)`` at every stage boundary and an armed
:class:`FaultInjector` decides whether that crossing raises, blocks or
passes.  Production runs use the inert default injector (every ``fire`` is a
no-op dict lookup on an empty table).

Stages, in pipeline order:

``pre_wal_append``/``post_wal_append``
    Around the WAL fsync inside ``submit`` — the two sides of the
    acknowledgement boundary.  A kill before the append loses the event (the
    client never got an ack, so it must resubmit); a kill after must *not*
    lose it (recovery replays the WAL).
``pre_apply``
    In the writer, after a batch validated but before the engine runs.
``mid_apply``
    Inside the apply itself, after the watchdog started but before the
    engine mutated anything — the spot where worker-pool faults, stuck
    propagations and hard kills are simulated.
``pre_publish``/``post_publish``
    Around the atomic snapshot swap: a kill between apply and publish leaves
    durable state ahead of the published snapshot, which recovery must
    reconcile.

Actions: an exception *instance or class* to raise (:class:`ServiceKilled`
simulates a process death; ``WorkerPoolError``/``OSError`` simulate
transients), or a callable run at the crossing (blocking callables simulate
stuck batches for the watchdog).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

STAGES = (
    "pre_wal_append",
    "post_wal_append",
    "pre_apply",
    "mid_apply",
    "pre_publish",
    "post_publish",
)


class ServiceKilled(RuntimeError):
    """Simulated process death: the service instance is dead, state on disk
    is whatever the crash left behind, and recovery must start from the
    store directory (``UpdateService.recover``)."""


class ServiceDead(RuntimeError):
    """The service was killed or closed; no further calls are accepted."""


class ServiceOverloaded(RuntimeError):
    """The bounded ingest queue stayed full past the submit timeout."""


class _Arm:
    def __init__(
        self,
        stage: str,
        action,
        when: Optional[Callable[[dict], bool]],
        times: int,
    ) -> None:
        self.stage = stage
        self.action = action
        self.when = when
        self.remaining = times

    def matches(self, context: dict) -> bool:
        if self.remaining <= 0:
            return False
        if self.when is not None and not self.when(context):
            return False
        return True


class FaultInjector:
    """Armed faults, fired at stage crossings.

    ``arm(stage, action, when=..., times=...)`` registers a fault;
    ``fire(stage, **context)`` triggers the first matching arm (decrementing
    its budget).  ``when`` receives the context dict the service passes
    (event/batch sequence numbers, attempt counts) so a fault can target
    "the batch containing event 100" precisely.
    """

    def __init__(self) -> None:
        self._arms: Dict[str, List[_Arm]] = {}
        self._lock = threading.Lock()
        #: every fired (stage, context) pair, for harness assertions
        self.fired: List[tuple] = []

    def arm(
        self,
        stage: str,
        action,
        when: Optional[Callable[[dict], bool]] = None,
        times: int = 1,
    ) -> None:
        if stage not in STAGES:
            raise ValueError(f"unknown stage {stage!r} (expected one of {STAGES})")
        with self._lock:
            self._arms.setdefault(stage, []).append(_Arm(stage, action, when, times))

    def fire(self, stage: str, **context) -> None:
        arms = self._arms.get(stage)
        if not arms:
            return
        with self._lock:
            arm = next((a for a in arms if a.matches(context)), None)
            if arm is None:
                return
            arm.remaining -= 1
            self.fired.append((stage, dict(context)))
        action = arm.action
        if isinstance(action, BaseException):
            raise action
        if isinstance(action, type) and issubclass(action, BaseException):
            raise action(f"injected fault at {stage}")
        action(context)


#: the inert injector production services run with
NO_FAULTS = FaultInjector()
