"""Raw update events and their write-ahead log.

An :class:`Event` is one client-submitted unit update
(:class:`repro.graph.delta.EdgeUpdate` / ``VertexUpdate``) stamped with a
strictly increasing sequence number.  The :class:`EventLog` WALs events on
the same CRC+fsync JSONL machinery as the engine's delta log
(:class:`repro.storage.edge_store.CrcLog`): ``append`` returns only after
the record is fsync'd, so an acknowledged submit survives any crash, and a
torn tail (a crash mid-append) drops only the unacknowledged record.

Weights are serialized through ``float.hex`` so NaN/inf poison events —
which ``json`` cannot represent portably — and ordinary weights both
round-trip bit-exactly through the WAL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.graph.delta import EdgeUpdate, UpdateKind, VertexUpdate
from repro.storage.edge_store import CrcLog


def _encode_weight(weight: float) -> str:
    if math.isnan(weight):
        return "nan"
    if math.isinf(weight):
        return "inf" if weight > 0 else "-inf"
    return float(weight).hex()


def _decode_weight(raw: str) -> float:
    return float.fromhex(raw) if raw not in ("nan", "inf", "-inf") else float(raw)


def update_payload(update: object) -> list:
    """JSON-serializable form of one unit update."""
    if isinstance(update, EdgeUpdate):
        return [
            update.kind.value,
            update.source,
            update.target,
            _encode_weight(update.weight),
        ]
    if isinstance(update, VertexUpdate):
        return [
            update.kind.value,
            update.vertex,
            [[s, t, _encode_weight(w)] for s, t, w in update.edges],
        ]
    raise TypeError(f"not a unit update: {type(update).__name__}")


def update_from_payload(payload: list) -> object:
    """Rebuild a unit update from :func:`update_payload` output."""
    kind = UpdateKind(payload[0])
    if kind in (UpdateKind.ADD_EDGE, UpdateKind.DELETE_EDGE):
        return EdgeUpdate(
            kind, int(payload[1]), int(payload[2]), _decode_weight(payload[3])
        )
    return VertexUpdate(
        kind,
        int(payload[1]),
        tuple((int(s), int(t), _decode_weight(w)) for s, t, w in payload[2]),
    )


@dataclass(frozen=True)
class Event:
    """One WAL'd unit update with its client-visible sequence number."""

    seq: int
    update: object


class EventLog(CrcLog):
    """The service's write-ahead log of raw events.

    Same durability contract as the delta log (CRC per line, fsync before
    acknowledgement, longest-valid-prefix reads), plus strict sequencing:
    ``read`` stops at the first record whose seq is not exactly one past the
    previous record's, so the returned events always form one contiguous,
    gap-free run — the property recovery's replay-floor skipping relies on.
    """

    def append(self, event: Event) -> None:
        """Durably append one event (fsync before returning)."""
        self.append_payload({"seq": event.seq, "u": update_payload(event.update)})

    def read(self) -> Tuple[List[Event], int]:
        """``(events, discarded)``: the valid prefix and dropped tail lines."""
        payloads, discarded = self.read_payloads()
        events: List[Event] = []
        for index, body in enumerate(payloads):
            event = self._parse_event(body)
            if event is None or (events and event.seq != events[-1].seq + 1):
                discarded += len(payloads) - index
                break
            events.append(event)
        return events, discarded

    @staticmethod
    def _parse_event(body: dict):
        try:
            return Event(seq=int(body["seq"]), update=update_from_payload(body["u"]))
        except (KeyError, TypeError, ValueError, IndexError):
            return None
