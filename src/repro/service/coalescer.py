"""Fold raw event runs into canonical :class:`GraphDelta` batches.

The coalescer is the service's write-amplification killer: a batch of raw
events usually contains redundant work — repeated overwrites of the same
edge, add+delete flip-flops that cancel, deletes of edges that never existed
— and every redundant unit update costs the engine an invalidation pass.
Folding the run *must not change the result*: the engines' bitwise
reproducibility hangs on the graph's adjacency **insertion order** (in-CSR
slot order drives the float-sum order of the accumulative engines), so the
coalesced delta has to reproduce the exact final adjacency content *and
order* the raw events would have produced.  The per-key state machine in
:func:`coalesce_edge_run` is built around the two order rules of
:class:`repro.graph.graph.Graph`:

* ``add_edge`` on a *present* edge overwrites the weight in place (the key
  keeps its position);
* delete followed by re-add moves the key to the end of its row (a fresh
  append).

So: overwrite chains collapse into the *first* add of the current presence
run (carrying the final weight — in-place overwrites never move the key);
delete+re-add keeps one delete plus an add at the re-add's position (the
move to the row's end happens at apply time, exactly like the raw run); a
delete of an edge that is absent at its stream position is dropped (the raw
apply would no-op it, and upstream validation treats dangling deletes as
rejects); and at most one delete per key survives (an edge can only
transition present→absent once per batch against the same base graph).

Vertex events are *barriers*: ``GraphDelta.apply`` runs vertex updates
before edge updates, so mixing them into one delta would reorder the
stream.  :func:`segment_events` splits a batch into maximal edge-event runs
and singleton vertex events; the writer coalesces and applies each segment
against the engine's then-current graph.

Undirected graphs fall back to pass-through segments (no dedupe/cancel):
``(s, t)`` and ``(t, s)`` alias the same edge there, and folding across the
alias while preserving both rows' orders is not worth the complexity for
the directed-first workloads this repo reproduces.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.graph.delta import EdgeUpdate, GraphDelta, UpdateKind, VertexUpdate
from repro.graph.graph import Graph

#: the fig10 batch-size sweep (unit updates per batch); the paper's relative
#: incremental advantage is largest at the small end and decays toward the
#: large end, which is why the adaptive sizer walks this grid
FIG10_BATCH_SIZES: Tuple[int, ...] = (2, 10, 50, 200)


def segment_events(updates: Sequence[object]) -> List[List[object]]:
    """Split a batch into maximal edge-update runs and singleton vertex events.

    Concatenating the segments in order reproduces the original stream; each
    segment is either entirely :class:`EdgeUpdate`s (coalescible) or exactly
    one :class:`VertexUpdate` (applied as its own delta).
    """
    segments: List[List[object]] = []
    run: List[object] = []
    for update in updates:
        if isinstance(update, VertexUpdate):
            if run:
                segments.append(run)
                run = []
            segments.append([update])
        else:
            run.append(update)
    if run:
        segments.append(run)
    return segments


def coalesce_edge_run(graph: Graph, updates: Sequence[object]) -> GraphDelta:
    """Canonicalize one run of edge events against ``graph``.

    Returns a delta whose application to ``graph`` is bitwise-identical —
    final states *and* adjacency orders — to applying the raw events one by
    one, with every redundant event folded away.  See the module docstring
    for the order argument.
    """
    if not graph.directed:
        delta = GraphDelta()
        delta.edge_updates.extend(updates)
        return delta

    # ops holds EdgeUpdate-or-None (tombstones keep positions stable while
    # a later event cancels an earlier one); per-key state drives emission
    ops: List[Optional[EdgeUpdate]] = []
    exists_now = {}
    add_slot = {}
    delete_emitted = set()

    for update in updates:
        key = (update.source, update.target)
        present = exists_now.get(key)
        if present is None:
            present = graph.has_edge(*key)
        if update.kind is UpdateKind.ADD_EDGE:
            slot = add_slot.get(key)
            if slot is not None:
                # overwrite within the same presence run: the raw replays
                # would overwrite in place, so only the final weight matters
                ops[slot] = EdgeUpdate(
                    UpdateKind.ADD_EDGE, key[0], key[1], update.weight
                )
            else:
                add_slot[key] = len(ops)
                ops.append(update)
            exists_now[key] = True
        else:
            if not present:
                # dangling delete: the raw apply would no-op it; dropping it
                # keeps the emitted delta clean under GraphDelta.validate
                continue
            exists_now[key] = False
            slot = add_slot.pop(key, None)
            if slot is not None:
                ops[slot] = None
                if graph.has_edge(*key) and key not in delete_emitted:
                    # the cancelled add had overwritten a pre-existing edge
                    # in place; the net effect is deleting the original
                    ops.append(EdgeUpdate(UpdateKind.DELETE_EDGE, key[0], key[1]))
                    delete_emitted.add(key)
            else:
                assert key not in delete_emitted
                ops.append(EdgeUpdate(UpdateKind.DELETE_EDGE, key[0], key[1]))
                delete_emitted.add(key)

    delta = GraphDelta()
    delta.edge_updates.extend(op for op in ops if op is not None)
    return delta


class AdaptiveBatchSizer:
    """Batch size controller walking the fig10 grid.

    The fig10 trade-off: small batches keep the incremental engines in the
    regime where their advantage over recomputation is largest (and keep
    snapshot staleness low), large batches amortize per-batch overhead when
    the ingest queue is falling behind.  The sizer starts at the grid's
    knee (10) and moves one grid step per observation: up when the apply
    latency is comfortably under target *and* a backlog is waiting, down
    when a batch blew past the target latency.
    """

    def __init__(
        self,
        initial: int = FIG10_BATCH_SIZES[1],
        target_latency: float = 0.05,
        grid: Sequence[int] = FIG10_BATCH_SIZES,
    ) -> None:
        self.grid = tuple(sorted(grid))
        if initial not in self.grid:
            raise ValueError(f"initial size {initial} not on grid {self.grid}")
        self._position = self.grid.index(initial)
        self.target_latency = float(target_latency)
        #: (events, seconds, backlog) observations recorded (for tests)
        self.observations = 0

    @property
    def size(self) -> int:
        return self.grid[self._position]

    def record(self, events: int, seconds: float, backlog: int) -> int:
        """Feed one applied batch's measurements; returns the new size."""
        self.observations += 1
        if events <= 0:
            return self.size
        if seconds > self.target_latency and self._position > 0:
            self._position -= 1
        elif (
            seconds < self.target_latency / 4
            and backlog > self.size
            and self._position < len(self.grid) - 1
        ):
            self._position += 1
        return self.size
