"""Immutable versioned state snapshots for the service's read path.

Queries must never block on propagation and never observe torn state.  The
writer publishes a fresh :class:`StateSnapshot` after every applied batch by
a single reference assignment (atomic under the GIL); readers grab the
current reference and keep using it for as long as they like — nothing the
writer does afterwards mutates it:

* ``states`` is a fresh dict copy made at publish time (engines rebind and
  mutate their own ``states`` dict on the next apply, they never reach into
  a published copy);
* ``csr`` is the engine's current :class:`FactorCSR` — safe to share
  because :mod:`repro.graph.csr_cache` *patches by replacement*: applying a
  delta allocates new arrays and installs a new entry, leaving every
  previously handed-out CSR frozen (copy-on-write at the cache layer);
* ``checksum`` fingerprints the states at publish time, so a reader (or the
  chaos harness) can prove the snapshot it read was internally consistent —
  a torn read would mix entries from two versions and break the digest.
"""

from __future__ import annotations

import heapq
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np


def states_checksum(seq: int, graph_version: int, states: Dict[int, float]) -> str:
    """Order-independent CRC32 digest of ``(seq, graph_version, states)``."""
    crc = zlib.crc32(struct.pack("<qq", seq, graph_version))
    for vertex in sorted(states):
        crc = zlib.crc32(
            struct.pack("<qd", vertex, states[vertex]), crc
        )
    return f"{crc & 0xFFFFFFFF:08x}"


@dataclass(frozen=True)
class StateSnapshot:
    """One published, immutable version of the computation's result."""

    #: WAL sequence number of the last event folded into this snapshot
    seq: int
    #: the engine graph's mutation counter at publish time
    graph_version: int
    #: vertex -> state value (treat as frozen; the writer never mutates it)
    states: Dict[int, float]
    #: the engine's out-edge factor CSR at publish time, when one was
    #: compiled (``None`` on the pure-Python backend)
    csr: Optional[object]
    #: events quarantined to the dead-letter queue so far
    quarantined: int
    #: monotonic publish timestamp (staleness diagnostics)
    published_at: float = field(default_factory=time.monotonic)
    #: digest of (seq, graph_version, states); ``verify()`` recomputes it
    checksum: str = ""
    #: lazily built ``(ids, values)`` arrays for vectorized diffing; the
    #: dict is the mutable cache slot a frozen dataclass is allowed to fill
    _cache: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def capture(
        cls,
        seq: int,
        graph_version: int,
        states: Dict[int, float],
        csr: Optional[object],
        quarantined: int,
    ) -> "StateSnapshot":
        copied = dict(states)
        return cls(
            seq=seq,
            graph_version=graph_version,
            states=copied,
            csr=csr,
            quarantined=quarantined,
            checksum=states_checksum(seq, graph_version, copied),
        )

    def verify(self) -> bool:
        """Recompute the digest; ``False`` means the snapshot was torn."""
        return (
            states_checksum(self.seq, self.graph_version, self.states)
            == self.checksum
        )

    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(ids, values)`` arrays over ``states`` in iteration order.

        Built once on first use and cached, so the subscription diff pays
        the dict-to-array conversion a single time per snapshot no matter
        how many subscribers consume it.  Two snapshots from the same
        engine without vertex churn iterate in the same order, which is
        what makes the aligned vectorized compare in
        :func:`repro.service.subscriptions.snapshot_diff` valid.
        """
        cached = self._cache.get("arrays")
        if cached is None:
            ids = np.fromiter(self.states.keys(), dtype=np.int64, count=len(self.states))
            values = np.fromiter(
                self.states.values(), dtype=np.float64, count=len(self.states)
            )
            cached = (ids, values)
            self._cache["arrays"] = cached
        return cached

    # ------------------------------------------------------------------
    # point / top-k queries
    # ------------------------------------------------------------------
    def value(self, vertex: int, default: Optional[float] = None) -> Optional[float]:
        """The state of ``vertex`` in this version."""
        return self.states.get(vertex, default)

    def top_k(self, k: int, largest: bool = True) -> List[Tuple[int, float]]:
        """The ``k`` most extreme ``(vertex, value)`` pairs, deterministically.

        ``largest=True`` ranks by descending value (PageRank-style
        influence); ``largest=False`` by ascending value (SSSP-style
        nearest).  Ties break on vertex id so equal-valued vertices always
        come back in the same order.
        """
        if largest:
            return heapq.nsmallest(
                k, self.states.items(), key=lambda item: (-item[1], item[0])
            )
        return heapq.nsmallest(k, self.states.items(), key=lambda item: (item[1], item[0]))
