"""The long-running update/query service around an :class:`IncrementalEngine`.

Pipeline (one writer thread, any number of submitters and readers)::

    submit(event) ──► EventLog WAL (CRC+fsync, ack after)      [ingest]
                 ──► bounded queue (backpressure)
    writer       ──► grid-aligned batch take
                 ──► segment + coalesce into GraphDelta        [coalesce]
                 ──► GraphDelta.validate / intrinsic checks    [validate]
                 ──► engine.apply_delta under watchdog,        [apply]
                     transient retries w/ backoff+jitter,
                     bisect-and-quarantine on persistent failure
                 ──► StateSnapshot publish (atomic swap)       [publish]
    readers      ──► snapshot()/value()/top_k()                [query]

Durability and exactly-once:

* Events are WAL'd *before* the submit acknowledgement, so an acked event
  survives any crash.  Resubmitting an already-acked sequence number is a
  no-op (the ack-lost-after-WAL case), which is what makes client retries
  idempotent.
* Every applied delta carries the WAL event range it covers in its engine
  store log record (``log_meta={"events": [lo, hi]}``); together with the
  ``applied_event_seq`` watermark folded into each baseline compaction,
  recovery knows the exact *floor* — the highest WAL seq whose effect is
  already durable — and replays strictly the events above it.  Replay uses
  the same grid-aligned batching rule as live ingestion (batch k covers
  seqs ``((k-1)·B, k·B]``), so a fault-free reference run and a
  kill+recover run fold the same event ranges into the same deltas —
  bitwise-identical final states, no event lost, none applied twice.
* Quarantines are appended to a small ``dlq.log`` (same CRC format), so the
  dead-letter queue stays enumerable across recoveries: intrinsically
  invalid events are also re-derivable by rescanning the WAL, while
  apply-failure quarantines (a batch that kept timing out) are only known
  from the log.

Failure handling in the writer:

* ``WorkerPoolError`` / ``OSError`` are transient: exponential backoff with
  deterministic-seeded jitter, up to ``max_apply_retries`` retries.
* A watchdog timeout abandons the stuck apply (daemon thread), detaches the
  possibly-tainted engine from its store and rebuilds the engine from the
  durable store — bitwise-identical to the pre-batch state — before
  retrying.
* A range that still fails is bisected; halves retry independently until a
  single event is isolated and quarantined.  One poison event therefore
  never blocks the stream behind it.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.graph.delta import (
    GraphDelta,
    UpdateKind,
    VertexUpdate,
    update_intrinsic_problems,
)
from repro.parallel.executor import WorkerPoolError
from repro.service.coalescer import AdaptiveBatchSizer, coalesce_edge_run
from repro.service.events import Event, EventLog, update_from_payload, update_payload
from repro.service.faults import (
    NO_FAULTS,
    FaultInjector,
    ServiceDead,
    ServiceKilled,
    ServiceOverloaded,
)
from repro.service.snapshot import StateSnapshot
from repro.service.subscriptions import SubscriptionRegistry
from repro.storage.edge_store import CrcLog, StoreError


class ApplyTimeout(RuntimeError):
    """The watchdog expired while a batch was applying."""


class _ApplyFailed(RuntimeError):
    """Internal: retries exhausted; the caller bisects or quarantines."""


@dataclass
class ServiceStats:
    """Writer-side counters (all monotone; exposed through ``health()``)."""

    events_submitted: int = 0
    batches_taken: int = 0
    deltas_applied: int = 0
    noop_ranges: int = 0
    quarantined_intrinsic: int = 0
    quarantined_apply: int = 0
    transient_errors: int = 0
    apply_retries: int = 0
    watchdog_timeouts: int = 0
    watchdog_restores: int = 0
    bisect_splits: int = 0
    snapshots_published: int = 0


@dataclass(frozen=True)
class QuarantinedEvent:
    """One dead-lettered event: what it was and why it was refused."""

    seq: int
    update: object
    problems: Tuple[str, ...]
    #: "intrinsic" (validation) or "apply" (retries exhausted)
    kind: str
    #: rebuilt during recovery rather than quarantined live
    recovered: bool = False


class DeadLetterQueue:
    """Quarantined events, enumerable and durably logged.

    Live quarantines append one CRC'd record to ``dlq.log``; recovery
    rebuilds the in-memory list from the WAL rescan plus that log, so the
    queue survives crashes.

    A sequence number is quarantined at most once, in memory *and* in the
    log.  ``already_logged`` seeds the set of seqs the on-disk log already
    holds: recovery skips above-floor log records (those events get a fresh
    chance during replay), but when the replay re-quarantines one of them
    the log must not grow a second record for the same seq.
    """

    def __init__(
        self, log: Optional[CrcLog], already_logged: Iterable[int] = ()
    ) -> None:
        self._log = log
        self._entries: List[QuarantinedEvent] = []
        self._seqs = set()
        self._logged = set(already_logged)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> List[QuarantinedEvent]:
        with self._lock:
            return list(self._entries)

    def seqs(self) -> List[int]:
        with self._lock:
            return [entry.seq for entry in self._entries]

    def contains(self, seq: int) -> bool:
        with self._lock:
            return seq in self._seqs

    def record(self, entry: QuarantinedEvent) -> bool:
        """Record one quarantine; ``False`` if the seq was already dead.

        The duplicate path exists because an event can be disposed twice
        across incarnations: quarantined live, then replayed after a crash
        whose floor stayed below it and quarantined again (the verdict is
        deterministic).  The second disposal must be a no-op.
        """
        with self._lock:
            if entry.seq in self._seqs:
                return False
            self._entries.append(entry)
            self._seqs.add(entry.seq)
            append = (
                self._log is not None
                and not entry.recovered
                and entry.seq not in self._logged
            )
            self._logged.add(entry.seq)
        if append:
            self._log.append_payload(
                {
                    "seq": entry.seq,
                    "u": update_payload(entry.update),
                    "problems": list(entry.problems),
                    "kind": entry.kind,
                }
            )
        return True

    def close(self) -> None:
        if self._log is not None:
            self._log.close()


class UpdateService:
    """Fault-tolerant streaming update/query layer around one engine.

    ``engine`` must already be initialized.  ``directory`` receives the
    event WAL (``events.log``), the dead-letter log (``dlq.log``) and the
    engine's durable store (``engine/``).  Use :meth:`recover` to resume a
    service from a directory a previous (possibly killed) instance left
    behind.
    """

    EVENTS_LOG = "events.log"
    DLQ_LOG = "dlq.log"
    ENGINE_DIR = "engine"

    def __init__(
        self,
        engine,
        directory: str,
        *,
        batch_size: int = 32,
        adaptive: bool = False,
        max_queue: int = 256,
        watchdog_timeout: Optional[float] = None,
        max_apply_retries: int = 2,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.25,
        jitter_seed: int = 0,
        compact_every: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
        _recovery: Optional[dict] = None,
    ) -> None:
        if engine.graph is None:
            raise ValueError("engine must be initialized before serving")
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.engine = engine
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.faults = faults if faults is not None else NO_FAULTS
        self.stats = ServiceStats()
        self._batch_size = batch_size
        self._sizer = AdaptiveBatchSizer() if adaptive else None
        self._max_queue = max_queue
        self._watchdog_timeout = watchdog_timeout
        self._max_apply_retries = max_apply_retries
        self._backoff_base = backoff_base
        self._backoff_cap = backoff_cap
        self._compact_every = compact_every
        self._rng = random.Random(jitter_seed)

        self._cond = threading.Condition()
        self._queue: deque = deque()
        self._dead = False
        self._dead_reason: Optional[str] = None
        self._stopping = False
        self._drainers = 0
        #: readers registered for push deltas; fanned out from ``_publish``
        self.subscriptions = SubscriptionRegistry(
            snapshot_source=lambda: self._snapshot
        )

        wal_path = os.path.join(directory, self.EVENTS_LOG)
        engine_dir = os.path.join(directory, self.ENGINE_DIR)
        if _recovery is None:
            if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
                raise StoreError(
                    f"{directory} holds an existing event WAL; use "
                    "UpdateService.recover() to resume it"
                )
            self.wal = EventLog(wal_path)
            # attach the durable store (None under REPRO_STORE=0: the
            # service still runs, but kills are only recoverable back to
            # the WAL replay from the initial graph)
            self._store = engine.save(engine_dir, compact_every=compact_every)
            self._last_walled = 0
            self._disposed = 0
            self._applied = 0
            self._replay_target = 0
            pending: List[Event] = []
            self.restore_report = None
        else:
            self.wal = _recovery["wal"]
            self._store = _recovery["store"]
            self._last_walled = _recovery["last_walled"]
            self._disposed = _recovery["floor"]
            self._applied = _recovery["floor"]
            # not "ready" until the WAL suffix above the floor is replayed:
            # queries before that would serve acknowledged-but-stale state
            self._replay_target = _recovery["last_walled"]
            pending = _recovery["pending"]
            self.restore_report = _recovery["report"]

        self.dlq = DeadLetterQueue(
            CrcLog(os.path.join(directory, self.DLQ_LOG)),
            already_logged=(_recovery or {}).get("dlq_logged", ()),
        )
        if _recovery is not None:
            for entry in _recovery["dlq_entries"]:
                self.dlq.record(entry)

        self._snapshot = self._capture_snapshot(self._applied)
        self._queue.extend(pending)
        self._writer = threading.Thread(
            target=self._writer_loop, name="service-writer", daemon=True
        )
        self._writer.start()

    # ------------------------------------------------------------------
    # ingest path
    # ------------------------------------------------------------------
    def submit(
        self, update: object, seq: Optional[int] = None, timeout: float = 10.0
    ) -> int:
        """WAL one unit update and enqueue it; returns its sequence number.

        The returned seq is the acknowledgement: the event is fsync'd and
        will survive any crash.  Clients that never saw the ack resubmit
        with the same explicit ``seq``; an already-acked seq returns
        immediately without duplicating the event (exactly-once).  Raises
        :class:`ServiceOverloaded` when the bounded queue stays full past
        ``timeout`` and :class:`ServiceDead` after a kill or close.
        """
        seq, _duplicate = self.submit_event(update, seq=seq, timeout=timeout)
        return seq

    def submit_event(
        self, update: object, seq: Optional[int] = None, timeout: float = 10.0
    ) -> Tuple[int, bool]:
        """:meth:`submit` plus an explicit duplicate flag.

        Returns ``(seq, duplicate)`` where ``duplicate`` is True when the
        sequence number was already WAL'd — durable whether its batch later
        applied cleanly *or* was quarantined to the dead-letter queue;
        either way the resubmit dup-acks without re-enqueueing (the network
        front end surfaces the flag so retrying clients can tell an ack
        apart from a fresh write).  ``timeout=0`` never blocks: it either
        acquires queue room immediately or raises
        :class:`ServiceOverloaded`.
        """
        with self._cond:
            self._check_alive()
            if seq is None:
                seq = self._last_walled + 1
            elif seq <= self._last_walled:
                return seq, True  # duplicate of an already-durable event
            elif seq != self._last_walled + 1:
                raise ValueError(
                    f"submit seq {seq} leaves a gap (next is "
                    f"{self._last_walled + 1})"
                )
            deadline = time.monotonic() + max(0.0, timeout)
            while len(self._queue) >= self._max_queue:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise ServiceOverloaded(
                        f"ingest queue full ({self._max_queue}) for {timeout}s"
                    )
                self._cond.wait(remaining)
                self._check_alive()
            self._fire_or_die("pre_wal_append", seq=seq)
            self.wal.append(Event(seq, update))
            self._last_walled = seq
            self._fire_or_die("post_wal_append", seq=seq)
            self._queue.append(Event(seq, update))
            self.stats.events_submitted += 1
            self._cond.notify_all()
            return seq, False

    def _check_alive(self) -> None:
        if self._dead:
            raise ServiceDead(self._dead_reason or "service is closed")
        if self._stopping:
            # close() is joining the writer: a submit that slipped in now
            # could WAL an event nobody will ever apply (acked-but-stale
            # until the next recover), and a drain would wait on a writer
            # that is about to exit — refuse both instead of hanging
            raise ServiceDead("service is closing")

    def _fire_or_die(self, stage: str, **context) -> None:
        try:
            self.faults.fire(stage, **context)
        except ServiceKilled:
            self._die(f"killed at {stage}")
            raise

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def snapshot(self) -> StateSnapshot:
        """The current published version (immutable; keep it as long as you
        like — later publishes never mutate it)."""
        return self._snapshot

    def value(self, vertex: int, default: Optional[float] = None):
        return self._snapshot.value(vertex, default)

    def top_k(self, k: int, largest: bool = True):
        return self._snapshot.top_k(k, largest=largest)

    def health(self) -> dict:
        """Liveness/progress counters for operators and the chaos harness."""
        with self._cond:
            snapshot = self._snapshot
            staleness_events = max(0, self._last_walled - snapshot.seq)
            published_at = snapshot.published_at
            # a snapshot the stream has fully caught up to is not stale, no
            # matter how long ago it was published — in particular the
            # initial pre-first-batch snapshot (published_at set at
            # construction) must not read as ever-growing staleness; and a
            # corrupt/non-finite timestamp must clamp, not poison the report
            if staleness_events <= 0 or not math.isfinite(published_at):
                staleness_seconds = 0.0
            else:
                staleness_seconds = max(0.0, time.monotonic() - published_at)
            return {
                "ready": self.ready(),
                "dead": self._dead,
                "dead_reason": self._dead_reason,
                "published": self.stats.snapshots_published > 0,
                "replaying": self._disposed < self._replay_target,
                "queue_depth": len(self._queue),
                "last_walled_seq": self._last_walled,
                "last_disposed_seq": self._disposed,
                "last_applied_seq": self._applied,
                "published_seq": snapshot.seq,
                "quarantined": len(self.dlq),
                "staleness_events": staleness_events,
                "staleness_seconds": staleness_seconds,
                "subscribers": len(self.subscriptions),
                "batch_size": self._sizer.size if self._sizer else self._batch_size,
                "stats": asdict(self.stats),
            }

    def ready(self) -> bool:
        """Whether the service can take submits and answer *fresh* queries.

        During recovery the WAL suffix above the durable floor is still
        replaying; until it has been disposed the snapshots on offer are
        acknowledged-but-stale, so readiness (and e.g. a load balancer
        probing ``GET /ready``) reports False.
        """
        return (
            not self._dead
            and self._writer.is_alive()
            and self._disposed >= self._replay_target
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 60.0) -> None:
        """Block until every acknowledged event is disposed (applied,
        folded to a no-op, or quarantined)."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._cond:
            self._check_alive()
            # a counter, not a flag: concurrent drains must keep the writer
            # in flush mode until the *last* one finishes (a flag would be
            # cleared by whichever drain returns first)
            self._drainers += 1
            self._cond.notify_all()
            try:
                while self._disposed < self._last_walled:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"drain timed out: disposed {self._disposed} < "
                            f"walled {self._last_walled}"
                        )
                    self._cond.wait(min(remaining, 0.1))
                    self._check_alive()
            finally:
                self._drainers -= 1

    def close(self) -> None:
        """Stop the writer (after it drains the queue) and release files."""
        with self._cond:
            if self._dead:
                return
            self._stopping = True
            self._cond.notify_all()
        self._writer.join(timeout=60.0)
        with self._cond:
            self._dead = True
            self._dead_reason = "closed"
            self._cond.notify_all()
        self._close_files()

    def _die(self, reason: str) -> None:
        """Simulated process death: mark dead, drop file handles, wake
        every waiter.  In-memory state (queue, unpublished applies) is
        lost exactly as a real kill would lose it; ``recover`` rebuilds
        from the directory."""
        with self._cond:
            if self._dead:
                return
            self._dead = True
            self._dead_reason = reason
            self._cond.notify_all()
        self._close_files()

    def _close_files(self) -> None:
        try:
            self.subscriptions.close()  # wake every push reader first
        except Exception:
            pass
        for closer in (self.wal.close, self.dlq.close):
            try:
                closer()
            except Exception:
                pass
        if self._store is not None:
            try:
                self._store.close()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # writer
    # ------------------------------------------------------------------
    def _writer_loop(self) -> None:
        try:
            while True:
                batch = self._take_batch()
                if batch is None:
                    return
                if batch:
                    self._dispose_batch(batch)
        except ServiceKilled:
            pass  # _fire_or_die already marked the service dead
        except Exception as error:  # pragma: no cover - defensive
            self._die(f"writer crashed: {type(error).__name__}: {error}")

    def _current_batch_size(self) -> int:
        return self._sizer.size if self._sizer is not None else self._batch_size

    def _take_batch(self) -> Optional[List[Event]]:
        """Wait for one grid-aligned batch (or a drain/stop flush).

        Batch boundaries are *absolute*: the batch containing seq ``s``
        covers ``((ceil(s/B)-1)·B, ceil(s/B)·B]``.  Recovery re-derives the
        very same boundaries from the replayed seqs, which is what keeps a
        recovered run's delta sequence identical to the reference run's.
        """
        with self._cond:
            while True:
                if self._dead:
                    return None
                if self._queue:
                    size = self._current_batch_size()
                    first = self._queue[0].seq
                    grid_hi = ((first - 1) // size + 1) * size
                    flush = self._drainers > 0 or self._stopping
                    if flush or self._queue[-1].seq >= grid_hi:
                        batch: List[Event] = []
                        while self._queue and self._queue[0].seq <= grid_hi:
                            batch.append(self._queue.popleft())
                        self._cond.notify_all()
                        return batch
                elif self._stopping:
                    return None
                self._cond.wait(0.05)

    def _dispose_batch(self, events: List[Event]) -> None:
        self.stats.batches_taken += 1
        started = time.perf_counter()
        run: List[Event] = []
        for event in events:
            if isinstance(event.update, VertexUpdate):
                if run:
                    self._dispose_range(run)
                    run = []
                self._dispose_range([event])
            else:
                run.append(event)
        if run:
            self._dispose_range(run)
        if self._sizer is not None:
            with self._cond:
                backlog = len(self._queue)
            self._sizer.record(
                len(events), time.perf_counter() - started, backlog
            )

    def _dispose_range(self, events: List[Event]) -> None:
        """Coalesce, validate and apply one contiguous event range.

        Intrinsically invalid events are isolated by bisection and
        quarantined (deterministically — the verdict depends only on the
        event, so a reference run and a recovery replay quarantine the same
        seqs).  Apply failures retry, then bisect, then quarantine the
        isolated event.
        """
        lo, hi = events[0].seq, events[-1].seq
        poisoned = [
            (event, update_intrinsic_problems(event.update)) for event in events
        ]
        if any(problems for _event, problems in poisoned):
            if len(events) == 1:
                event, problems = poisoned[0]
                self._quarantine(event, problems, kind="intrinsic")
                self._advance(hi)
                return
            self.stats.bisect_splits += 1
            mid = len(events) // 2
            self._dispose_range(events[:mid])
            self._dispose_range(events[mid:])
            return

        delta = self._fold(events)
        if delta.is_empty():
            self.stats.noop_ranges += 1
            self._advance(hi)
            return
        try:
            self._apply_with_retries(delta, lo, hi, len(events))
        except _ApplyFailed as failure:
            if len(events) == 1:
                self._quarantine(
                    events[0], [f"apply failed: {failure}"], kind="apply"
                )
                self._advance(hi)
                return
            self.stats.bisect_splits += 1
            mid = len(events) // 2
            self._dispose_range(events[:mid])
            self._dispose_range(events[mid:])

    def _fold(self, events: List[Event]) -> GraphDelta:
        """One range's canonical delta against the engine's current graph."""
        target = self.engine._storage_target()
        first = events[0].update
        if isinstance(first, VertexUpdate):
            assert len(events) == 1  # segmentation makes vertex events singletons
            if first.kind is UpdateKind.DELETE_VERTEX and not target.graph.has_vertex(
                first.vertex
            ):
                return GraphDelta()  # no-op, exactly like GraphDelta.apply
            return GraphDelta(vertex_updates=[first])
        return coalesce_edge_run(
            target.graph, [event.update for event in events]
        )

    def _apply_with_retries(
        self, delta: GraphDelta, lo: int, hi: int, num_events: int
    ) -> None:
        attempts = self._max_apply_retries + 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            try:
                self._guarded_apply(delta, lo, hi, attempt)
                return
            except ServiceKilled:
                raise
            except ApplyTimeout as error:
                self.stats.watchdog_timeouts += 1
                last_error = error
                self._rebuild_engine_after_timeout()
            except (WorkerPoolError, OSError) as error:
                self.stats.transient_errors += 1
                last_error = error
            if attempt < attempts - 1:
                self.stats.apply_retries += 1
                delay = min(
                    self._backoff_cap, self._backoff_base * (2.0 ** attempt)
                )
                time.sleep(delay * (1.0 + self._rng.random()))
        raise _ApplyFailed(
            f"range [{lo}, {hi}] ({num_events} events) failed after "
            f"{attempts} attempts: {last_error}"
        )

    def _guarded_apply(
        self, delta: GraphDelta, lo: int, hi: int, attempt: int
    ) -> None:
        self._fire_or_die("pre_apply", lo=lo, hi=hi, attempt=attempt)
        # bind the engine *now*: after a watchdog timeout swaps in a restored
        # engine, the abandoned apply thread must keep operating on the old
        # (store-detached) object, never on the replacement
        engine = self.engine
        if self._watchdog_timeout is None:
            self._apply_once(engine, delta, lo, hi, attempt)
        else:
            done = threading.Event()
            box: dict = {}

            def runner() -> None:
                try:
                    self._apply_once(engine, delta, lo, hi, attempt)
                except BaseException as error:  # noqa: BLE001 - re-raised below
                    box["error"] = error
                finally:
                    done.set()

            worker = threading.Thread(
                target=runner, name="service-apply", daemon=True
            )
            worker.start()
            if not done.wait(self._watchdog_timeout):
                raise ApplyTimeout(
                    f"range [{lo}, {hi}] attempt {attempt} exceeded "
                    f"{self._watchdog_timeout}s"
                )
            if "error" in box:
                raise box["error"]
        self.stats.deltas_applied += 1
        self._advance(hi, applied=True)
        self._publish(hi)

    def _apply_once(
        self, engine, delta: GraphDelta, lo: int, hi: int, attempt: int
    ) -> None:
        self._fire_or_die("mid_apply", lo=lo, hi=hi, attempt=attempt)
        store = engine._storage_target()._store
        if store is not None:
            # stamped before the apply so a compaction triggered *by* this
            # apply folds the correct watermark into the baseline
            store.app_meta["applied_event_seq"] = str(hi)
        engine.apply_delta(delta, log_meta={"events": [lo, hi]})

    def _engine_store(self):
        return self.engine._storage_target()._store

    def _rebuild_engine_after_timeout(self) -> None:
        """Discard the (possibly mid-mutation) engine and restore it from
        the durable store — bitwise-identical to the pre-batch state.

        The stuck apply keeps running in its abandoned daemon thread; the
        store is detached *first*, so even if it eventually completes it
        cannot append to the log of the engine we are about to trust.
        Without a store (``REPRO_STORE=0``) the engine is retried as-is.
        """
        store = self._engine_store()
        if store is None:
            return
        from repro.storage.store import restore_engine

        target = self.engine._storage_target()
        target._store = None
        store.close()
        engine, _report = restore_engine(
            os.path.join(self.directory, self.ENGINE_DIR),
            compact_every=self._compact_every,
        )
        fresh_store = engine._storage_target()._store
        fresh_store.app_meta["applied_event_seq"] = str(self._applied)
        self.engine = engine
        self._store = fresh_store
        self.stats.watchdog_restores += 1

    def _quarantine(self, event: Event, problems, kind: str) -> None:
        recorded = self.dlq.record(
            QuarantinedEvent(
                seq=event.seq,
                update=event.update,
                problems=tuple(problems),
                kind=kind,
            )
        )
        if not recorded:
            return  # replay re-judged an already-dead seq; nothing new died
        if kind == "intrinsic":
            self.stats.quarantined_intrinsic += 1
        else:
            self.stats.quarantined_apply += 1

    def _advance(self, seq: int, applied: bool = False) -> None:
        with self._cond:
            self._disposed = max(self._disposed, seq)
            if applied:
                self._applied = max(self._applied, seq)
            self._cond.notify_all()

    def _capture_snapshot(self, seq: int) -> StateSnapshot:
        target = self.engine._storage_target()
        csr = target.csr_cache.peek_csr("out", target.spec, target.graph)
        return StateSnapshot.capture(
            seq=seq,
            graph_version=target.graph.version,
            states=target.states,
            csr=csr,
            quarantined=len(self.dlq),
        )

    def _publish(self, seq: int) -> None:
        snapshot = self._capture_snapshot(seq)
        self._fire_or_die("pre_publish", seq=seq)
        previous = self._snapshot
        self._snapshot = snapshot  # one reference store: atomic under the GIL
        self.stats.snapshots_published += 1
        # fan the transition out to registered watches *after* the swap, so
        # a subscriber polling on the delta already sees the new snapshot
        self.subscriptions.publish(previous, snapshot)
        self._fire_or_die("post_publish", seq=seq)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        directory: str,
        *,
        batch_size: int = 32,
        adaptive: bool = False,
        max_queue: int = 256,
        watchdog_timeout: Optional[float] = None,
        max_apply_retries: int = 2,
        backoff_base: float = 0.005,
        backoff_cap: float = 0.25,
        jitter_seed: int = 0,
        compact_every: Optional[int] = None,
        faults: Optional[FaultInjector] = None,
    ) -> "UpdateService":
        """Resume a service from the directory a previous instance left.

        Restores the engine from its durable store (warm, bitwise), computes
        the applied floor from the store's log annotations and baseline
        watermark, rebuilds the dead-letter queue (WAL rescan for intrinsic
        poisons at or below the floor, plus the durable ``dlq.log``), and
        re-enqueues every WAL event above the floor for the writer to replay
        through the normal pipeline.
        """
        from repro.storage.store import restore_engine

        engine_dir = os.path.join(directory, cls.ENGINE_DIR)
        engine, report = restore_engine(engine_dir, compact_every=compact_every)
        store = engine._storage_target()._store
        floor = int(store.app_meta.get("applied_event_seq", "0"))
        records, _discarded = store.log.read()
        for record in records:
            if record.meta and "events" in record.meta:
                floor = max(floor, int(record.meta["events"][1]))

        wal = EventLog(os.path.join(directory, cls.EVENTS_LOG))
        events, _torn = wal.read()
        last_walled = events[-1].seq if events else 0

        # rebuild the dead-letter queue: durable log first, then the rescan
        # of already-disposed events for intrinsic poisons (covers live
        # quarantines whose dlq.log append itself was lost to the crash)
        dlq_entries: List[QuarantinedEvent] = []
        seen_seqs = set()
        logged_seqs = set()
        dlq_log = CrcLog(os.path.join(directory, cls.DLQ_LOG))
        try:
            payloads, _bad = dlq_log.read_payloads()
        finally:
            dlq_log.close()
        for payload in payloads:
            try:
                seq = int(payload["seq"])
                logged_seqs.add(seq)
                if seq > floor:
                    # the event gets a fresh chance during replay; a repeat
                    # failure re-quarantines it there
                    continue
                entry = QuarantinedEvent(
                    seq=seq,
                    update=update_from_payload(payload["u"]),
                    problems=tuple(payload.get("problems", ())),
                    kind=str(payload.get("kind", "intrinsic")),
                    recovered=True,
                )
            except (KeyError, TypeError, ValueError, IndexError):
                continue
            if entry.seq not in seen_seqs:
                seen_seqs.add(entry.seq)
                dlq_entries.append(entry)
        for event in events:
            if event.seq > floor or event.seq in seen_seqs:
                continue
            problems = update_intrinsic_problems(event.update)
            if problems:
                seen_seqs.add(event.seq)
                dlq_entries.append(
                    QuarantinedEvent(
                        seq=event.seq,
                        update=event.update,
                        problems=tuple(problems),
                        kind="intrinsic",
                        recovered=True,
                    )
                )
        dlq_entries.sort(key=lambda entry: entry.seq)

        pending = [event for event in events if event.seq > floor]
        return cls(
            engine,
            directory,
            batch_size=batch_size,
            adaptive=adaptive,
            max_queue=max_queue,
            watchdog_timeout=watchdog_timeout,
            max_apply_retries=max_apply_retries,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            jitter_seed=jitter_seed,
            compact_every=compact_every,
            faults=faults,
            _recovery={
                "wal": wal,
                "store": store,
                "last_walled": last_walled,
                "floor": floor,
                "pending": pending,
                "dlq_entries": dlq_entries,
                "dlq_logged": logged_seqs,
                "report": report,
            },
        )
