"""Subscription push: deltas of published snapshots to registered readers.

The service's read path so far is pull-only: readers grab the current
:class:`~repro.service.snapshot.StateSnapshot` and query it.  Subscriptions
invert that: a reader registers a *watch* — the top-k ranking for some
``(k, largest)`` or an explicit vertex set — and the writer pushes a delta
after every publish whose changes intersect the watch.  The design
constraints, in order:

* **the writer never blocks on a reader.**  ``publish`` runs on the
  service's writer thread between two batches; everything it does is
  bounded: one snapshot diff shared by every subscriber, one bounded-queue
  append per affected subscriber.  A consumer that stops draining its queue
  is *evicted* (queue cleared, subscription marked dead) rather than ever
  making the writer wait — the reader finds out on its next poll and
  resubscribes for a fresh baseline;
* **O(changed), not O(V), per publish.**  :func:`snapshot_diff` compares the
  two snapshots' cached ``(ids, values)`` arrays: the common no-vertex-churn
  case is a single vectorized compare over the aligned value arrays (a
  C-speed scan producing only the changed entries as Python objects);
  vertex add/remove batches fall back to a sort-based numpy alignment.
  Top-k watches additionally pre-screen with the changed entries against the
  current boundary value, so the O(V) heap rebuild only runs when the
  ranking could actually have moved;
* **at-least-once, idempotent-by-value.**  Registration takes the registry
  lock that ``publish`` also holds, and reads its baseline snapshot inside
  it, so a subscriber can never *miss* a publish between its baseline and
  its first delta — at worst it receives one delta it already knows, and
  every delta carries absolute values (full top-k list, absolute vertex
  states), never increments, so replaying duplicates is harmless.

NaN states compare *bitwise-style*: a vertex whose value is NaN in both
snapshots did not change (IEEE ``!=`` would report every NaN pair as a
change on every publish).
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.snapshot import StateSnapshot

EVICTION_HINT = (
    "subscriber evicted: pending deltas exceeded max_pending before being "
    "polled; resubscribe for a fresh baseline"
)


class SubscriptionEvicted(RuntimeError):
    """The subscriber fell too far behind and its queue was dropped."""


def _values_differ(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """Elementwise "really changed" mask: NaN==NaN, otherwise IEEE ``==``."""
    with np.errstate(invalid="ignore"):
        same = (old == new) | (np.isnan(old) & np.isnan(new))
    return ~same


def snapshot_diff(
    old: Optional[StateSnapshot], new: StateSnapshot
) -> Tuple[List[Tuple[int, float]], List[int]]:
    """``(changed, removed)`` between two published snapshots.

    ``changed`` holds ``(vertex, value)`` for every vertex whose value in
    ``new`` differs from ``old`` (including vertices absent from ``old``),
    in ``new``'s iteration order; ``removed`` holds vertices present in
    ``old`` but absent from ``new``.  ``old=None`` reports everything as
    changed (the baseline case).  Equality treats a NaN pair as unchanged
    and otherwise follows IEEE ``==`` (so ``-0.0`` vs ``0.0`` is not a
    change), matching the brute-force dict diff the property suite pins
    this function against.
    """
    if old is None:
        return [(v, val) for v, val in new.states.items()], []
    old_ids, old_values = old.arrays()
    new_ids, new_values = new.arrays()
    if old_ids.shape == new_ids.shape and np.array_equal(old_ids, new_ids):
        # the overwhelmingly common case: no vertex churn, aligned arrays
        idx = np.flatnonzero(_values_differ(old_values, new_values))
        return [(int(new_ids[i]), float(new_values[i])) for i in idx], []
    if old_ids.size == 0:
        return [(v, val) for v, val in new.states.items()], []
    if new_ids.size == 0:
        return [], [int(v) for v in old_ids]
    # vertex churn: align by sorted id
    old_order = np.argsort(old_ids, kind="stable")
    sorted_old = old_ids[old_order]
    pos = np.searchsorted(sorted_old, new_ids)
    pos_clamped = np.minimum(pos, sorted_old.size - 1)
    in_old = sorted_old[pos_clamped] == new_ids
    matched_values = old_values[old_order[pos_clamped]]
    differ = _values_differ(matched_values, new_values) | ~in_old
    changed = [
        (int(new_ids[i]), float(new_values[i])) for i in np.flatnonzero(differ)
    ]
    sorted_new = np.sort(new_ids)
    rev = np.searchsorted(sorted_new, old_ids)
    rev_clamped = np.minimum(rev, sorted_new.size - 1)
    gone = sorted_new[rev_clamped] != old_ids
    removed = [int(v) for v in old_ids[np.flatnonzero(gone)]]
    return changed, removed


class Subscription:
    """One registered watch and its bounded delta queue.

    Created through :class:`SubscriptionRegistry`; consumed with
    :meth:`take` (blocking, for threads) or :meth:`take_nowait` +
    :meth:`register_waker` (for asyncio front ends).  All delta payloads are
    plain JSON-ready dicts.
    """

    def __init__(
        self,
        sub_id: str,
        kind: str,
        *,
        k: Optional[int] = None,
        largest: bool = True,
        vertices: Sequence[int] = (),
        max_pending: int = 64,
        baseline=None,
        baseline_seq: int = 0,
    ) -> None:
        if kind not in ("topk", "vertices"):
            raise ValueError(f"unknown subscription kind {kind!r}")
        self.id = sub_id
        self.kind = kind
        self.k = k
        self.largest = largest
        self.vertices = frozenset(int(v) for v in vertices)
        self.max_pending = max_pending
        #: the state the subscriber was handed at registration: a top-k list
        #: or ``[vertex, value]`` pairs for the watched vertices
        self.baseline = baseline
        self.baseline_seq = baseline_seq
        self.evicted = False
        self.closed = False
        self.pushed = 0
        self.delivered = 0
        self._last_topk: Optional[List[Tuple[int, float]]] = (
            list(baseline) if kind == "topk" and baseline is not None else None
        )
        self._pending: deque = deque()
        self._cond = threading.Condition()
        self._wakers: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # producer side (writer thread, via the registry)
    # ------------------------------------------------------------------
    def _offer(self, snapshot: StateSnapshot, changed, removed) -> None:
        if self.evicted or self.closed:
            return
        if self.kind == "vertices":
            hits = [[v, val] for v, val in changed if v in self.vertices]
            gone = [v for v in removed if v in self.vertices]
            if not hits and not gone:
                return
            self._push(
                {
                    "kind": "vertices",
                    "seq": snapshot.seq,
                    "checksum": snapshot.checksum,
                    "changed": hits,
                    "removed": gone,
                }
            )
            return
        if not changed and not removed:
            return
        if not self._topk_candidate(changed, removed):
            return
        top = snapshot.top_k(self.k, largest=self.largest)
        if top == self._last_topk:
            return
        self._last_topk = top
        self._push(
            {
                "kind": "topk",
                "seq": snapshot.seq,
                "checksum": snapshot.checksum,
                "k": self.k,
                "largest": self.largest,
                "topk": [[v, val] for v, val in top],
            }
        )

    def _topk_candidate(self, changed, removed) -> bool:
        """Could this publish's changes move the top-k at all?

        The cheap pre-screen that keeps top-k watches O(changed): the O(V)
        heap rebuild only runs when a ranked vertex changed/vanished or an
        unranked value reached the current boundary.  Over-triggering is
        safe (the rebuild then proves the ranking unchanged); missing a real
        move is not, so every comparison errs toward "candidate" — e.g. a
        NaN boundary refuses to rule anything out.
        """
        last = self._last_topk
        if last is None or len(last) < (self.k or 0):
            return bool(changed) or bool(removed)
        members = {v for v, _ in last}
        if any(v in members for v in removed):
            return True
        boundary = last[-1][1]
        for v, val in changed:
            if v in members:
                return True
            if self.largest:
                if not (val < boundary):
                    return True
            elif not (val > boundary):
                return True
        return False

    def _push(self, delta: dict) -> None:
        with self._cond:
            if self.evicted or self.closed:
                return
            if len(self._pending) >= self.max_pending:
                # slow consumer: drop everything and mark dead rather than
                # ever stalling the publishing writer
                self.evicted = True
                self._pending.clear()
            else:
                self._pending.append(delta)
                self.pushed += 1
            self._wake_locked()

    def _wake_locked(self) -> None:
        self._cond.notify_all()
        wakers, self._wakers = self._wakers, []
        for waker in wakers:
            try:
                waker()
            except Exception:
                pass  # a waker on a dead event loop must not hurt the writer

    def _close(self) -> None:
        with self._cond:
            self.closed = True
            self._wake_locked()

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def register_waker(self, waker: Callable[[], None]) -> None:
        """Call ``waker`` (from any thread) once something is consumable.

        Fires immediately if deltas are already pending or the subscription
        is evicted/closed; otherwise fires on the next push.  Asyncio front
        ends pass ``loop.call_soon_threadsafe(event.set)`` wrappers.
        """
        with self._cond:
            if self._pending or self.evicted or self.closed:
                fire = True
            else:
                self._wakers.append(waker)
                fire = False
        if fire:
            waker()

    def discard_waker(self, waker: Callable[[], None]) -> None:
        with self._cond:
            try:
                self._wakers.remove(waker)
            except ValueError:
                pass

    def take_nowait(self) -> List[dict]:
        """Drain pending deltas; ``[]`` when idle.

        Raises :class:`SubscriptionEvicted` once the queue was dropped for
        slowness (after any deltas pushed before the eviction are gone —
        eviction clears them, so this is immediate in practice).
        """
        with self._cond:
            if self._pending:
                out = list(self._pending)
                self._pending.clear()
                self.delivered += len(out)
                return out
            if self.evicted:
                raise SubscriptionEvicted(EVICTION_HINT)
            return []

    def take(self, timeout: Optional[float] = None) -> List[dict]:
        """Blocking :meth:`take_nowait`: wait up to ``timeout`` for deltas.

        Returns ``[]`` on timeout or when the subscription was closed
        (service shutdown / unsubscribe); raises :class:`SubscriptionEvicted`
        after a slow-consumer drop.
        """
        deadline = None if timeout is None else time.monotonic() + max(0.0, timeout)
        with self._cond:
            while True:
                if self._pending:
                    out = list(self._pending)
                    self._pending.clear()
                    self.delivered += len(out)
                    return out
                if self.evicted:
                    raise SubscriptionEvicted(EVICTION_HINT)
                if self.closed:
                    return []
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                    self._cond.wait(remaining)

    def pending(self) -> int:
        with self._cond:
            return len(self._pending)


class SubscriptionRegistry:
    """All live subscriptions of one service, fanned out at publish time.

    The registry lock orders registration against publishes: ``subscribe_*``
    reads its baseline snapshot *inside* the lock, so a new subscriber
    either sees a publish's snapshot as its baseline or receives that
    publish's delta — never neither (no lost updates at the subscribe
    boundary; duplicates are possible and harmless, deltas being absolute).
    """

    def __init__(
        self,
        snapshot_source: Optional[Callable[[], StateSnapshot]] = None,
        max_pending: int = 64,
    ) -> None:
        self._lock = threading.Lock()
        self._subs: Dict[str, Subscription] = {}
        self._snapshot_source = snapshot_source
        self._default_max_pending = max_pending
        self._counter = itertools.count(1)
        self.closed = False
        #: publishes that fanned out to at least one live subscriber
        self.publishes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._subs)

    def _new_id(self) -> str:
        # counter for readability, random suffix so a stale client polling
        # an id from a previous incarnation can never alias a fresh watch
        return f"s{next(self._counter)}-{uuid.uuid4().hex[:8]}"

    def _baseline_snapshot(self, snapshot) -> Optional[StateSnapshot]:
        if snapshot is not None:
            return snapshot
        if self._snapshot_source is not None:
            return self._snapshot_source()
        return None

    def subscribe_topk(
        self,
        k: int,
        *,
        largest: bool = True,
        max_pending: Optional[int] = None,
        snapshot: Optional[StateSnapshot] = None,
    ) -> Subscription:
        if k < 1:
            raise ValueError(f"top-k watch needs k >= 1, got {k}")
        with self._lock:
            self._check_open()
            snap = self._baseline_snapshot(snapshot)
            baseline = snap.top_k(k, largest=largest) if snap is not None else []
            sub = Subscription(
                self._new_id(),
                "topk",
                k=k,
                largest=largest,
                max_pending=max_pending or self._default_max_pending,
                baseline=[[v, val] for v, val in baseline],
                baseline_seq=snap.seq if snap is not None else 0,
            )
            sub._last_topk = list(baseline)
            self._subs[sub.id] = sub
            return sub

    def subscribe_vertices(
        self,
        vertices: Sequence[int],
        *,
        max_pending: Optional[int] = None,
        snapshot: Optional[StateSnapshot] = None,
    ) -> Subscription:
        watched = sorted({int(v) for v in vertices})
        if not watched:
            raise ValueError("vertex watch needs at least one vertex")
        with self._lock:
            self._check_open()
            snap = self._baseline_snapshot(snapshot)
            baseline = (
                [[v, snap.states[v]] for v in watched if v in snap.states]
                if snap is not None
                else []
            )
            sub = Subscription(
                self._new_id(),
                "vertices",
                vertices=watched,
                max_pending=max_pending or self._default_max_pending,
                baseline=baseline,
                baseline_seq=snap.seq if snap is not None else 0,
            )
            self._subs[sub.id] = sub
            return sub

    def _check_open(self) -> None:
        if self.closed:
            raise RuntimeError("subscription registry is closed")

    def get(self, sub_id: str) -> Optional[Subscription]:
        with self._lock:
            return self._subs.get(sub_id)

    def unsubscribe(self, sub_id: str) -> bool:
        with self._lock:
            sub = self._subs.pop(sub_id, None)
        if sub is None:
            return False
        sub._close()
        return True

    def evictions(self) -> int:
        with self._lock:
            return sum(1 for sub in self._subs.values() if sub.evicted)

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish(self, old: Optional[StateSnapshot], new: StateSnapshot) -> None:
        """Fan one published snapshot transition out to every live watch.

        Called by the service's writer thread after the snapshot swap.  The
        diff is computed once and shared; with no subscribers the cost is
        one uncontended lock acquire.
        """
        with self._lock:
            if self.closed:
                return
            subs = [
                sub
                for sub in self._subs.values()
                if not sub.evicted and not sub.closed
            ]
            if not subs:
                return
            changed, removed = snapshot_diff(old, new)
            for sub in subs:
                sub._offer(new, changed, removed)
            self.publishes += 1

    def close(self) -> None:
        """Service shutdown: wake and close every subscriber."""
        with self._lock:
            self.closed = True
            subs = list(self._subs.values())
        for sub in subs:
            sub._close()
