"""Asyncio HTTP front end for :class:`~repro.service.service.UpdateService`.

The service's submit/snapshot API is already thread-safe; this module puts
it on a loopback (or any) TCP port with nothing but the stdlib: an
``asyncio.start_server`` accept loop speaking hand-rolled HTTP/1.1 —
request-line + headers + Content-Length bodies, keep-alive, chunked
transfer encoding for push streams.  No new dependencies, no
``http.server``.

Contract highlights (the README carries the full endpoint table):

* **idempotency rides the WAL.**  ``POST /submit`` accepts a client-chosen
  ``seq``; a seq at or below the WAL high-water mark dup-acks (HTTP 200
  with the seq listed under ``duplicates``) instead of re-enqueueing —
  exactly the :meth:`UpdateService.submit_event` semantics, so an HTTP 200
  means *fsync'd, survives any crash*, and retrying a lost response is
  always safe.  Poison events are still acked (durability first), with the
  quarantine diagnosis carried in the response so the client knows the
  event will land in the DLQ rather than the graph.
* **backpressure maps to 429.**  A full ingest queue raises
  ``ServiceOverloaded``, which becomes ``429 Too Many Requests`` with a
  ``Retry-After`` header; blocking submits run on a small thread pool via
  ``run_in_executor`` so slow ingestion never stalls the event loop serving
  reads.
* **per-endpoint timeouts.**  Every handler runs under ``asyncio.wait_for``
  with a per-class budget (query/submit/drain/poll); expiry returns ``504``
  with a structured body rather than holding the connection.
* **subscriptions push, slow consumers are evicted.**  ``POST /subscribe``
  registers a top-k or vertex-set watch against the service's
  :class:`~repro.service.subscriptions.SubscriptionRegistry`; deltas arrive
  over long-poll (``GET /subscription/{id}/poll?wait=``) or a chunked NDJSON
  stream (``GET /subscription/{id}/stream``).  A subscriber that stops
  draining is evicted by the bounded queue and sees ``410 Gone`` (or an
  ``evicted`` stream record) with a resubscribe hint — the writer thread
  never blocks on a socket.

Values cross the wire as JSON numbers when finite (``repr`` round-trips
float64 exactly) and as the strings ``"nan"``/``"inf"``/``"-inf"``
otherwise, since SSSP-style states legitimately hold infinities and JSON
cannot.  :func:`wire_value` / :func:`value_from_wire` are the two sides.

``python -m repro.service.net --directory DIR`` boots a standalone server
(recovering from ``DIR`` if it holds a WAL), which is what the chaos
harness SIGKILLs mid-stream to prove acked-over-the-wire events survive.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import math
from concurrent.futures import ThreadPoolExecutor
from typing import AsyncIterator, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.graph.delta import update_intrinsic_problems
from repro.service.events import update_from_payload, update_payload
from repro.service.faults import ServiceDead, ServiceOverloaded
from repro.service.subscriptions import SubscriptionEvicted

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: per-endpoint-class time budgets (seconds); ``ServiceServer(timeouts=...)``
#: overrides individual keys
DEFAULT_TIMEOUTS = {
    "query": 5.0,  # health/ready/value/topk/dlq/subscribe
    "submit": 30.0,  # POST /submit end to end (incl. WAL backpressure waits)
    "drain": 120.0,
    "poll": 30.0,  # ceiling on one long-poll / stream heartbeat interval
    "idle": 60.0,  # keep-alive connection idle cutoff
}

MAX_EVENTS_PER_SUBMIT = 1024


def wire_value(value: float):
    """A float as it crosses the wire: JSON number, or nan/inf strings."""
    value = float(value)
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return "nan"
    return "inf" if value > 0 else "-inf"


def value_from_wire(raw) -> float:
    """Inverse of :func:`wire_value` (``float`` parses the special strings)."""
    return float(raw)


def _jsonable(value):
    """Recursively make a payload safe for ``json.dumps(allow_nan=False)``."""
    if isinstance(value, float):
        return wire_value(value)
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item"):  # numpy scalars
        return _jsonable(value.item())
    return str(value)


class HttpError(Exception):
    """A request that maps to a specific HTTP status with a JSON body."""

    def __init__(
        self,
        status: int,
        error: str,
        detail: Optional[str] = None,
        *,
        retry_after: Optional[float] = None,
        extra: Optional[dict] = None,
    ) -> None:
        super().__init__(detail or error)
        self.status = status
        self.error = error
        self.detail = detail
        self.retry_after = retry_after
        self.extra = dict(extra or {})

    def payload(self) -> dict:
        body = {"error": self.error}
        if self.detail:
            body["detail"] = self.detail
        body.update(self.extra)
        return body

    def headers(self) -> List[Tuple[str, str]]:
        if self.retry_after is None:
            return []
        return [("retry-after", f"{self.retry_after:g}")]


def _render(
    status: int,
    payload,
    *,
    close: bool = False,
    extra_headers=(),
) -> bytes:
    body = json.dumps(
        _jsonable(payload), separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        "content-type: application/json",
        f"content-length: {len(body)}",
        f"connection: {'close' if close else 'keep-alive'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


async def _read_request(reader: asyncio.StreamReader, max_body: int):
    """One request off a keep-alive connection; ``None`` at clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "bad_request_line", repr(line[:120]))
    headers: Dict[str, str] = {}
    for _ in range(64):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too_many_headers", "more than 64 header lines")
    try:
        length = int(headers.get("content-length") or 0)
    except ValueError:
        raise HttpError(400, "bad_content_length", headers.get("content-length"))
    if length > max_body:
        raise HttpError(413, "body_too_large", f"{length} bytes > cap {max_body}")
    body = await reader.readexactly(length) if length > 0 else b""
    parsed = urlsplit(target)
    return method.upper(), parsed.path, parse_qs(parsed.query), headers, body


def _parse_json(body: bytes) -> dict:
    if not body:
        return {}
    try:
        doc = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise HttpError(400, "bad_json", str(error))
    if not isinstance(doc, dict):
        raise HttpError(400, "bad_json", "request body must be a JSON object")
    return doc


class ServiceServer:
    """One HTTP front end bound to one :class:`UpdateService`.

    Usage (inside a running event loop)::

        server = await serve(service, port=0)     # port 0 -> ephemeral
        ...
        await server.aclose()

    ``max_connections`` bounds concurrent sockets (excess connects get an
    immediate 503); ``max_body`` bounds request bodies (413 beyond).
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        max_body: int = 1 << 20,
        submit_workers: int = 4,
        timeouts: Optional[dict] = None,
        default_poll_wait: float = 10.0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_body = max_body
        self.timeouts = dict(DEFAULT_TIMEOUTS)
        if timeouts:
            self.timeouts.update(timeouts)
        self.default_poll_wait = default_poll_wait
        self.stats = {
            "requests": 0,
            "errors": 0,
            "overloaded": 0,
            "rejected_connections": 0,
            "streams": 0,
        }
        self._executor = ThreadPoolExecutor(
            max_workers=submit_workers, thread_name_prefix="service-net"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._active = 0

    async def start(self) -> "ServiceServer":
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        if self._active >= self.max_connections:
            self.stats["rejected_connections"] += 1
            with contextlib.suppress(Exception):
                writer.write(
                    _render(
                        503,
                        {
                            "error": "too_many_connections",
                            "detail": f"at most {self.max_connections} "
                            "concurrent connections",
                        },
                        close=True,
                    )
                )
                await writer.drain()
            writer.close()
            return
        self._active += 1
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._active -= 1
            with contextlib.suppress(Exception):
                writer.close()

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader, self.max_body), self.timeouts["idle"]
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return
            except HttpError as error:
                writer.write(_render(error.status, error.payload(), close=True))
                await writer.drain()
                return
            if request is None:
                return
            method, path, query, headers, body = request
            self.stats["requests"] += 1
            parts = [part for part in path.split("/") if part]
            if (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "subscription"
                and parts[2] == "stream"
            ):
                # a stream takes over the connection until eviction/shutdown
                await self._handle_stream(writer, parts[1])
                return
            close_after = headers.get("connection", "").lower() == "close"
            try:
                status, payload, extra = await self._dispatch(
                    method, parts, query, body
                )
            except HttpError as error:
                self.stats["errors"] += 1
                if error.status == 429:
                    self.stats["overloaded"] += 1
                status, payload, extra = error.status, error.payload(), error.headers()
            except asyncio.TimeoutError:
                self.stats["errors"] += 1
                status, payload, extra = (
                    504,
                    {"error": "endpoint_timeout", "detail": f"{method} {path}"},
                    [],
                )
            except Exception as error:  # pragma: no cover - defensive surface
                self.stats["errors"] += 1
                status, payload, extra = (
                    500,
                    {
                        "error": "internal",
                        "detail": f"{type(error).__name__}: {error}",
                    },
                    [],
                )
            writer.write(
                _render(status, payload, close=close_after, extra_headers=extra)
            )
            await writer.drain()
            if close_after:
                return

    def _timed(self, key: str, coro):
        return asyncio.wait_for(coro, self.timeouts[key])

    async def _run_blocking(self, func, *args):
        return await self._loop.run_in_executor(
            self._executor, functools.partial(func, *args)
        )

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, method: str, parts: List[str], query, body):
        if parts == ["health"]:
            self._require(method, "GET", parts)
            return await self._timed("query", self._health())
        if parts == ["ready"]:
            self._require(method, "GET", parts)
            return await self._timed("query", self._ready())
        if len(parts) == 2 and parts[0] == "value":
            self._require(method, "GET", parts)
            return await self._timed("query", self._value(parts[1]))
        if parts == ["topk"]:
            self._require(method, "GET", parts)
            return await self._timed("query", self._topk(query))
        if parts == ["dlq"]:
            self._require(method, "GET", parts)
            return await self._timed("query", self._dlq())
        if parts == ["submit"]:
            self._require(method, "POST", parts)
            return await self._timed("submit", self._submit(body))
        if parts == ["drain"]:
            self._require(method, "POST", parts)
            return await self._drain(body)
        if parts == ["subscribe"]:
            self._require(method, "POST", parts)
            return await self._timed("query", self._subscribe(body))
        if len(parts) >= 2 and parts[0] == "subscription":
            sub_id = parts[1]
            if len(parts) == 2 and method == "DELETE":
                return await self._timed("query", self._unsubscribe(sub_id))
            if len(parts) == 3 and parts[2] == "poll" and method == "GET":
                return await self._poll(sub_id, query)
            raise HttpError(405, "method_not_allowed", "/".join(parts))
        raise HttpError(404, "unknown_endpoint", "/" + "/".join(parts))

    @staticmethod
    def _require(method: str, expected: str, parts: List[str]) -> None:
        if method != expected:
            raise HttpError(
                405,
                "method_not_allowed",
                f"{method} /{'/'.join(parts)} (use {expected})",
            )

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _health(self):
        return 200, self.service.health(), []

    async def _ready(self):
        health = self.service.health()
        payload = {
            "ready": health["ready"],
            "replaying": health["replaying"],
            "dead": health["dead"],
        }
        return (200 if health["ready"] else 503), payload, []

    async def _value(self, raw_vertex: str):
        try:
            vertex = int(raw_vertex)
        except ValueError:
            raise HttpError(400, "bad_vertex", f"not an integer: {raw_vertex!r}")
        snapshot = self.service.snapshot()
        if vertex not in snapshot.states:
            raise HttpError(
                404,
                "unknown_vertex",
                f"vertex {vertex} not in snapshot seq {snapshot.seq}",
            )
        value = float(snapshot.states[vertex])
        return (
            200,
            {
                "vertex": vertex,
                "value": wire_value(value),
                "hex": value.hex(),  # bit-exact round-trip for verification
                "seq": snapshot.seq,
                "checksum": snapshot.checksum,
            },
            [],
        )

    async def _topk(self, query):
        try:
            k = int(query.get("k", ["8"])[0])
        except ValueError:
            raise HttpError(400, "bad_k", str(query.get("k")))
        if k < 1:
            raise HttpError(400, "bad_k", f"k must be >= 1, got {k}")
        largest = query.get("largest", ["true"])[0].lower() not in (
            "0",
            "false",
            "no",
        )
        snapshot = self.service.snapshot()
        entries = snapshot.top_k(k, largest=largest)
        return (
            200,
            {
                "k": k,
                "largest": largest,
                "seq": snapshot.seq,
                "checksum": snapshot.checksum,
                "entries": [[vertex, wire_value(value)] for vertex, value in entries],
            },
            [],
        )

    async def _dlq(self):
        entries = [
            {
                "seq": entry.seq,
                "kind": entry.kind,
                "problems": list(entry.problems),
                "recovered": entry.recovered,
            }
            for entry in self.service.dlq.entries()
        ]
        return 200, {"entries": entries}, []

    async def _submit(self, body: bytes):
        doc = _parse_json(body)
        raw_events = doc.get("events")
        if raw_events is None:
            raw_events = [doc]
        if not isinstance(raw_events, list) or not raw_events:
            raise HttpError(400, "bad_events", "events must be a non-empty list")
        if len(raw_events) > MAX_EVENTS_PER_SUBMIT:
            raise HttpError(
                413,
                "too_many_events",
                f"{len(raw_events)} events > cap {MAX_EVENTS_PER_SUBMIT}",
            )
        parsed = []
        for index, entry in enumerate(raw_events):
            if not isinstance(entry, dict) or "update" not in entry:
                raise HttpError(
                    400, "bad_event", f"events[{index}] needs an 'update' payload"
                )
            try:
                update = update_from_payload(entry["update"])
            except Exception as error:
                raise HttpError(
                    400,
                    "bad_update",
                    f"events[{index}]: {type(error).__name__}: {error}",
                )
            seq = entry.get("seq")
            if seq is not None:
                try:
                    seq = int(seq)
                except (TypeError, ValueError):
                    raise HttpError(400, "bad_seq", f"events[{index}].seq: {seq!r}")
            parsed.append((seq, update))
        try:
            timeout = float(doc.get("timeout", 10.0))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_timeout", repr(doc.get("timeout")))
        timeout = min(max(timeout, 0.0), self.timeouts["submit"])
        return await self._run_blocking(self._submit_blocking, parsed, timeout)

    def _submit_blocking(self, parsed, timeout: float):
        """Runs on the thread pool: WAL each event; partial acks survive
        an error (the client learns exactly which seqs are durable)."""
        acks: List[int] = []
        duplicates: List[int] = []
        quarantine: Dict[str, dict] = {}
        for seq, update in parsed:
            try:
                acked, duplicate = self.service.submit_event(
                    update, seq=seq, timeout=timeout
                )
            except ServiceOverloaded as error:
                raise HttpError(
                    429,
                    "overloaded",
                    str(error),
                    retry_after=1.0,
                    extra={"acks": acks, "duplicates": duplicates},
                )
            except ServiceDead as error:
                raise HttpError(
                    503,
                    "service_unavailable",
                    str(error),
                    extra={"acks": acks, "duplicates": duplicates},
                )
            except ValueError as error:
                raise HttpError(
                    409,
                    "seq_conflict",
                    str(error),
                    extra={"acks": acks, "duplicates": duplicates},
                )
            acks.append(acked)
            if duplicate:
                duplicates.append(acked)
            problems = update_intrinsic_problems(update)
            if problems:
                # acked and durable, but destined for the DLQ: tell the
                # client now instead of letting it discover via /dlq later
                quarantine[str(acked)] = {
                    "problems": list(problems),
                    "disposition": "dead-letter after validation",
                }
        payload = {"acks": acks, "duplicates": duplicates}
        if quarantine:
            payload["quarantine"] = quarantine
        return 200, payload, []

    async def _drain(self, body: bytes):
        doc = _parse_json(body)
        try:
            timeout = float(doc.get("timeout", 30.0))
        except (TypeError, ValueError):
            raise HttpError(400, "bad_timeout", repr(doc.get("timeout")))
        timeout = min(max(timeout, 0.0), self.timeouts["drain"])
        try:
            await asyncio.wait_for(
                self._run_blocking(self.service.drain, timeout), timeout + 5.0
            )
        except ServiceDead as error:
            raise HttpError(503, "service_unavailable", str(error))
        except TimeoutError as error:  # asyncio.TimeoutError is a subclass
            raise HttpError(504, "drain_timeout", str(error) or "drain timed out")
        return 200, {"drained": True, "health": self.service.health()}, []

    async def _subscribe(self, body: bytes):
        doc = _parse_json(body)
        kind = doc.get("kind", "topk")
        max_pending = doc.get("max_pending")
        if max_pending is not None:
            try:
                max_pending = int(max_pending)
            except (TypeError, ValueError):
                raise HttpError(400, "bad_max_pending", repr(doc.get("max_pending")))
        registry = self.service.subscriptions
        try:
            if kind == "topk":
                sub = registry.subscribe_topk(
                    int(doc.get("k", 8)),
                    largest=bool(doc.get("largest", True)),
                    max_pending=max_pending,
                )
            elif kind == "vertices":
                vertices = doc.get("vertices")
                if not isinstance(vertices, list):
                    raise HttpError(
                        400, "bad_vertices", "vertices must be a list of ints"
                    )
                sub = registry.subscribe_vertices(vertices, max_pending=max_pending)
            else:
                raise HttpError(
                    400, "bad_kind", f"unknown subscription kind {kind!r}"
                )
        except (ValueError, RuntimeError) as error:
            raise HttpError(400, "bad_subscription", str(error))
        return (
            200,
            {
                "id": sub.id,
                "kind": sub.kind,
                "seq": sub.baseline_seq,
                "baseline": sub.baseline,
                "max_pending": sub.max_pending,
            },
            [],
        )

    def _get_subscription(self, sub_id: str):
        sub = self.service.subscriptions.get(sub_id)
        if sub is None:
            raise HttpError(
                404,
                "unknown_subscription",
                sub_id,
                extra={"hint": "resubscribe for a fresh baseline"},
            )
        return sub

    async def _poll(self, sub_id: str, query):
        sub = self._get_subscription(sub_id)
        try:
            wait = float(query.get("wait", [self.default_poll_wait])[0])
        except ValueError:
            raise HttpError(400, "bad_wait", str(query.get("wait")))
        wait = min(max(wait, 0.0), self.timeouts["poll"])
        loop = asyncio.get_running_loop()
        ready = asyncio.Event()

        def waker() -> None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(ready.set)

        sub.register_waker(waker)
        try:
            if wait > 0:
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(ready.wait(), wait)
        finally:
            sub.discard_waker(waker)
        try:
            deltas = sub.take_nowait()
        except SubscriptionEvicted as error:
            raise HttpError(
                410,
                "subscriber_evicted",
                str(error),
                extra={"hint": "resubscribe for a fresh baseline"},
            )
        return (
            200,
            {"id": sub.id, "deltas": deltas, "closed": sub.closed},
            [],
        )

    async def _unsubscribe(self, sub_id: str):
        if not self.service.subscriptions.unsubscribe(sub_id):
            raise HttpError(404, "unknown_subscription", sub_id)
        return 200, {"id": sub_id, "unsubscribed": True}, []

    async def _handle_stream(self, writer, sub_id: str) -> None:
        try:
            sub = self._get_subscription(sub_id)
        except HttpError as error:
            writer.write(_render(error.status, error.payload(), close=True))
            await writer.drain()
            return
        self.stats["streams"] += 1
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"content-type: application/x-ndjson\r\n"
            b"transfer-encoding: chunked\r\n"
            b"connection: close\r\n\r\n"
        )
        loop = asyncio.get_running_loop()
        try:
            # hello record re-anchors a reconnecting reader on the baseline
            await self._write_chunk(
                writer,
                {
                    "kind": "hello",
                    "id": sub.id,
                    "seq": sub.baseline_seq,
                    "baseline": sub.baseline,
                },
            )
            while True:
                ready = asyncio.Event()

                def waker() -> None:
                    with contextlib.suppress(RuntimeError):
                        loop.call_soon_threadsafe(ready.set)

                sub.register_waker(waker)
                try:
                    await asyncio.wait_for(ready.wait(), self.timeouts["poll"])
                except asyncio.TimeoutError:
                    await self._write_chunk(
                        writer,
                        {
                            "kind": "heartbeat",
                            "seq": self.service.snapshot().seq,
                        },
                    )
                    continue
                finally:
                    sub.discard_waker(waker)
                try:
                    deltas = sub.take_nowait()
                except SubscriptionEvicted as error:
                    await self._write_chunk(
                        writer,
                        {
                            "kind": "evicted",
                            "detail": str(error),
                            "hint": "resubscribe for a fresh baseline",
                        },
                    )
                    break
                for delta in deltas:
                    await self._write_chunk(writer, delta)
                if sub.closed and not deltas:
                    await self._write_chunk(writer, {"kind": "closed"})
                    break
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError, asyncio.TimeoutError):
            return

    async def _write_chunk(self, writer, payload) -> None:
        data = (
            json.dumps(_jsonable(payload), separators=(",", ":"), allow_nan=False)
            + "\n"
        ).encode("utf-8")
        writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await writer.drain()


async def serve(service, host: str = "127.0.0.1", port: int = 0, **kwargs):
    """Boot a :class:`ServiceServer` on ``host:port`` and return it started."""
    server = ServiceServer(service, host, port, **kwargs)
    return await server.start()


# ----------------------------------------------------------------------
# client
# ----------------------------------------------------------------------
async def _read_response(reader: asyncio.StreamReader):
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    headers: Dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length") or 0)
    body = await reader.readexactly(length) if length > 0 else b""
    return status, headers, body


class AsyncServiceClient:
    """Minimal asyncio client for :class:`ServiceServer`.

    One keep-alive connection for request/response endpoints (reconnects
    transparently after a drop), plus :meth:`stream` generators that each
    open their own connection.  Methods return ``(status, doc)`` — callers
    decide what a non-200 means for them.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            with contextlib.suppress(Exception):
                await self._writer.wait_closed()
        self._reader = self._writer = None

    async def request(self, method: str, path: str, payload=None):
        body = (
            json.dumps(
                _jsonable(payload), separators=(",", ":"), allow_nan=False
            ).encode("utf-8")
            if payload is not None
            else b""
        )
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"host: {self.host}\r\n"
            "content-type: application/json\r\n"
            f"content-length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        for attempt in (0, 1):
            if self._writer is None:
                await self.connect()
            try:
                self._writer.write(head + body)
                await self._writer.drain()
                status, headers, raw = await _read_response(self._reader)
                break
            except (ConnectionError, asyncio.IncompleteReadError):
                await self.close()
                if attempt:
                    raise
        if headers.get("connection", "").lower() == "close":
            await self.close()
        doc = json.loads(raw.decode("utf-8")) if raw else {}
        return status, doc

    # -- conveniences --------------------------------------------------
    async def submit(self, update, seq: Optional[int] = None, timeout=None):
        entry: dict = {"update": update_payload(update)}
        if seq is not None:
            entry["seq"] = seq
        if timeout is not None:
            entry["timeout"] = timeout
        return await self.request("POST", "/submit", entry)

    async def submit_batch(self, events, timeout=None):
        """``events`` is an iterable of ``(seq_or_None, update)`` pairs."""
        doc: dict = {
            "events": [
                {"update": update_payload(update), "seq": seq}
                if seq is not None
                else {"update": update_payload(update)}
                for seq, update in events
            ]
        }
        if timeout is not None:
            doc["timeout"] = timeout
        return await self.request("POST", "/submit", doc)

    async def value(self, vertex: int):
        return await self.request("GET", f"/value/{vertex}")

    async def topk(self, k: int, largest: bool = True):
        flag = "true" if largest else "false"
        return await self.request("GET", f"/topk?k={k}&largest={flag}")

    async def health(self):
        return await self.request("GET", "/health")

    async def ready(self):
        return await self.request("GET", "/ready")

    async def dlq(self):
        return await self.request("GET", "/dlq")

    async def drain(self, timeout: float = 30.0):
        return await self.request("POST", "/drain", {"timeout": timeout})

    async def subscribe_topk(self, k: int, largest: bool = True, max_pending=None):
        doc: dict = {"kind": "topk", "k": k, "largest": largest}
        if max_pending is not None:
            doc["max_pending"] = max_pending
        return await self.request("POST", "/subscribe", doc)

    async def subscribe_vertices(self, vertices, max_pending=None):
        doc: dict = {"kind": "vertices", "vertices": list(vertices)}
        if max_pending is not None:
            doc["max_pending"] = max_pending
        return await self.request("POST", "/subscribe", doc)

    async def poll(self, sub_id: str, wait: float = 5.0):
        return await self.request("GET", f"/subscription/{sub_id}/poll?wait={wait}")

    async def unsubscribe(self, sub_id: str):
        return await self.request("DELETE", f"/subscription/{sub_id}")

    async def stream(self, sub_id: str) -> AsyncIterator[dict]:
        """Yield push records (hello/deltas/heartbeats/evicted/closed) from
        a chunked stream on a dedicated connection."""
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            writer.write(
                (
                    f"GET /subscription/{sub_id}/stream HTTP/1.1\r\n"
                    f"host: {self.host}\r\ncontent-length: 0\r\n\r\n"
                ).encode("latin-1")
            )
            await writer.drain()
            status_line = await reader.readline()
            status = int(status_line.split()[1])
            headers: Dict[str, str] = {}
            while True:
                raw = await reader.readline()
                if raw in (b"\r\n", b"\n", b""):
                    break
                name, sep, value = raw.decode("latin-1").partition(":")
                if sep:
                    headers[name.strip().lower()] = value.strip()
            if status != 200:
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                doc = json.loads(body.decode("utf-8")) if body else {}
                raise HttpError(status, doc.get("error", "stream_failed"),
                                doc.get("detail"), extra=doc)
            while True:
                size_line = await reader.readline()
                if not size_line:
                    return
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    return
                data = await reader.readexactly(size)
                await reader.readexactly(2)  # chunk-terminating CRLF
                for line in data.decode("utf-8").splitlines():
                    if line:
                        yield json.loads(line)
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


# ----------------------------------------------------------------------
# standalone server (chaos harness target)
# ----------------------------------------------------------------------
def demo_graph(seed: int = 5):
    """The community graph the service test-bed runs on."""
    from repro.graph.generators import community_graph

    return community_graph(
        num_communities=3,
        community_size_range=(10, 14),
        intra_edge_probability=0.3,
        inter_edges_per_community=3,
        weighted=True,
        seed=seed,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.service.net`` — boot (or recover) and serve.

    Prints ``LISTENING <host> <port>`` once the socket is bound so a parent
    process can drive it, then serves until killed.  If ``--directory``
    already holds an event WAL the service is recovered from it, which is
    exactly what the SIGKILL legs of the chaos/net test suites exercise.
    """
    import argparse
    import os
    import sys

    from repro.bench.harness import build_engine
    from repro.engine.algorithms import make_algorithm
    from repro.service.service import UpdateService

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--directory", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--engine", default="kickstarter")
    parser.add_argument("--algorithm", default="sssp")
    parser.add_argument("--source", type=int, default=0)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args(argv)

    wal_path = os.path.join(args.directory, UpdateService.EVENTS_LOG)
    if os.path.exists(wal_path) and os.path.getsize(wal_path) > 0:
        service = UpdateService.recover(
            args.directory, batch_size=args.batch_size
        )
    else:
        engine = build_engine(
            args.engine, make_algorithm(args.algorithm, source=args.source)
        )
        engine.initialize(demo_graph(args.seed))
        service = UpdateService(
            engine, args.directory, batch_size=args.batch_size
        )

    async def run() -> None:
        server = await serve(service, host=args.host, port=args.port)
        print(f"LISTENING {server.host} {server.port}", flush=True)
        try:
            await asyncio.Event().wait()  # serve until killed
        finally:
            await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
