"""Shared machinery of the dependency-based selective engines.

KickStarter, RisGraph and Ingress's memoization-path policy all follow the
same four steps after a delta — invalidate, trim, compensate, propagate — and
differ only in how aggressively they tag dependents and whether they classify
unit updates as safe/unsafe first.  This module hosts the shared template so
the three engines stay small and their differences explicit.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import propagate
from repro.engine.runner import BatchResult, run_batch
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental import dependency
from repro.incremental.base import IncrementalEngine, IncrementalResult


class SelectiveDependencyEngine(IncrementalEngine):
    """Template for dependency-tracking engines over selective algorithms.

    Subclasses choose the tagging granularity via :attr:`tainting` (``"tree"``
    for single-parent dependents, ``"dag"`` for conservative DAG dependents)
    and may enable :attr:`classify_safe_updates` to skip no-op insertions the
    way RisGraph does.
    """

    supported_family = "selective"
    #: "tree" (single winning parent) or "dag" (every supporting in-edge)
    tainting: str = "tree"
    #: whether to pre-classify insertions/deletions as safe (no work needed)
    classify_safe_updates: bool = False

    def __init__(self, spec, backend: Optional[str] = None) -> None:
        super().__init__(spec, backend=backend)
        self.parents: Dict[int, Optional[int]] = {}

    # ------------------------------------------------------------------
    def _initial_run(self, graph: Graph) -> BatchResult:
        result = run_batch(
            self.spec,
            graph,
            backend=self.backend,
            adjacency=self._propagation_adjacency(graph),
        )
        self.parents = dependency.compute_parents(self.spec, graph, result.states)
        return result

    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        spec = self.spec
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()
        identity = spec.aggregate_identity()

        with phases.phase("graph update"):
            deleted = delta.deleted_edges(old_graph)
            added = delta.added_edges(old_graph)
            # An insertion that overwrites an existing edge is semantically a
            # deletion of the old weight plus an insertion of the new one
            # (the paper models weight changes as delete + add).  Make the
            # implicit deletion explicit, otherwise a weight increase never
            # reaches the invalidation step and the target keeps a stale
            # value supported by the old, cheaper edge.
            explicitly_deleted = {(s, t) for s, t, _ in deleted}
            for source, target, weight in added:
                if (source, target) in explicitly_deleted:
                    continue
                if (
                    old_graph.has_edge(source, target)
                    and old_graph.edge_weight(source, target) != weight
                ):
                    explicitly_deleted.add((source, target))
                    deleted.append(
                        (source, target, old_graph.edge_weight(source, target))
                    )
            new_graph = self._update_graph(delta)
            _added_vertices, removed_vertices = self._vertex_membership_diff(
                old_graph, new_graph
            )

        states = dict(self.states)

        with phases.phase("invalidation"):
            roots: Set[int] = set()
            for source, target, old_weight in deleted:
                if self.classify_safe_updates and not self._deletion_is_unsafe(
                    old_graph, states, source, target
                ):
                    continue
                if not self.classify_safe_updates:
                    # Without classification the engine still only invalidates
                    # targets whose value was actually supported by the edge.
                    if not self._edge_supported_target(old_graph, states, source, target):
                        continue
                if new_graph.has_vertex(target):
                    roots.add(target)
            if self.tainting == "dag":
                tainted = dependency.dependents_dag(spec, old_graph, states, roots)
            else:
                tainted = dependency.dependents_single_parent(self.parents, old_graph, roots)
            tainted = {vertex for vertex in tainted if new_graph.has_vertex(vertex)}
            for vertex in removed_vertices:
                states.pop(vertex, None)
                self.parents.pop(vertex, None)
            for vertex in new_graph.vertices():
                if vertex not in states:
                    states[vertex] = spec.initial_state(vertex)

        with phases.phase("trim and seed"):
            pending = dependency.trim_and_seed(spec, new_graph, states, tainted)
            # Re-aggregating each tainted vertex from its surviving in-edges is
            # F-work; count it like the C++ systems count their edge visits.
            metrics.edge_activations += sum(
                new_graph.in_degree(vertex) for vertex in tainted
            )

        with phases.phase("compensation"):
            for source, target, _weight in added:
                source_state = states.get(source, identity)
                if source_state == identity:
                    continue
                offered = spec.combine(
                    source_state, spec.edge_factor(new_graph, source, target)
                )
                metrics.edge_activations += 1
                if self.classify_safe_updates and not self._insertion_is_unsafe(
                    states, target, offered
                ):
                    continue
                pending[target] = spec.aggregate(pending.get(target, identity), offered)
            for vertex in new_graph.vertices():
                if vertex not in old_graph and spec.is_significant(
                    spec.initial_message(vertex)
                ):
                    pending[vertex] = spec.aggregate(
                        pending.get(vertex, identity), spec.initial_message(vertex)
                    )

        with phases.phase("propagation"):
            adjacency = self._propagation_adjacency(new_graph)
            propagate(spec, adjacency, states, pending, metrics, backend=self.backend)

        with phases.phase("dependency maintenance"):
            self._refresh_parents(new_graph, states, tainted, added, deleted)

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    def _edge_supported_target(
        self, graph: Graph, states: Dict[int, float], source: int, target: int
    ) -> bool:
        """Whether the (old) edge ``source -> target`` supported ``target``."""
        spec = self.spec
        identity = spec.aggregate_identity()
        source_state = states.get(source, identity)
        target_state = states.get(target, identity)
        if source_state == identity or target_state == identity:
            return False
        offered = spec.combine(source_state, spec.edge_factor(graph, source, target))
        return offered == target_state

    def _deletion_is_unsafe(
        self, graph: Graph, states: Dict[int, float], source: int, target: int
    ) -> bool:
        """RisGraph-style classification: deletion is unsafe only if the
        target's recorded dependency parent is the deleted edge's source."""
        return self.parents.get(target) == source

    def _insertion_is_unsafe(
        self, states: Dict[int, float], target: int, offered: float
    ) -> bool:
        """Insertion is unsafe only if the new edge improves the target."""
        spec = self.spec
        identity = spec.aggregate_identity()
        current = states.get(target, identity)
        return spec.aggregate(current, offered) != current

    def _refresh_parents(
        self,
        graph: Graph,
        states: Dict[int, float],
        tainted: Set[int],
        added,
        deleted,
    ) -> None:
        """Refresh the dependency parents of every vertex whose support may
        have changed: tainted vertices, endpoints of changed edges, and the
        out-neighbors of vertices whose state changed."""
        stale: Set[int] = set()
        for vertex in tainted:
            if graph.has_vertex(vertex):
                stale.add(vertex)
                stale.update(graph.out_neighbors(vertex))
        for source, target, _ in list(added) + list(deleted):
            for vertex in (source, target):
                if graph.has_vertex(vertex):
                    stale.add(vertex)
                    stale.update(graph.out_neighbors(vertex))
        for vertex, value in states.items():
            if graph.has_vertex(vertex) and self.states.get(vertex) != value:
                stale.add(vertex)
                stale.update(graph.out_neighbors(vertex))
        dependency.compute_parents(self.spec, graph, states, stale, self.parents)
