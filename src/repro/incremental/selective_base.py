"""Shared machinery of the dependency-based selective engines.

KickStarter, RisGraph and Ingress's memoization-path policy all follow the
same four steps after a delta — invalidate, trim, compensate, propagate — and
differ only in how aggressively they tag dependents and whether they classify
unit updates as safe/unsafe first.  This module hosts the shared template so
the three engines stay small and their differences explicit: a policy is the
:attr:`tainting` granularity (``"tree"`` — tag-versioned single-parent
invalidation — vs ``"dag"`` — conservative supporting-edge trimming) plus the
per-edge safe/unsafe classification hooks.

The mechanics behind the template run in one of two interchangeable forms:

* the dict reference — :mod:`repro.incremental.dependency` over per-vertex
  Python dicts — which defines the semantics and always runs under the
  Python backend;
* the dense :class:`repro.incremental.dep_table.DepTable` — parent, level
  and value arrays keyed by the cached in-edge CSR's vertex index — which
  the numpy backend uses by default (``REPRO_DEP_DENSE=0`` opts out).
  Taint expansion, the trimmed-vertex re-pull and the post-propagation
  parent refresh then run as array kernels over the cached in-/out-edge CSR
  snapshots, bitwise identical to the dict loops (states, rounds, edge
  activations), and the invalidation inputs come straight from the shared
  :class:`repro.graph.footprint.DeltaFootprint` (its cached weight-level
  ``invalidation_edges`` expansion and O(delta) membership diff) instead of
  per-engine re-expansions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.backends import is_numpy_backend
from repro.engine.dense_propagation import AGGREGATE_MIN, COMBINE_ADD, classify_spec
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import propagate
from repro.engine.runner import BatchResult, run_batch
from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.footprint import expand_weight_changes
from repro.graph.graph import Graph
from repro.incremental import dependency
from repro.incremental.base import IncrementalEngine, IncrementalResult
from repro.incremental.dep_table import DepTable, dep_dense_enabled

#: phase names of the invalidation-and-repair pipeline;
#: ``benchmarks/test_selective_speedup.py`` times their sum
PHASE_INVALIDATION = "invalidation"
PHASE_TRIM = "trim and seed"
PHASE_MAINTENANCE = "dependency maintenance"


class _TrackedStates(dict):
    """Working-states dict that records every key written since creation.

    The dense maintenance path hands the touched keys to
    :meth:`DepTable.refresh` as the candidate rows of its incremental value
    gather — the table's value column is fully synchronized with the states
    at the start of each delta, so only keys written during the delta
    (invalidation pops and seeds, trim resets, the propagation write-back)
    can diverge, and every such write lands on one of the methods below.
    """

    __slots__ = ("touched",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.touched: Set[int] = set()

    def __setitem__(self, key, value) -> None:
        self.touched.add(key)
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        self.touched.add(key)
        super().__delitem__(key)

    def pop(self, key, *default):
        self.touched.add(key)
        return super().pop(key, *default)

    def popitem(self):
        key, value = super().popitem()
        self.touched.add(key)
        return key, value

    def setdefault(self, key, default=None):
        self.touched.add(key)
        return super().setdefault(key, default)

    def update(self, *args, **kwargs) -> None:
        merged = dict(*args, **kwargs)
        self.touched.update(merged)
        super().update(merged)

    def clear(self) -> None:
        self.touched.update(self)
        super().clear()


class SelectiveDependencyEngine(IncrementalEngine):
    """Template for dependency-tracking engines over selective algorithms.

    Subclasses choose the tagging granularity via :attr:`tainting` (``"tree"``
    for single-parent dependents, ``"dag"`` for conservative DAG dependents)
    and may enable :attr:`classify_safe_updates` to skip no-op insertions the
    way RisGraph does.
    """

    supported_family = "selective"
    #: "tree" (single winning parent) or "dag" (every supporting in-edge)
    tainting: str = "tree"
    #: whether to pre-classify insertions/deletions as safe (no work needed)
    classify_safe_updates: bool = False

    def __init__(self, spec, backend: Optional[str] = None) -> None:
        super().__init__(spec, backend=backend)
        #: dict-reference dependency parents; authoritative only while
        #: :attr:`dep_table` is ``None`` (the table owns them otherwise)
        self.parents: Dict[int, Optional[int]] = {}
        #: dense dependency store (numpy backend), ``None`` in dict mode
        self.dep_table: Optional[DepTable] = None
        #: deltas applied through the dense / dict machinery (for tests)
        self.dense_deltas = 0
        self.dict_deltas = 0
        self._initial_state_cache: Optional[Tuple[List[int], np.ndarray]] = None

    # ------------------------------------------------------------------
    def _initial_run(self, graph: Graph) -> BatchResult:
        result = run_batch(
            self.spec,
            graph,
            backend=self.backend,
            adjacency=self._propagation_adjacency(graph),
        )
        self.parents = dependency.compute_parents(self.spec, graph, result.states)
        self.dep_table = None
        if (
            dep_dense_enabled()
            and is_numpy_backend(self.backend)
            and self.csr_cache.enabled
            and classify_spec(self.spec) == (AGGREGATE_MIN, COMBINE_ADD)
        ):
            # Warm the snapshots the dense dependency path consumes so the
            # first delta patches them instead of compiling mid-stream (the
            # BSP engines warm their in-edge CSR the same way).
            self.csr_cache.in_csr(self.spec, graph)
            self.csr_cache.out_csr(self.spec, graph)
        return result

    # ------------------------------------------------------------------
    # dense-table plumbing
    # ------------------------------------------------------------------
    def _parent_of(self, vertex: int) -> Optional[int]:
        """Recorded dependency parent, served from whichever store is live."""
        if self.dep_table is not None:
            return self.dep_table.parent_of(vertex)
        return self.parents.get(vertex)

    def _demote_dep_table(self) -> None:
        """Hand authority back to the dict reference (one O(V) export)."""
        if self.dep_table is not None:
            self.parents = self.dep_table.to_parents_dict()
            self.dep_table = None

    # ------------------------------------------------------------------
    # durable snapshots (repro.storage)
    # ------------------------------------------------------------------
    def _snapshot_extras(self):
        from repro.storage.codecs import encode_dep_table, encode_parent_map, pack

        meta = {
            "store": "table" if self.dep_table is not None else "dict",
            "dense_deltas": self.dense_deltas,
            "dict_deltas": self.dict_deltas,
        }
        # The parents dict travels in both modes: it is the authority in dict
        # mode, and in table mode it is what a later gate-failure demotion
        # would have been re-exported from anyway.
        arrays = dict(pack("parents", encode_parent_map(self.parents)))
        if self.dep_table is not None:
            table_meta, table_arrays = encode_dep_table(self.dep_table)
            meta["dep_table"] = table_meta
            arrays.update(pack("dep_table", table_arrays))
        return meta, arrays

    def _restore_extras(self, meta: dict, arrays) -> None:
        from repro.storage.codecs import decode_dep_table, decode_parent_map, unpack

        self.parents = decode_parent_map(unpack("parents", arrays))
        if meta.get("store") == "table":
            self.dep_table = decode_dep_table(
                meta["dep_table"], unpack("dep_table", arrays)
            )
        else:
            self.dep_table = None
        self.dense_deltas = int(meta.get("dense_deltas", 0))
        self.dict_deltas = int(meta.get("dict_deltas", 0))
        self._initial_state_cache = None

    def _sync_dep_table(self, old_graph: Graph) -> Optional[Tuple[FactorCSR, FactorCSR]]:
        """Pre-delta CSR snapshots when this delta can run dense, else ``None``.

        The dense gate mirrors the memo table's: numpy backend selected, CSR
        cache enabled, the spec declares the min/+ algebra, no NaN factors or
        states, ``REPRO_DEP_DENSE`` not disabled.  A failed gate demotes the
        table to the dict reference (which then handles this delta); a later
        clean delta re-promotes it from the dict.
        """
        spec = self.spec
        if (
            not dep_dense_enabled()
            or not is_numpy_backend(self.backend)
            or not self.csr_cache.enabled
        ):
            self._demote_dep_table()
            return None
        if classify_spec(spec) != (AGGREGATE_MIN, COMBINE_ADD):
            self._demote_dep_table()
            return None
        in_csr = self.csr_cache.in_csr(spec, old_graph)
        out_csr = self.csr_cache.out_csr(spec, old_graph)
        if np.isnan(in_csr.factors).any() or np.isnan(out_csr.factors).any():
            self._demote_dep_table()
            return None
        table = self.dep_table
        if table is not None and not table.matches_ids(in_csr.vertex_ids):
            # The id space drifted outside apply_delta; trust nothing.
            self._demote_dep_table()
            table = None
        if table is None:
            table = DepTable.from_parents(
                in_csr,
                self.states,
                self.parents,
                spec.aggregate_identity(),
                graph_version=old_graph.version,
            )
            self.dep_table = table
        if np.isnan(table.values).any():
            self._demote_dep_table()
            return None
        return in_csr, out_csr

    def _initial_state_array(self, csr: FactorCSR) -> np.ndarray:
        """Per-row ``initial_state`` values, rebuilt only when the ids change."""
        cached = self._initial_state_cache
        ids = csr.vertex_ids
        if cached is not None and (cached[0] is ids or cached[0] == ids):
            return cached[1]
        spec = self.spec
        array = np.fromiter(
            (spec.initial_state(vertex) for vertex in ids), np.float64, count=len(ids)
        )
        self._initial_state_cache = (ids, array)
        return array

    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        spec = self.spec
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()
        identity = spec.aggregate_identity()

        with phases.phase("graph update"):
            dense_csrs = self._sync_dep_table(old_graph)
            new_graph = self._update_graph(delta)
            footprint = self.footprint
            if footprint is not None:
                # The footprint caches the delta expansion and the
                # weight-level link diff (weight changes made explicit as
                # delete + add) — no per-engine re-expansion.
                added, deleted = footprint.invalidation_edges
            else:
                # Without a weight increase made explicit as delete + add,
                # it never reaches the invalidation step and its target
                # keeps a stale value supported by the old, cheaper edge.
                added = delta.added_edges(old_graph)
                deleted = expand_weight_changes(
                    old_graph, added, delta.deleted_edges(old_graph)
                )
            added_vertices, removed_vertices = self._vertex_membership_diff(
                old_graph, new_graph
            )
            new_in_csr = new_out_csr = None
            if dense_csrs is not None:
                new_in_csr = self.csr_cache.in_csr(spec, new_graph)
                new_out_csr = self.csr_cache.out_csr(spec, new_graph)
                if (
                    np.isnan(new_in_csr.factors).any()
                    or np.isnan(new_out_csr.factors).any()
                ):
                    # The delta introduced factors the array algebra cannot
                    # replay; this delta (and every following one until they
                    # disappear) runs on the dict reference.
                    self._demote_dep_table()
                    dense_csrs = None

        states: Dict[int, float] = (
            _TrackedStates(self.states)
            if dense_csrs is not None
            else dict(self.states)
        )
        table = self.dep_table if dense_csrs is not None else None
        if table is not None:
            self.dense_deltas += 1
        else:
            self.dict_deltas += 1

        with phases.phase(PHASE_INVALIDATION):
            roots: Set[int] = set()
            for source, target, _old_weight in deleted:
                if self.classify_safe_updates and not self._deletion_is_unsafe(
                    old_graph, states, source, target
                ):
                    continue
                if not self.classify_safe_updates:
                    # Without classification the engine still only invalidates
                    # targets whose value was actually supported by the edge.
                    if not self._edge_supported_target(old_graph, states, source, target):
                        continue
                if new_graph.has_vertex(target):
                    roots.add(target)
            if table is not None:
                old_in_csr, old_out_csr = dense_csrs
                root_rows = np.fromiter(
                    (old_in_csr.index[v] for v in roots), np.int64, count=len(roots)
                )
                if self.tainting == "dag":
                    mask = table.taint_dag(old_out_csr, root_rows)
                else:
                    mask = table.taint_tree(root_rows)
                tainted_ids = old_in_csr.ids_array()[np.nonzero(mask)[0]].tolist()
                if removed_vertices:
                    tainted = {v for v in tainted_ids if new_graph.has_vertex(v)}
                else:
                    tainted = set(tainted_ids)
            else:
                if self.tainting == "dag":
                    tainted = dependency.dependents_dag(spec, old_graph, states, roots)
                else:
                    tainted = dependency.dependents_single_parent(
                        self.parents, old_graph, roots
                    )
                tainted = {vertex for vertex in tainted if new_graph.has_vertex(vertex)}
            for vertex in removed_vertices:
                states.pop(vertex, None)
                self.parents.pop(vertex, None)
            # Only a vertex added by this delta can be missing a state (the
            # memoized states always cover the previous graph).
            for vertex in added_vertices:
                if vertex not in states:
                    states[vertex] = spec.initial_state(vertex)

        with phases.phase(PHASE_TRIM):
            if table is not None:
                pending = self._trim_and_seed_dense(
                    table, new_in_csr, new_graph, states, tainted, metrics
                )
            else:
                pending = dependency.trim_and_seed(spec, new_graph, states, tainted)
                # Re-aggregating each tainted vertex from its surviving
                # in-edges is F-work; count it like the C++ systems count
                # their edge visits.
                metrics.edge_activations += sum(
                    new_graph.in_degree(vertex) for vertex in tainted
                )

        with phases.phase("compensation"):
            for source, target, _weight in added:
                source_state = states.get(source, identity)
                if source_state == identity:
                    continue
                offered = spec.combine(
                    source_state, spec.edge_factor(new_graph, source, target)
                )
                metrics.edge_activations += 1
                if self.classify_safe_updates and not self._insertion_is_unsafe(
                    states, target, offered
                ):
                    continue
                pending[target] = spec.aggregate(pending.get(target, identity), offered)
            for vertex in new_graph.vertices():
                if vertex not in old_graph and spec.is_significant(
                    spec.initial_message(vertex)
                ):
                    pending[vertex] = spec.aggregate(
                        pending.get(vertex, identity), spec.initial_message(vertex)
                    )

        with phases.phase("propagation"):
            adjacency = self._propagation_adjacency(new_graph)
            propagate(spec, adjacency, states, pending, metrics, backend=self.backend)

        with phases.phase(PHASE_MAINTENANCE):
            if table is not None:
                self._refresh_parents_dense(
                    table, new_in_csr, new_out_csr, new_graph, states, tainted,
                    added, deleted,
                )
            else:
                self._refresh_parents(new_graph, states, tainted, added, deleted)

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    # dense kernels (numpy backend; bitwise equal to the dict reference)
    # ------------------------------------------------------------------
    def _trim_and_seed_dense(
        self,
        table: DepTable,
        in_csr: FactorCSR,
        new_graph: Graph,
        states: Dict[int, float],
        tainted: Set[int],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        """Array replay of :func:`repro.incremental.dependency.trim_and_seed`."""
        spec = self.spec
        identity = spec.aggregate_identity()
        # Move the table to the post-delta index space first: brand-new
        # columns take their freshly seeded initial states from ``states``.
        table.remap(in_csr, states, identity, graph_version=new_graph.version)
        ordered = sorted(tainted)
        rows = np.fromiter(
            (in_csr.index[v] for v in ordered), np.int64, count=len(ordered)
        )
        initial = np.fromiter(
            (spec.initial_message(v) for v in ordered), np.float64, count=len(ordered)
        )
        best, visited = table.trim_and_seed(in_csr, rows, initial, identity)
        metrics.edge_activations += visited
        pending: Dict[int, float] = {}
        for vertex, value in zip(ordered, best.tolist()):
            states[vertex] = identity
            if value != identity:  # the classified spec's is_significant
                pending[vertex] = value
        return pending

    def _refresh_parents_dense(
        self,
        table: DepTable,
        in_csr: FactorCSR,
        out_csr: FactorCSR,
        graph: Graph,
        states: Dict[int, float],
        tainted: Set[int],
        added,
        deleted,
    ) -> None:
        """Array replay of :meth:`_refresh_parents` on the dense table.

        The seed rows are the tainted vertices plus the endpoints of changed
        edges; :meth:`DepTable.refresh` detects the changed-state vertices by
        comparing its value array against the post-propagation states and
        expands every stale vertex's out-neighbors on the cached out-CSR —
        the same stale set the dict reference assembles with Python scans.
        """
        index = in_csr.index
        seeds: Set[int] = set(tainted)
        for source, target, _weight in list(added) + list(deleted):
            for vertex in (source, target):
                if graph.has_vertex(vertex):
                    seeds.add(vertex)
        seed_rows = np.fromiter(
            (index[v] for v in seeds), np.int64, count=len(seeds)
        )
        changed_rows = None
        if isinstance(states, _TrackedStates):
            touched = [index[v] for v in states.touched if v in index]
            changed_rows = np.fromiter(touched, np.int64, count=len(touched))
        table.refresh(
            in_csr,
            out_csr,
            states,
            seed_rows,
            self._initial_state_array(in_csr),
            self.spec.aggregate_identity(),
            graph_version=graph.version,
            changed_rows=changed_rows,
        )

    # ------------------------------------------------------------------
    def _edge_supported_target(
        self, graph: Graph, states: Dict[int, float], source: int, target: int
    ) -> bool:
        """Whether the (old) edge ``source -> target`` supported ``target``."""
        spec = self.spec
        identity = spec.aggregate_identity()
        source_state = states.get(source, identity)
        target_state = states.get(target, identity)
        if source_state == identity or target_state == identity:
            return False
        offered = spec.combine(source_state, spec.edge_factor(graph, source, target))
        return offered == target_state

    def _deletion_is_unsafe(
        self, graph: Graph, states: Dict[int, float], source: int, target: int
    ) -> bool:
        """RisGraph-style classification: deletion is unsafe only if the
        target's recorded dependency parent is the deleted edge's source."""
        return self._parent_of(target) == source

    def _insertion_is_unsafe(
        self, states: Dict[int, float], target: int, offered: float
    ) -> bool:
        """Insertion is unsafe only if the new edge improves the target."""
        spec = self.spec
        identity = spec.aggregate_identity()
        current = states.get(target, identity)
        return spec.aggregate(current, offered) != current

    def _refresh_parents(
        self,
        graph: Graph,
        states: Dict[int, float],
        tainted: Set[int],
        added,
        deleted,
    ) -> None:
        """Refresh the dependency parents of every vertex whose support may
        have changed: tainted vertices, endpoints of changed edges, and the
        out-neighbors of vertices whose state changed."""
        stale: Set[int] = set()
        for vertex in tainted:
            if graph.has_vertex(vertex):
                stale.add(vertex)
                stale.update(graph.out_neighbors(vertex))
        for source, target, _ in list(added) + list(deleted):
            for vertex in (source, target):
                if graph.has_vertex(vertex):
                    stale.add(vertex)
                    stale.update(graph.out_neighbors(vertex))
        for vertex, value in states.items():
            if graph.has_vertex(vertex) and self.states.get(vertex) != value:
                stale.add(vertex)
                stale.update(graph.out_neighbors(vertex))
        dependency.compute_parents(self.spec, graph, states, stale, self.parents)
