"""Incremental graph-processing engines.

Besides the Restart baseline, this subpackage reimplements (in spirit) the
incremental strategies of the five systems the paper compares against:

* :class:`KickStarterEngine` — dependency-DAG tagging with trimmed
  approximations (selective algorithms: SSSP/BFS);
* :class:`RisGraphEngine` — single-dependency tree with safe/unsafe
  classification of unit updates (selective algorithms);
* :class:`GraphBoltEngine` — per-iteration dependency memoization
  (accumulative algorithms: PageRank/PHP);
* :class:`DZiGEngine` — GraphBolt plus sparsity-aware change propagation;
* :class:`IngressEngine` — automated memoization policy: memoization-path for
  selective algorithms and memoization-free cancellation/compensation
  messages for accumulative algorithms.  Layph is built on top of this
  engine, exactly as in the paper.

All engines share one contract: after :meth:`IncrementalEngine.apply_delta`
their states must equal a from-scratch batch run on the updated graph.
"""

from repro.incremental.base import IncrementalEngine, IncrementalResult
from repro.incremental.restart import RestartEngine
from repro.incremental.kickstarter import KickStarterEngine
from repro.incremental.risgraph import RisGraphEngine
from repro.incremental.graphbolt import GraphBoltEngine
from repro.incremental.dzig import DZiGEngine
from repro.incremental.ingress import IngressEngine

ENGINE_REGISTRY = {
    "restart": RestartEngine,
    "kickstarter": KickStarterEngine,
    "risgraph": RisGraphEngine,
    "graphbolt": GraphBoltEngine,
    "dzig": DZiGEngine,
    "ingress": IngressEngine,
}

__all__ = [
    "IncrementalEngine",
    "IncrementalResult",
    "RestartEngine",
    "KickStarterEngine",
    "RisGraphEngine",
    "GraphBoltEngine",
    "DZiGEngine",
    "IngressEngine",
    "ENGINE_REGISTRY",
    "make_engine",
]


def make_engine(name: str, spec, backend=None) -> IncrementalEngine:
    """Instantiate an engine by its registry name.

    ``backend`` selects the propagation backend (see
    :mod:`repro.engine.backends`); ``None`` defers to ``REPRO_BACKEND``.
    """
    try:
        engine_class = ENGINE_REGISTRY[name.lower()]
    except KeyError as error:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {sorted(ENGINE_REGISTRY)}"
        ) from error
    return engine_class(spec, backend=backend)
