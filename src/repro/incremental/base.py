"""Common interface of every incremental engine.

The life cycle follows Equation (4) of the paper:

1. ``initialize(G)`` runs the batch algorithm ``A(G)`` and memoizes whatever
   the engine's strategy requires (dependency trees, per-iteration states,
   nothing at all, ...).
2. ``apply_delta(ΔG)`` adjusts the memoized result so that it equals
   ``A(G ⊕ ΔG)``, and returns the metrics of the adjustment.

Engines keep their own mutable copy of the graph so repeated deltas can be
applied (``Layph acc. inc.`` in Figure 11b accumulates exactly this way).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.backends import is_numpy_backend
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import FactorAdjacency
from repro.engine.runner import BatchResult, run_batch
from repro.graph.csr_cache import CSRCache
from repro.graph.delta import GraphDelta
from repro.graph.footprint import DeltaFootprint, footprint_enabled
from repro.graph.graph import Graph


@dataclass
class IncrementalResult:
    """Outcome of one ``apply_delta`` call."""

    states: Dict[int, float]
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    phases: PhaseTimer = field(default_factory=PhaseTimer)
    wall_seconds: float = 0.0


class IncrementalEngine(abc.ABC):
    """Base class for incremental graph-processing engines."""

    #: registry name used in benchmark output
    name: str = "engine"
    #: which algorithm family this engine can run: "selective", "accumulative"
    #: or "any".
    supported_family: str = "any"

    def __init__(self, spec: AlgorithmSpec, backend: Optional[str] = None) -> None:
        self._check_supported(spec)
        self.spec = spec
        #: propagation backend (see :mod:`repro.engine.backends`); ``None``
        #: defers to the ``REPRO_BACKEND`` environment variable
        self.backend = backend
        #: compiled-CSR cache of this engine's graph (see
        #: :mod:`repro.graph.csr_cache`); kept in sync with applied deltas
        #: through :meth:`_update_graph`
        self.csr_cache = CSRCache()
        self.graph: Optional[Graph] = None
        self.states: Dict[int, float] = {}
        self.initial_metrics: Optional[ExecutionMetrics] = None
        #: shared per-delta footprint (see :mod:`repro.graph.footprint`),
        #: rebuilt by :meth:`_update_graph` on every delta; ``None`` when the
        #: ``REPRO_DELTA_FOOTPRINT=0`` escape hatch is set (the engines then
        #: run their original per-engine scans, which remain the reference)
        self.footprint: Optional[DeltaFootprint] = None
        #: attached durable store (see :mod:`repro.storage`); every applied
        #: delta is logged to it and periodically compacted into a snapshot
        self._store = None
        #: the :class:`repro.storage.store.RestoreReport` of the restore that
        #: produced this engine, if any
        self.last_restore_report = None

    # ------------------------------------------------------------------
    @classmethod
    def supports(cls, spec: AlgorithmSpec) -> bool:
        """Whether this engine can execute ``spec``."""
        if cls.supported_family == "any":
            return True
        if cls.supported_family == "selective":
            return spec.is_selective()
        return not spec.is_selective()

    def _check_supported(self, spec: AlgorithmSpec) -> None:
        if not self.supports(spec):
            raise ValueError(
                f"{type(self).__name__} does not support {spec.name!r}: "
                f"it only handles {self.supported_family} algorithms "
                "(mirroring the limitation reported in the paper, Section VI-A)"
            )

    # ------------------------------------------------------------------
    def initialize(self, graph: Graph) -> BatchResult:
        """Run the batch computation on ``graph`` and memoize its result."""
        self.graph = graph.copy()
        result = self._initial_run(self.graph)
        self.states = dict(result.states)
        self.initial_metrics = result.metrics
        self._maybe_autosave()
        return result

    def _initial_run(self, graph: Graph) -> BatchResult:
        """Batch run hook; engines override it to memoize extra structures."""
        return run_batch(
            self.spec,
            graph,
            backend=self.backend,
            adjacency=self._propagation_adjacency(graph),
        )

    # ------------------------------------------------------------------
    def apply_delta(
        self, delta: GraphDelta, log_meta: Optional[dict] = None
    ) -> IncrementalResult:
        """Incrementally update the memoized result for ``delta``.

        ``log_meta`` is an optional annotation stored on the durable log
        record of this delta (the streaming service stamps the WAL event
        range it covers).  A persistence failure (``OSError``, e.g. disk
        full) degrades to a :class:`RuntimeWarning` and skips the log/
        compaction step instead of crashing the apply: the in-memory result
        is already correct, and the WAL above this layer (or the next
        successful compaction) remains the durability story.
        """
        if self.graph is None:
            raise RuntimeError("initialize() must be called before apply_delta()")
        start = time.perf_counter()
        result = self._apply_delta(delta)
        result.wall_seconds = time.perf_counter() - start
        self.states = dict(result.states)
        store = self._store
        if store is not None:
            import warnings

            try:
                store.log_delta(delta, self.graph.version, meta=log_meta)
                if store.compaction_due():
                    store.save(self)
            except OSError as error:
                warnings.warn(
                    f"durable store {store.directory}: persistence failed "
                    f"({error}); delta applied in memory only",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return result

    @abc.abstractmethod
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        """Engine-specific incremental adjustment."""

    # ------------------------------------------------------------------
    # durable storage (see repro.storage; imports stay lazy because the
    # storage package's restore path imports the engine registry)
    # ------------------------------------------------------------------
    def save(self, directory: str, compact_every: Optional[int] = None):
        """Persist the engine to ``directory`` and attach the store.

        Once attached, every subsequent ``apply_delta`` appends one fsync'd
        log record, and ``compact_every`` records trigger an automatic
        re-save (compaction).  Returns the attached
        :class:`repro.storage.store.EngineStore`, or ``None`` when the
        ``REPRO_STORE=0`` escape hatch disables all persistence.
        """
        from repro.storage import storage_enabled
        from repro.storage.store import EngineStore

        if not storage_enabled():
            return None
        target = self._storage_target()
        store = target._store
        if store is None or store.directory != directory:
            if store is not None:
                store.close()
            store = EngineStore(directory, compact_every=compact_every)
            target._store = store
        store.save(self)
        return store

    @classmethod
    def restore(cls, directory: str, mmap: bool = False) -> "IncrementalEngine":
        """Rebuild an engine from a store directory (warm when possible).

        Convenience wrapper around
        :func:`repro.storage.store.restore_engine`; the recovery-path report
        is available as ``engine.last_restore_report``.
        """
        from repro.storage.store import restore_engine

        engine, _report = restore_engine(directory, mmap=mmap)
        return engine

    def _maybe_autosave(self) -> None:
        """Autosave hook of ``initialize`` (the ``REPRO_STORE_AUTOSAVE`` leg).

        Saves the freshly initialized engine to a temporary store directory
        so the whole test suite exercises the log/snapshot machinery.  Never
        fires during a restore (the demote path re-initializes through here)
        or when a store is already attached.
        """
        from repro.storage import autosave_enabled

        if self._store is not None or not autosave_enabled():
            return
        from repro.storage.store import restoring_active

        if restoring_active():
            return
        import tempfile
        import warnings

        try:
            self.save(tempfile.mkdtemp(prefix="repro-store-"))
        except OSError as error:
            warnings.warn(
                f"autosave failed ({error}); continuing without a store",
                RuntimeWarning,
                stacklevel=2,
            )

    def _storage_target(self) -> "IncrementalEngine":
        """The engine object that owns the persisted state (facades override)."""
        return self

    def _post_restore_sync(self) -> None:
        """Hook run after a warm restore installed state (facades override)."""

    def _snapshot_extras(self):
        """Engine-specific snapshot halves: ``(json_meta, numpy_arrays)``.

        Overridden by engines with cross-delta derived state (memo tables,
        dependency forests, Layph's layered skeleton).  The arrays end up in
        the snapshot ``.npz`` under the ``extras/`` prefix.
        """
        return {}, {}

    def _restore_extras(self, meta: dict, arrays) -> None:
        """Reinstall :meth:`_snapshot_extras` output after a warm restore."""

    # ------------------------------------------------------------------
    def _require_graph(self) -> Graph:
        if self.graph is None:
            raise RuntimeError("initialize() must be called first")
        return self.graph

    # ------------------------------------------------------------------
    # CSR-cache plumbing shared by the concrete engines
    # ------------------------------------------------------------------
    def _update_graph(self, delta: GraphDelta) -> Graph:
        """Apply ``delta`` to the engine's graph, keeping the CSR cache in sync.

        The cached factor CSR snapshots are patched in place (see
        :meth:`repro.graph.csr_cache.CSRCache.apply_delta`), so a sequence of
        deltas compiles the CSR once instead of once per ``propagate`` call.
        The shared :class:`repro.graph.footprint.DeltaFootprint` of this delta
        is installed as :attr:`footprint` (borrowing the old/new snapshots the
        cache already holds — never forcing a compile), so every downstream
        scan of the same delta shares one result.  Returns the updated graph,
        which is also installed as ``self.graph``.
        """
        old_graph = self._require_graph()
        new_graph = delta.apply(old_graph)
        spec = self.spec
        build_footprint = footprint_enabled()
        if build_footprint:
            old_out = self.csr_cache.peek_csr("out", spec, old_graph)
            old_in = self.csr_cache.peek_csr("in", spec, old_graph)
        self.csr_cache.apply_delta(spec, old_graph, new_graph, delta)
        if build_footprint:
            new_out = (
                self.csr_cache.peek_csr("out", spec, new_graph)
                if old_out is not None
                else None
            )
            new_in = (
                self.csr_cache.peek_csr("in", spec, new_graph)
                if old_in is not None
                else None
            )
            self.footprint = DeltaFootprint(
                spec,
                old_graph,
                new_graph,
                delta,
                old_out_csr=old_out,
                new_out_csr=new_out,
                old_in_csr=old_in,
                new_in_csr=new_in,
            )
        else:
            self.footprint = None
        self.graph = new_graph
        return new_graph

    def _vertex_membership_diff(self, old_graph: Graph, new_graph: Graph):
        """``(added_vertices, removed_vertices)`` between two graph versions.

        Served from the delta footprint in O(delta) when one is current
        (only a vertex named by the delta can change membership); falls back
        to the two O(V) membership scans the engines originally ran.
        """
        footprint = self.footprint
        if (
            footprint is not None
            and footprint.old_graph is old_graph
            and footprint.new_graph is new_graph
        ):
            return set(footprint.added_vertices), set(footprint.removed_vertices)
        added = {v for v in new_graph.vertices() if not old_graph.has_vertex(v)}
        removed = {v for v in old_graph.vertices() if not new_graph.has_vertex(v)}
        return added, removed

    def _propagation_adjacency(self, graph: Graph):
        """Factor adjacency of ``graph`` for full-graph propagation.

        Under the numpy backend this returns the cache-backed view (the
        vectorized loop then reuses the compiled/patched CSR directly);
        otherwise the materialised :class:`FactorAdjacency`, which is what
        the Python loop iterates fastest.
        """
        if self.csr_cache.enabled and is_numpy_backend(self.backend):
            return self.csr_cache.adjacency(self.spec, graph)
        return FactorAdjacency.from_graph(self.spec, graph)

    def _revision_out_csr(self, graph: Graph):
        """Cached out-edge factor CSR for vectorized revision deduction.

        :func:`repro.incremental.revision.accumulative_revision_messages`
        deduces cancellation/compensation messages with array ops when it is
        handed the out-edge CSR snapshots of both graph versions (call this
        once *before* :meth:`_update_graph` for the old graph and once after
        for the new one).  Returns ``None`` — the caller then stays on the
        dict reference — when the numpy backend is not selected or the CSR
        cache is disabled (a fresh O(V+E) compile per delta would cost more
        than the dict scan it replaces).
        """
        if not is_numpy_backend(self.backend):
            return None
        if not self.csr_cache.enabled:
            return None
        return self.csr_cache.out_csr(self.spec, graph)
