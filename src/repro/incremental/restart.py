"""The Restart baseline: recompute the updated graph from scratch.

This is the "Restart" system of Figure 1 — it ignores every memoized result
and simply reruns the batch computation on ``G ⊕ ΔG``.
"""

from __future__ import annotations

from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.incremental.base import IncrementalEngine, IncrementalResult


class RestartEngine(IncrementalEngine):
    """Recompute from scratch after every delta."""

    name = "restart"
    supported_family = "any"

    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        graph = self._require_graph()
        self.graph = delta.apply(graph)
        result = run_batch(self.spec, self.graph, backend=self.backend)
        return IncrementalResult(states=result.states, metrics=result.metrics)
