"""The Restart baseline: recompute the updated graph from scratch.

This is the "Restart" system of Figure 1 — it ignores every memoized result
and simply reruns the batch computation on ``G ⊕ ΔG``.
"""

from __future__ import annotations

from repro.engine.runner import run_batch
from repro.graph.delta import GraphDelta
from repro.incremental.base import IncrementalEngine, IncrementalResult


class RestartEngine(IncrementalEngine):
    """Recompute from scratch after every delta."""

    name = "restart"
    supported_family = "any"

    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        new_graph = self._update_graph(delta)
        result = run_batch(
            self.spec,
            new_graph,
            backend=self.backend,
            adjacency=self._propagation_adjacency(new_graph),
        )
        return IncrementalResult(states=result.states, metrics=result.metrics)
