"""RisGraph-style incremental engine (Feng et al., SIGMOD'21).

RisGraph keeps one recorded dependency parent per vertex and classifies every
unit update as *safe* (provably requires no propagation: an insertion that
does not improve its target, or a deletion of a non-supporting edge) or
*unsafe*.  Safe updates are absorbed in O(1); unsafe updates trigger a
localized trim-and-propagate identical in spirit to Ingress's
memoization-path policy, which is why the paper calls the two comparable.

Only selective algorithms are supported (the single-dependency requirement
the paper mentions in Section VI-A).

The engine is a thin policy over the shared dependency machinery: the
safe/unsafe classification reads the recorded parent from whichever store is
live, and under the numpy backend the single-parent taint is a level-ordered
sweep over the dense :class:`repro.incremental.dep_table.DepTable`'s parent
array (``REPRO_DEP_DENSE=0`` falls back to the dict reference).
"""

from __future__ import annotations

from repro.incremental.selective_base import SelectiveDependencyEngine


class RisGraphEngine(SelectiveDependencyEngine):
    """Single-parent dependency tree with safe/unsafe classification."""

    name = "risgraph"
    tainting = "tree"
    classify_safe_updates = True
