"""Dependency tracking for selective (monotone) algorithms.

KickStarter, RisGraph and Ingress's memoization-path policy all maintain the
value dependencies of converged selective computations (SSSP, BFS): which
in-edge "won" the aggregation at each vertex.  When an edge a vertex depends
on disappears (or its weight grows), the vertex — and transitively everything
built on it — may hold an invalid value and must be *trimmed* back to a safe
approximation before propagation resumes.

Two tagging granularities are provided:

* ``single_parent`` — each vertex records exactly one winning in-neighbor
  (a dependency *tree*); trimming resets only true dependents.  This is the
  precise policy of RisGraph and Ingress.
* ``dag`` — a vertex is treated as dependent on *every* in-neighbor that
  offers its converged value (the shortest-path DAG); trimming resets the
  whole DAG reachable from the invalidated edge.  This conservative policy
  models KickStarter's coarser approximation trimming and is what makes it
  activate more edges than the other two systems in Figures 1 and 6.

This module is the *dict reference* of the selective subsystem: it defines
the semantics, runs under the Python backend, and backs the
``REPRO_DEP_DENSE=0`` escape hatch.  Under the numpy backend the same
operations run as array kernels over the dense
:class:`repro.incremental.dep_table.DepTable`, bitwise identical to these
loops.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph


def compute_parents(
    spec: AlgorithmSpec,
    graph: Graph,
    states: Dict[int, float],
    vertices: Optional[Iterable[int]] = None,
    parents: Optional[Dict[int, Optional[int]]] = None,
) -> Dict[int, Optional[int]]:
    """Compute (or refresh) the winning in-neighbor of each vertex.

    ``parents[v]`` is an in-neighbor ``u`` with
    ``combine(x_u, w_{u,v}) == x_v``, or ``None`` when the vertex holds its
    initial value (the source, or an unreached vertex).
    """
    if parents is None:
        parents = {}
    identity = spec.aggregate_identity()
    targets = graph.vertices() if vertices is None else vertices
    for vertex in targets:
        if not graph.has_vertex(vertex):
            parents.pop(vertex, None)
            continue
        state = states.get(vertex, identity)
        parent: Optional[int] = None
        # A vertex only needs a parent when its value came from an in-edge:
        # not the identity (unreached) and not its own root value (source).
        if state != identity and state != spec.initial_state(vertex):
            for in_neighbor in graph.in_neighbors(vertex):
                candidate_state = states.get(in_neighbor, identity)
                if candidate_state == identity:
                    continue
                offered = spec.combine(
                    candidate_state, spec.edge_factor(graph, in_neighbor, vertex)
                )
                if offered == state:
                    parent = in_neighbor
                    break
        parents[vertex] = parent
    return parents


def dependents_single_parent(
    parents: Dict[int, Optional[int]],
    graph: Graph,
    roots: Set[int],
) -> Set[int]:
    """All vertices whose dependency-tree path passes through ``roots``."""
    children: Dict[int, List[int]] = {}
    for vertex, parent in parents.items():
        if parent is not None:
            children.setdefault(parent, []).append(vertex)
    tainted: Set[int] = set()
    queue = deque(root for root in roots if graph.has_vertex(root))
    while queue:
        vertex = queue.popleft()
        if vertex in tainted:
            continue
        tainted.add(vertex)
        for child in children.get(vertex, []):
            if child not in tainted:
                queue.append(child)
    return tainted


def dependents_dag(
    spec: AlgorithmSpec,
    graph: Graph,
    states: Dict[int, float],
    roots: Set[int],
) -> Set[int]:
    """All vertices reachable from ``roots`` along value-supporting edges.

    An edge ``(u, v)`` supports ``v`` when ``combine(x_u, w_{u,v}) == x_v``;
    following every supporting edge (instead of a single chosen parent)
    over-approximates the affected region, which is the conservative tagging
    KickStarter's trimming corresponds to.
    """
    identity = spec.aggregate_identity()
    tainted: Set[int] = set()
    queue = deque(root for root in roots if graph.has_vertex(root))
    while queue:
        vertex = queue.popleft()
        if vertex in tainted:
            continue
        tainted.add(vertex)
        vertex_state = states.get(vertex, identity)
        for target in graph.out_neighbors(vertex):
            if target in tainted:
                continue
            target_state = states.get(target, identity)
            if target_state == identity:
                continue
            offered = spec.combine(
                vertex_state, spec.edge_factor(graph, vertex, target)
            )
            if offered == target_state:
                queue.append(target)
    return tainted


def trim_and_seed(
    spec: AlgorithmSpec,
    graph: Graph,
    states: Dict[int, float],
    tainted: Set[int],
) -> Dict[int, float]:
    """Reset tainted vertices and seed their recovery (trimmed approximation).

    Every tainted vertex is reset to the aggregate identity (``⊥``/``inf``),
    then re-seeded with the best value offered by its *non-tainted*
    in-neighbors plus its own root message.  The returned pending map restarts
    propagation; Theorem-style safety holds because selective algorithms are
    monotone from above once invalid values have been discarded.
    """
    identity = spec.aggregate_identity()
    pending: Dict[int, float] = {}
    for vertex in tainted:
        states[vertex] = identity
    for vertex in tainted:
        if not graph.has_vertex(vertex):
            continue
        best = spec.initial_message(vertex)
        for in_neighbor in graph.in_neighbors(vertex):
            if in_neighbor in tainted:
                continue
            neighbor_state = states.get(in_neighbor, identity)
            if neighbor_state == identity:
                continue
            offered = spec.combine(
                neighbor_state, spec.edge_factor(graph, in_neighbor, vertex)
            )
            best = spec.aggregate(best, offered)
        if spec.is_significant(best):
            pending[vertex] = spec.aggregate(pending.get(vertex, identity), best)
    return pending
