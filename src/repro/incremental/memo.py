"""Dense memoization tables for the per-iteration BSP engines.

GraphBolt and DZiG memoize the aggregated vertex values of *every* BSP
iteration.  The original store — ``List[Dict[int, float]]`` — makes each
superstep pay a Python-level ``dict(zip(ids, values.tolist()))``
materialisation and each refinement pull an ``np.fromiter`` walk over those
dicts, which the ROADMAP names as the refinement bottleneck after the PR 2
CSR cache.  :class:`MemoTable` replaces the dict store with one 2-D float64
matrix:

* row ``i`` holds iteration ``i``'s value for every vertex, keyed by the
  dense vertex index of the engine's cached in-edge factor CSR (the same
  ``sorted(graph.vertices())`` index space :mod:`repro.graph.csr_cache`
  maintains), so refinement pulls become pure ``matrix[i-1][sources]``
  gathers and ``matrix[i][rows] = values`` scatters;
* rows are appended with amortized-doubling growth, so a batch run of ``k``
  supersteps costs O(k·V) array writes and zero dict churn;
* ``NaN`` marks an absent vertex (a column the current graph does not
  populate), mirroring a missing key in the dict store;
* when a delta adds or removes vertices, :meth:`MemoTable.remap` moves the
  surviving columns to the new CSR index space with one gather (and fills
  brand-new columns across all levels), reusing
  :attr:`repro.graph.graph.Graph.version` for staleness introspection the
  same way :func:`repro.graph.csr_cache.master_factor_csr` keys its memo.

The dict-backed loops in :mod:`repro.incremental.graphbolt` remain the
metric-identical reference: they run under the Python backend, whenever the
in-edge CSR is unavailable (NaN factors, exotic algebra), and when the
``REPRO_MEMO_DENSE=0`` escape hatch is set.  The property tests in
``tests/test_properties.py`` pin the dense store to the reference bitwise —
iterations, states, rounds and edge activations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.engine.backends import (  # noqa: F401 (re-export: the knob lives
    MEMO_DENSE_ENV_VAR,  # with the other backend env vars)
    memo_dense_enabled,
)


def refinement_preamble(csr_cache, spec, graph, csr, structurally_dirty):
    """Shared preamble of the dense-refinement loops (GraphBolt and DZiG).

    Both engines start an array-native refinement the same way: fetch the
    cached out-edge factor CSR of the current graph (frontier assembly walks
    out-neighbors of changed rows) and scatter the structurally-dirty vertex
    ids into a boolean row mask over the in-edge CSR's dense index space.
    Extracting it here keeps the two engines from drifting apart.

    Args:
        csr_cache: the engine's :class:`repro.graph.csr_cache.CSRCache`.
        spec: the algorithm spec.
        graph: the engine's current (post-delta) graph.
        csr: the cached *in-edge* factor CSR the memo table is keyed by.
        structurally_dirty: vertex ids whose incoming factor map changed.

    Returns:
        ``(out_csr, dirty_mask)`` — the cached out-edge CSR and the dirty
        row mask (``dirty_mask[csr.index[v]]`` for every dirty ``v``).
    """
    out_csr = csr_cache.out_csr(spec, graph)
    dirty_mask = np.zeros(csr.num_vertices, dtype=bool)
    if structurally_dirty:
        dirty_mask[
            np.fromiter(
                (csr.index[v] for v in structurally_dirty),
                np.int64,
                count=len(structurally_dirty),
            )
        ] = True
    return out_csr, dirty_mask


class MemoRow:
    """Mapping-style view of one :class:`MemoTable` row.

    Exposes the tiny dict surface the sparse (delta-sized) refinement loops
    read and write — ``get``/``__setitem__``/``__contains__`` — against the
    underlying matrix row, with ``NaN`` translating to "absent" exactly like
    a missing dict key.  The delta-sized loops stay Python by design (see the
    README coverage table); this view lets them run on the dense store
    without materialising a dict per iteration.
    """

    __slots__ = ("values", "index")

    def __init__(self, values: np.ndarray, index: Mapping[int, int]) -> None:
        self.values = values
        self.index = index

    def get(self, vertex: int, default: Optional[float] = None) -> Optional[float]:
        position = self.index.get(vertex)
        if position is None:
            return default
        value = self.values[position]
        if value != value:  # NaN column: vertex absent at this level
            return default
        return float(value)

    def __contains__(self, vertex: int) -> bool:
        position = self.index.get(vertex)
        if position is None:
            return False
        value = self.values[position]
        return value == value

    def __setitem__(self, vertex: int, value: float) -> None:
        self.values[self.index[vertex]] = value


class MemoTable:
    """Dense per-iteration memoization store (one matrix row per iteration).

    The column space is the dense vertex index of the engine's cached in-edge
    CSR; ``graph_version`` records the :attr:`Graph.version` the columns were
    last synchronized against (introspection only — the authoritative sync
    check is the id-list comparison the engines perform against the CSR).
    """

    __slots__ = ("vertex_ids", "index", "num_levels", "graph_version", "_matrix")

    def __init__(
        self,
        vertex_ids: Sequence[int],
        index: Optional[Mapping[int, int]] = None,
        graph_version: Optional[int] = None,
        capacity: int = 8,
    ) -> None:
        self.vertex_ids: List[int] = list(vertex_ids)
        self.index: Mapping[int, int] = (
            index
            if index is not None
            else {vertex: position for position, vertex in enumerate(self.vertex_ids)}
        )
        self.num_levels = 0
        self.graph_version = graph_version
        self._matrix = np.full(
            (max(int(capacity), 1), len(self.vertex_ids)), np.nan, dtype=np.float64
        )

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of columns (vertices in the dense index space)."""
        return len(self.vertex_ids)

    @property
    def capacity(self) -> int:
        """Currently allocated level capacity (grows by doubling)."""
        return int(self._matrix.shape[0])

    def __len__(self) -> int:
        return self.num_levels

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    def _ensure_capacity(self, levels: int) -> None:
        capacity = self._matrix.shape[0]
        if levels <= capacity:
            return
        while capacity < levels:
            capacity *= 2
        grown = np.full((capacity, self.num_vertices), np.nan, dtype=np.float64)
        grown[: self.num_levels] = self._matrix[: self.num_levels]
        self._matrix = grown

    def append(self, values: np.ndarray) -> np.ndarray:
        """Append one iteration row (copied in); returns the stored row view."""
        self._ensure_capacity(self.num_levels + 1)
        self._matrix[self.num_levels, :] = values
        self.num_levels += 1
        return self._matrix[self.num_levels - 1]

    def append_copy_of(self, level: int) -> np.ndarray:
        """Append a copy of an existing level (the beyond-memo-range seed)."""
        return self.append(self.row(level))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def row(self, level: int) -> np.ndarray:
        """Writable array view of one level (negative levels count from the end)."""
        if level < 0:
            level += self.num_levels
        if not 0 <= level < self.num_levels:
            raise IndexError(f"level {level} out of range (0..{self.num_levels - 1})")
        return self._matrix[level]

    def row_view(self, level: int) -> MemoRow:
        """Dict-style view of one level for the delta-sized Python loops."""
        return MemoRow(self.row(level), self.index)

    def level_dict(self, level: int) -> Dict[int, float]:
        """One level exported as a ``{vertex: value}`` dict (NaN columns skipped)."""
        values = self.row(level)
        return {
            vertex: float(values[position])
            for position, vertex in enumerate(self.vertex_ids)
            if values[position] == values[position]
        }

    def to_dicts(self) -> List[Dict[int, float]]:
        """Every level exported as dicts — the dict-reference representation."""
        return [self.level_dict(level) for level in range(self.num_levels)]

    def copy(self) -> "MemoTable":
        """Snapshot of the live levels (used by DZiG's pre-delta baseline)."""
        clone = MemoTable(
            self.vertex_ids,
            self.index,
            graph_version=self.graph_version,
            capacity=max(self.num_levels, 1),
        )
        clone._matrix[: self.num_levels] = self._matrix[: self.num_levels]
        clone.num_levels = self.num_levels
        return clone

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def remap(
        self,
        new_vertex_ids: Sequence[int],
        new_index: Mapping[int, int],
        fill: Mapping[int, float],
        graph_version: Optional[int] = None,
    ) -> None:
        """Move the table to a new dense index space after a vertex delta.

        Surviving columns are gathered into their new positions; columns of
        removed vertices are dropped; columns of ``fill`` vertices (the
        delta's additions) are set to the given value at *every* level —
        exactly the dict reference's ``_prepare_iteration_zero`` behaviour.
        Any new column not covered by ``fill`` stays ``NaN`` (absent).
        """
        n_new = len(new_vertex_ids)
        old_index = self.index
        gather = np.fromiter(
            (old_index.get(vertex, -1) for vertex in new_vertex_ids),
            np.int64,
            count=n_new,
        )
        matrix = np.full((self.capacity, n_new), np.nan, dtype=np.float64)
        if self.num_levels:
            kept = gather >= 0
            matrix[: self.num_levels, kept] = self._matrix[
                : self.num_levels, gather[kept]
            ]
            for vertex, value in fill.items():
                position = new_index.get(vertex)
                if position is not None:
                    matrix[: self.num_levels, position] = value
        self.vertex_ids = list(new_vertex_ids)
        self.index = new_index
        self._matrix = matrix
        if graph_version is not None:
            self.graph_version = graph_version

    def matches_ids(self, vertex_ids: Iterable[int]) -> bool:
        """Whether the table's column space equals ``vertex_ids`` (in order)."""
        return self.vertex_ids == list(vertex_ids)
