"""Ingress-style incremental engine (Gong et al., VLDB'21).

Ingress automatically selects a memoization policy from the algorithm's
algebraic properties:

* **memoization-path** for selective algorithms (SSSP, BFS): a single-parent
  dependency tree, trimmed and re-propagated after deletions — the same
  policy RisGraph implements, minus the per-update classification;
* **memoization-free** for accumulative invertible algorithms (PageRank,
  PHP): cancellation and compensation messages deduced directly from the
  converged states (:mod:`repro.incremental.revision`), then propagated with
  the ordinary delta-accumulative loop.

Layph is implemented on top of this engine, exactly as in the paper
(Section VI: "We implement Layph on top of Ingress").
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import propagate
from repro.graph.delta import GraphDelta
from repro.incremental.base import IncrementalEngine, IncrementalResult
from repro.incremental.revision import (
    accumulative_revision_messages,
    changed_out_sources,
)
from repro.incremental.selective_base import SelectiveDependencyEngine


class _IngressPathEngine(SelectiveDependencyEngine):
    """Memoization-path policy used for selective algorithms."""

    name = "ingress"
    tainting = "tree"
    classify_safe_updates = False


class _IngressFreeEngine(IncrementalEngine):
    """Memoization-free policy used for accumulative algorithms."""

    name = "ingress"
    supported_family = "accumulative"

    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        spec = self.spec
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()

        with phases.phase("graph update"):
            # Snapshot the pre-delta out-edge CSR before the cache is patched
            # forward: the vectorized revision deduction reads the old factors
            # from it (the patched arrays are new objects, so the snapshot
            # stays valid).
            old_csr = self._revision_out_csr(old_graph)
            new_graph = self._update_graph(delta)
            new_csr = self._revision_out_csr(new_graph) if old_csr is not None else None

        states = dict(self.states)

        with phases.phase("revision deduction"):
            # The shared delta footprint owns the changed-source scan and the
            # vertex-membership diff (computed once per delta in
            # ``_update_graph``); without it (``REPRO_DELTA_FOOTPRINT=0``) the
            # original per-call scans below remain the reference.
            footprint = self.footprint
            if footprint is not None:
                changed = footprint.changed_sources
                added = footprint.added_vertices
                removed = footprint.removed_vertices
            else:
                touched_sources = delta.touched_sources(old_graph)
                changed = changed_out_sources(old_graph, new_graph, touched_sources)
                added = removed = None
            pending, added_vertices, removed_vertices = accumulative_revision_messages(
                spec,
                old_graph,
                new_graph,
                states,
                changed=changed,
                old_csr=old_csr,
                new_csr=new_csr,
                added_vertices=added,
                removed_vertices=removed,
            )
            # Deducing each contribution difference evaluates F once per
            # affected out-edge; count that work as edge activations.
            metrics.edge_activations += sum(
                max(
                    old_graph.out_degree(v) if old_graph.has_vertex(v) else 0,
                    new_graph.out_degree(v) if new_graph.has_vertex(v) else 0,
                )
                for v in changed
            )
            for vertex in removed_vertices:
                states.pop(vertex, None)
            for vertex in added_vertices:
                states[vertex] = spec.initial_state(vertex)

        with phases.phase("propagation"):
            adjacency = self._propagation_adjacency(new_graph)
            propagate(spec, adjacency, states, pending, metrics, backend=self.backend)

        return IncrementalResult(states=states, metrics=metrics, phases=phases)


class IngressEngine(IncrementalEngine):
    """Facade that picks the memoization policy from the algorithm family."""

    name = "ingress"
    supported_family = "any"

    def __init__(self, spec: AlgorithmSpec, backend: Optional[str] = None) -> None:
        super().__init__(spec, backend=backend)
        if spec.is_selective():
            self._delegate: IncrementalEngine = _IngressPathEngine(spec, backend=backend)
        else:
            self._delegate = _IngressFreeEngine(spec, backend=backend)
        # expose the delegate's CSR cache (the facade itself never propagates)
        self.csr_cache = self._delegate.csr_cache

    @property
    def policy(self) -> str:
        """Which memoization policy was selected for the algorithm."""
        return (
            "memoization-path"
            if isinstance(self._delegate, _IngressPathEngine)
            else "memoization-free"
        )

    def initialize(self, graph):
        result = self._delegate.initialize(graph)
        self.graph = self._delegate.graph
        self.states = dict(self._delegate.states)
        self.initial_metrics = self._delegate.initial_metrics
        return result

    def apply_delta(
        self, delta: GraphDelta, log_meta: Optional[dict] = None
    ) -> IncrementalResult:
        result = self._delegate.apply_delta(delta, log_meta=log_meta)
        self.graph = self._delegate.graph
        self.states = dict(self._delegate.states)
        return result

    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:  # pragma: no cover
        raise NotImplementedError("IngressEngine delegates apply_delta")

    # ------------------------------------------------------------------
    # durable storage: the delegate owns every piece of persisted state, so
    # the store attaches there (its log hook fires inside the delegate's
    # ``apply_delta``) and the facade just re-syncs its mirror fields.
    # ------------------------------------------------------------------
    def _storage_target(self) -> IncrementalEngine:
        return self._delegate

    def _post_restore_sync(self) -> None:
        self.graph = self._delegate.graph
        self.states = dict(self._delegate.states)
        self.initial_metrics = self._delegate.initial_metrics
