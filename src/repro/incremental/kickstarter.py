"""KickStarter-style incremental engine (Vora et al., ASPLOS'17).

KickStarter maintains value dependencies for monotone selective algorithms
and, after deletions, trims the affected values back to safe approximations
before resuming propagation.  Its tagging is conservative: the affected
region is the whole value-dependence DAG reachable from an invalidated edge,
which is why it activates more edges than RisGraph or Ingress in the paper's
Figures 1 and 6 — the ordering this reproduction preserves.

Like the original system it only supports selective algorithms (SSSP, BFS);
PageRank/PHP raise ``ValueError`` exactly as the paper notes in Section VI-A.

The engine is a thin policy over the shared dependency machinery: under the
numpy backend the DAG taint runs as a mask-based frontier walk on the cached
out-edge CSR of the dense :class:`repro.incremental.dep_table.DepTable`
(``REPRO_DEP_DENSE=0`` falls back to the dict reference).
"""

from __future__ import annotations

from repro.incremental.selective_base import SelectiveDependencyEngine


class KickStarterEngine(SelectiveDependencyEngine):
    """Dependency-DAG trimming with conservative tagging."""

    name = "kickstarter"
    tainting = "dag"
    classify_safe_updates = False
