"""GraphBolt-style incremental engine (Mariappan & Vora, EuroSys'19).

GraphBolt memoizes the *per-iteration* aggregated values of a synchronous
(BSP) execution and, after a delta, refines the memoized iterations one by
one: a vertex is re-aggregated at iteration ``i`` when any of its in-neighbors
changed at iteration ``i-1`` or its in-edges changed, and the re-aggregation
pulls **all** of its in-edges.  This pull-everything refinement is what makes
GraphBolt activate far more edges than Ingress (Figure 6), while still being
much cheaper than a restart.

The synchronous fixed-point iteration
``x^i_v = m^0_v + Σ_{(u,v)} combine(x^{i-1}_u, f_{u,v})`` converges to the same
fixed point as the asynchronous delta-accumulative engine, so results from
all engines remain directly comparable.

Only accumulative algorithms are supported (PageRank, PHP), mirroring the
original system (the paper runs GraphBolt only on those two workloads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.runner import BatchResult
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental.base import IncrementalEngine, IncrementalResult

#: hard bound on refinement iterations, far above anything PR/PHP need
_MAX_ITERATIONS = 10_000


class GraphBoltEngine(IncrementalEngine):
    """Per-iteration dependency memoization with pull-based refinement."""

    name = "graphbolt"
    supported_family = "accumulative"

    def __init__(self, spec: AlgorithmSpec, backend: Optional[str] = None) -> None:
        # The BSP refinement below is not built on ``propagate``, so the
        # backend only reaches the (unused by default) batch-run hook; it is
        # still accepted for constructor uniformity across engines.
        super().__init__(spec, backend=backend)
        #: memoized per-iteration vertex values, ``iterations[i][v]``
        self.iterations: List[Dict[int, float]] = []

    # ------------------------------------------------------------------
    # batch phase: synchronous iterations with full memoization
    # ------------------------------------------------------------------
    def _initial_run(self, graph: Graph) -> BatchResult:
        spec = self.spec
        metrics = ExecutionMetrics()
        root = {vertex: spec.initial_message(vertex) for vertex in graph.vertices()}
        current = dict(root)
        self.iterations = [dict(current)]
        for _ in range(_MAX_ITERATIONS):
            following: Dict[int, float] = {}
            activations = 0
            max_change = 0.0
            for vertex in graph.vertices():
                if spec.absorbs(vertex):
                    following[vertex] = root[vertex]
                    continue
                total = root[vertex]
                for in_neighbor in graph.in_neighbors(vertex):
                    activations += 1
                    total = spec.aggregate(
                        total,
                        spec.combine(
                            current[in_neighbor],
                            spec.edge_factor(graph, in_neighbor, vertex),
                        ),
                    )
                following[vertex] = total
                max_change = max(max_change, abs(total - current[vertex]))
            metrics.record_round(activations, graph.num_vertices())
            self.iterations.append(following)
            current = following
            if max_change <= spec.tolerance():
                break
        return BatchResult(states=dict(current), metrics=metrics)

    # ------------------------------------------------------------------
    # incremental phase: iteration-by-iteration refinement
    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()

        with phases.phase("graph update"):
            new_graph = delta.apply(old_graph)
            self.graph = new_graph
            added_vertices = {
                v for v in new_graph.vertices() if not old_graph.has_vertex(v)
            }
            removed_vertices = {
                v for v in old_graph.vertices() if not new_graph.has_vertex(v)
            }

        with phases.phase("dependency refinement"):
            self._prepare_iteration_zero(new_graph, added_vertices, removed_vertices)
            structurally_dirty = self._structurally_dirty_targets(old_graph, new_graph)
            states = self._refine(
                new_graph,
                old_graph,
                structurally_dirty,
                set(added_vertices),
                metrics,
            )

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    # helpers shared with DZiG
    # ------------------------------------------------------------------
    def _prepare_iteration_zero(
        self, new_graph: Graph, added_vertices: Set[int], removed_vertices: Set[int]
    ) -> None:
        """Insert new vertices (root messages) and drop removed ones."""
        spec = self.spec
        for level in self.iterations:
            for vertex in removed_vertices:
                level.pop(vertex, None)
            for vertex in added_vertices:
                level[vertex] = spec.initial_message(vertex)

    def _structurally_dirty_targets(self, old_graph: Graph, new_graph: Graph) -> Set[int]:
        """Vertices whose incoming factor map changed (they must be
        re-aggregated at every refined iteration)."""
        spec = self.spec
        dirty: Set[int] = set()
        for vertex in new_graph.vertices():
            old_in = (
                {
                    u: spec.edge_factor(old_graph, u, vertex)
                    for u in old_graph.in_neighbors(vertex)
                }
                if old_graph.has_vertex(vertex)
                else None
            )
            new_in = {
                u: spec.edge_factor(new_graph, u, vertex)
                for u in new_graph.in_neighbors(vertex)
            }
            if old_in != new_in:
                dirty.add(vertex)
        return dirty

    def _changed_factor_sources(self, old_graph: Graph, new_graph: Graph) -> Set[int]:
        """Vertices whose outgoing factor map changed."""
        spec = self.spec
        changed: Set[int] = set()
        for vertex in set(old_graph.vertices()) | set(new_graph.vertices()):
            old_out = (
                {
                    t: spec.edge_factor(old_graph, vertex, t)
                    for t in old_graph.out_neighbors(vertex)
                }
                if old_graph.has_vertex(vertex)
                else {}
            )
            new_out = (
                {
                    t: spec.edge_factor(new_graph, vertex, t)
                    for t in new_graph.out_neighbors(vertex)
                }
                if new_graph.has_vertex(vertex)
                else {}
            )
            if old_out != new_out:
                changed.add(vertex)
        return changed

    def _pull_value(self, graph: Graph, previous: Dict[int, float], vertex: int) -> float:
        """Re-aggregate ``vertex`` from all of its in-edges (one full pull)."""
        spec = self.spec
        root = spec.initial_message(vertex)
        if spec.absorbs(vertex):
            return root
        total = root
        for in_neighbor in graph.in_neighbors(vertex):
            total = spec.aggregate(
                total,
                spec.combine(
                    previous.get(in_neighbor, spec.initial_message(in_neighbor)),
                    spec.edge_factor(graph, in_neighbor, vertex),
                ),
            )
        return total

    def _frontier(
        self, new_graph: Graph, structurally_dirty: Set[int], changed_prev: Set[int]
    ) -> Set[int]:
        """Vertices that must be re-aggregated at the current iteration."""
        spec = self.spec
        frontier = set(structurally_dirty)
        for vertex in changed_prev:
            if new_graph.has_vertex(vertex):
                frontier.update(new_graph.out_neighbors(vertex))
        return {
            v for v in frontier if new_graph.has_vertex(v) and not spec.absorbs(v)
        }

    # ------------------------------------------------------------------
    def _refine(
        self,
        new_graph: Graph,
        old_graph: Graph,
        structurally_dirty: Set[int],
        changed_prev: Set[int],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        """GraphBolt refinement: pull every in-edge of every frontier vertex.

        Within the memoized range a vertex counts as changed when its refined
        value differs from the memoized one (those memoized values fed the
        next memoized iteration); beyond the memoized range the comparison is
        against the previous refined iteration, i.e. ordinary convergence.
        """
        spec = self.spec
        # Refinement uses a tighter threshold than the convergence tolerance
        # so that the truncation of "unchanged" vertices does not accumulate
        # into a visible divergence from a from-scratch run.
        tolerance = spec.tolerance() * 0.1
        last_memo = len(self.iterations) - 1
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and not changed_prev:
                break
            frontier = self._frontier(new_graph, structurally_dirty, changed_prev)
            if not frontier:
                break
            if not in_memo_range:
                self.iterations.append(dict(self.iterations[iteration - 1]))
            previous = self.iterations[iteration - 1]
            level = self.iterations[iteration]
            activations = 0
            changed_now: Set[int] = set()
            for vertex in sorted(frontier):
                new_value = self._pull_value(new_graph, previous, vertex)
                activations += new_graph.in_degree(vertex)
                reference = level.get(vertex)
                if reference is None or abs(new_value - reference) > tolerance:
                    changed_now.add(vertex)
                level[vertex] = new_value
            metrics.record_round(activations, len(frontier))
            changed_prev = changed_now
            iteration += 1
        return dict(self.iterations[-1])
