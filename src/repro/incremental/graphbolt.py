"""GraphBolt-style incremental engine (Mariappan & Vora, EuroSys'19).

GraphBolt memoizes the *per-iteration* aggregated values of a synchronous
(BSP) execution and, after a delta, refines the memoized iterations one by
one: a vertex is re-aggregated at iteration ``i`` when any of its in-neighbors
changed at iteration ``i-1`` or its in-edges changed, and the re-aggregation
pulls **all** of its in-edges.  This pull-everything refinement is what makes
GraphBolt activate far more edges than Ingress (Figure 6), while still being
much cheaper than a restart.

The synchronous fixed-point iteration
``x^i_v = m^0_v + Σ_{(u,v)} combine(x^{i-1}_u, f_{u,v})`` converges to the same
fixed point as the asynchronous delta-accumulative engine, so results from
all engines remain directly comparable.

The memoized iterations live in one of two stores:

* the dict reference — ``List[Dict[int, float]]``, one dict per iteration —
  which the Python backend always uses and which defines the semantics;
* the dense :class:`repro.incremental.memo.MemoTable` — one float64 matrix
  row per iteration, keyed by the cached in-edge CSR's vertex index — which
  the numpy backend uses by default (``REPRO_MEMO_DENSE=0`` opts out).
  Batch supersteps append rows instead of materialising dicts, and frontier
  refinement becomes pure gather/scatter (no ``np.fromiter`` over dicts).
  Both stores are bitwise interchangeable; when the in-edge CSR becomes
  unavailable mid-run (e.g. a delta introduces NaN factors) the dense store
  demotes itself to the dict reference and refinement continues there.

Only accumulative algorithms are supported (PageRank, PHP), mirroring the
original system (the paper runs GraphBolt only on those two workloads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.backends import is_numpy_backend
from repro.engine.dense_propagation import AGGREGATE_SUM, COMBINE_MUL, classify_spec
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.runner import BatchResult
from repro.graph.csr import FactorCSR, expand_edges
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental.base import IncrementalEngine, IncrementalResult
from repro.incremental.memo import MemoTable, memo_dense_enabled, refinement_preamble
from repro.parallel.slabs import pull_rows

#: hard bound on refinement iterations, far above anything PR/PHP need
_MAX_ITERATIONS = 10_000

#: phase name of the per-delta structural scans (dirty targets / changed
#: factor sources); ``benchmarks/test_footprint_speedup.py`` times it
PHASE_SCAN = "delta scan"


class GraphBoltEngine(IncrementalEngine):
    """Per-iteration dependency memoization with pull-based refinement."""

    name = "graphbolt"
    supported_family = "accumulative"

    def __init__(self, spec: AlgorithmSpec, backend: Optional[str] = None) -> None:
        # ``backend="numpy"`` compiles the BSP pulls (batch iterations and
        # per-iteration refinement) onto the cached in-edge factor CSR; the
        # Python loops below remain the metric-identical reference.
        super().__init__(spec, backend=backend)
        #: dict-reference memoized iterations, ``_iterations[i][v]`` (empty
        #: while the dense store is active)
        self._iterations: List[Dict[int, float]] = []
        #: dense memoized-iteration store (numpy backend, REPRO_MEMO_DENSE=1)
        self.memo: Optional[MemoTable] = None
        #: ``(graph, version, in_csr)`` stash so one delta's prepare/refine
        #: pair costs a single ``_bsp_csr`` resolution (the NaN-factor gate
        #: scans the factor array)
        self._memo_csr: Optional[Tuple[Graph, int, FactorCSR]] = None
        #: ``(vertex_ids, root, keep_mask)`` stash: the root-message array and
        #: the non-absorbing mask are invariant for a given dense index space,
        #: so they are rebuilt only when the memo table is remapped
        self._dense_aux: Optional[Tuple[List[int], np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # memoized-iteration store
    # ------------------------------------------------------------------
    @property
    def iterations(self) -> List[Dict[int, float]]:
        """Memoized per-iteration vertex values as dicts.

        With the dense store active this materialises an export view (the
        property-test surface); internal code reads the matrix directly.
        """
        if self.memo is not None:
            return self.memo.to_dicts()
        return self._iterations

    @iterations.setter
    def iterations(self, value: List[Dict[int, float]]) -> None:
        self._iterations = value
        self.memo = None
        self._memo_csr = None
        self._dense_aux = None

    def _demote_memo(self) -> None:
        """Materialise the dense store back into the dict reference."""
        if self.memo is not None:
            self._iterations = self.memo.to_dicts()
            self.memo = None
        self._memo_csr = None
        self._dense_aux = None

    def adopt_baseline(self, other: "GraphBoltEngine") -> None:
        """Adopt another BSP engine's memoized batch baseline.

        GraphBolt and DZiG memoize the *same* per-iteration BSP values for a
        given spec and graph — only their refinement differs — so a harness
        that compares them (e.g. the ablation in
        ``benchmarks/test_ablations.py``) does not need to materialise the
        iteration store twice: initialize one engine, then let the other
        adopt its baseline.  The dense :class:`MemoTable` is shared as one
        matrix snapshot (:meth:`MemoTable.copy`), the dict reference as
        per-level dict copies; subsequent deltas on either engine leave the
        other's store untouched, and every post-delta result is bitwise
        identical to an independently initialized engine's.

        Both engines must run the same spec instance (the memoized values
        are functions of its algebra and parameters).
        """
        if other.spec is not self.spec:
            raise ValueError(
                "adopt_baseline requires both engines to share one spec "
                "instance; the memoized iterations are spec-dependent"
            )
        if other.graph is None:
            raise RuntimeError("the source engine must be initialized first")
        self.graph = other.graph.copy()
        self.states = dict(other.states)
        self.initial_metrics = other.initial_metrics
        self.csr_cache.clear()
        self.footprint = None
        if other.memo is not None:
            self._iterations = []
            self.memo = other.memo.copy()
        else:
            self._iterations = [dict(level) for level in other._iterations]
            self.memo = None
        self._memo_csr = None
        self._dense_aux = None

    # ------------------------------------------------------------------
    # durable snapshots (repro.storage)
    # ------------------------------------------------------------------
    def _snapshot_extras(self):
        from repro.storage.codecs import encode_iteration_dicts, encode_memo_table, pack

        if self.memo is not None:
            memo_meta, memo_arrays = encode_memo_table(self.memo)
            return {"store": "memo", "memo": memo_meta}, pack("memo", memo_arrays)
        iter_meta, iter_arrays = encode_iteration_dicts(self._iterations)
        return (
            {"store": "dicts", "iterations": iter_meta},
            pack("iterations", iter_arrays),
        )

    def _restore_extras(self, meta: dict, arrays) -> None:
        from repro.storage.codecs import decode_iteration_dicts, decode_memo_table, unpack

        # The per-delta stashes (``_memo_csr``, ``_dense_aux``) are lazy
        # derivations; leaving them unset reproduces a fresh engine exactly.
        self._memo_csr = None
        self._dense_aux = None
        if meta.get("store") == "memo":
            self.memo = decode_memo_table(meta["memo"], unpack("memo", arrays))
            self._iterations = []
        else:
            self.memo = None
            self._iterations = decode_iteration_dicts(
                meta["iterations"], unpack("iterations", arrays)
            )

    # ------------------------------------------------------------------
    # vectorization gates
    # ------------------------------------------------------------------
    def _algebra(self) -> Optional[Tuple[str, str]]:
        """Memoized ``classify_spec`` result (the spec's algebra is fixed)."""
        cached = getattr(self, "_algebra_cache", None)
        if cached is None or cached[0] is not self.spec:
            self._algebra_cache = (self.spec, classify_spec(self.spec))
        return self._algebra_cache[1]

    def _bsp_csr(self, graph: Graph) -> Optional[FactorCSR]:
        """In-edge factor CSR for vectorized pulls, or ``None`` to stay Python.

        Vectorized pulls need the numpy backend to be selected, an algebra
        the array ops can express (``classify_spec``), and NaN-free factors
        (the significance comparisons behave identically under NaN for pure
        sums, but the declared-algebra probe keeps the gate conservative).
        """
        if not is_numpy_backend(self.backend):
            return None
        kinds = self._algebra()
        if kinds is None or kinds[0] != AGGREGATE_SUM:
            return None
        csr = self.csr_cache.in_csr(self.spec, graph)
        if np.isnan(csr.factors).any():
            return None
        return csr

    def _stashed_bsp_csr(self, graph: Graph) -> Optional[FactorCSR]:
        """The in-edge CSR resolved earlier this delta, if still current."""
        stash = self._memo_csr
        if stash is not None and stash[0] is graph and stash[1] == graph.version:
            return stash[2]
        return None

    def _combine_arrays(self, values: np.ndarray, factors: np.ndarray) -> np.ndarray:
        kinds = self._algebra()
        if kinds is not None and kinds[1] == COMBINE_MUL:
            return values * factors
        return values + factors

    # ------------------------------------------------------------------
    # batch phase: synchronous iterations with full memoization
    # ------------------------------------------------------------------
    def _initial_run(self, graph: Graph) -> BatchResult:
        csr = self._bsp_csr(graph)
        if csr is not None:
            result = self._initial_run_numpy(graph, csr)
            if result is not None:
                return result
        return self._initial_run_python(graph)

    def _initial_run_python(self, graph: Graph) -> BatchResult:
        spec = self.spec
        metrics = ExecutionMetrics()
        root = {vertex: spec.initial_message(vertex) for vertex in graph.vertices()}
        current = dict(root)
        self.iterations = [dict(current)]
        for _ in range(_MAX_ITERATIONS):
            following: Dict[int, float] = {}
            activations = 0
            max_change = 0.0
            for vertex in graph.vertices():
                if spec.absorbs(vertex):
                    following[vertex] = root[vertex]
                    continue
                total = root[vertex]
                for in_neighbor in graph.in_neighbors(vertex):
                    activations += 1
                    total = spec.aggregate(
                        total,
                        spec.combine(
                            current[in_neighbor],
                            spec.edge_factor(graph, in_neighbor, vertex),
                        ),
                    )
                following[vertex] = total
                max_change = max(max_change, abs(total - current[vertex]))
            metrics.record_round(activations, graph.num_vertices())
            self._iterations.append(following)
            current = following
            if max_change <= spec.tolerance():
                break
        return BatchResult(states=dict(current), metrics=metrics)

    def _initial_run_numpy(self, graph: Graph, csr: FactorCSR) -> Optional[BatchResult]:
        """Vectorized BSP batch phase, bit-for-bit equal to the Python loop.

        Each superstep re-aggregates every non-absorbing vertex from all of
        its in-edges: ``np.add.at`` over the in-CSR applies the per-row
        contributions in slot order, which is exactly the in-adjacency
        iteration order of the Python loop, so even the non-associative
        float sums reproduce it bitwise.  With the dense store enabled each
        superstep appends one matrix row; otherwise (``REPRO_MEMO_DENSE=0``)
        the per-iteration dicts are materialised as before.
        """
        spec = self.spec
        ids = csr.vertex_ids
        n = csr.num_vertices
        root = np.fromiter((spec.initial_message(v) for v in ids), np.float64, count=n)
        if np.isnan(root).any():
            return None
        absorb = np.fromiter((bool(spec.absorbs(v)) for v in ids), bool, count=n)
        rows = np.repeat(np.arange(n, dtype=np.int64), csr.out_degree)
        keep = ~absorb[rows]
        kept_rows = rows[keep]
        kept_sources = csr.targets[keep]
        kept_factors = csr.factors[keep]
        activations = int(csr.out_degree[~absorb].sum())
        tolerance = spec.tolerance()

        metrics = ExecutionMetrics()
        current = root.copy()
        dense = memo_dense_enabled()
        if dense:
            self._iterations = []
            self.memo = MemoTable(ids, csr.index, graph_version=graph.version)
            self.memo.append(current)
            self._memo_csr = (graph, graph.version, csr)
        else:
            self.iterations = [dict(zip(ids, current.tolist()))]
        for _ in range(_MAX_ITERATIONS):
            following = root.copy()
            if kept_rows.size:
                np.add.at(
                    following,
                    kept_rows,
                    self._combine_arrays(current[kept_sources], kept_factors),
                )
            changes = np.abs(following - current)
            if absorb.any():
                changes[absorb] = 0.0
            max_change = float(changes.max()) if n else 0.0
            metrics.record_round(activations, n)
            if dense:
                self.memo.append(following)
            else:
                self._iterations.append(dict(zip(ids, following.tolist())))
            current = following
            if max_change <= tolerance:
                break
        return BatchResult(states=dict(zip(ids, current.tolist())), metrics=metrics)

    # ------------------------------------------------------------------
    # incremental phase: iteration-by-iteration refinement
    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()

        with phases.phase("graph update"):
            new_graph = self._update_graph(delta)
            added_vertices, removed_vertices = self._vertex_membership_diff(
                old_graph, new_graph
            )

        with phases.phase(PHASE_SCAN):
            structurally_dirty = self._scan_dirty_targets(
                old_graph, new_graph, delta, added_vertices
            )

        with phases.phase("dependency refinement"):
            self._prepare_iteration_zero(new_graph, added_vertices, removed_vertices)
            states = self._refine(
                new_graph,
                old_graph,
                structurally_dirty,
                set(added_vertices),
                metrics,
            )

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    # helpers shared with DZiG
    # ------------------------------------------------------------------
    def _sync_memo(
        self, new_graph: Graph, added_vertices: Set[int], removed_vertices: Set[int]
    ) -> bool:
        """Bring the dense store in line with ``new_graph``'s index space.

        Returns ``True`` when the dense store stays active (columns remapped
        for vertex additions/removals, version recorded); ``False`` when the
        store was never dense or had to demote itself to the dict reference
        (escape hatch flipped, or no usable in-edge CSR for the new graph).
        """
        if self.memo is None:
            return False
        if not memo_dense_enabled():
            self._demote_memo()
            return False
        csr = self._bsp_csr(new_graph)
        if csr is None:
            self._demote_memo()
            return False
        if not self.memo.matches_ids(csr.vertex_ids):
            spec = self.spec
            fill = {v: spec.initial_message(v) for v in added_vertices}
            self.memo.remap(
                csr.vertex_ids, csr.index, fill, graph_version=new_graph.version
            )
        else:
            self.memo.graph_version = new_graph.version
        self._memo_csr = (new_graph, new_graph.version, csr)
        return True

    def _prepare_iteration_zero(
        self, new_graph: Graph, added_vertices: Set[int], removed_vertices: Set[int]
    ) -> None:
        """Insert new vertices (root messages) and drop removed ones."""
        if self._sync_memo(new_graph, added_vertices, removed_vertices):
            return
        spec = self.spec
        for level in self._iterations:
            for vertex in removed_vertices:
                level.pop(vertex, None)
            for vertex in added_vertices:
                level[vertex] = spec.initial_message(vertex)

    def _dirty_target_pool(
        self,
        old_graph: Graph,
        new_graph: Graph,
        delta: Optional[GraphDelta],
        added_vertices: Optional[Set[int]] = None,
    ) -> Optional[Set[int]]:
        """Candidate vertices whose incoming factor map may have changed.

        A vertex's in-factors change only when edges into it were
        added/removed, when an in-neighbor's out-adjacency changed (its
        factors are functions of the source's out-adjacency — the same
        locality contract the CSR cache relies on), or when the vertex itself
        is new.  ``None`` (no delta available) means "scan everything".
        """
        if delta is None:
            return None
        undirected = not new_graph.directed
        pool: Set[int] = set()
        for source, target, _weight in delta.added_edges(old_graph):
            pool.add(target)
            if undirected:
                pool.add(source)
        for source, target, _weight in delta.deleted_edges(old_graph):
            pool.add(target)
            if undirected:
                pool.add(source)
        for source in delta.touched_sources(old_graph):
            if old_graph.has_vertex(source):
                pool.update(old_graph.out_neighbors(source))
            if new_graph.has_vertex(source):
                pool.update(new_graph.out_neighbors(source))
        if added_vertices is None:
            added_vertices = {
                vertex
                for vertex in new_graph.vertices()
                if not old_graph.has_vertex(vertex)
            }
        pool.update(added_vertices)
        return pool

    def _scan_dirty_targets(
        self,
        old_graph: Graph,
        new_graph: Graph,
        delta: GraphDelta,
        added_vertices: Set[int],
    ) -> Set[int]:
        """Structurally-dirty targets of the current delta.

        Served from the shared :class:`repro.graph.footprint.DeltaFootprint`
        (CSR row diffs, computed once per delta) when one is current;
        :meth:`_structurally_dirty_targets` remains the dict reference and
        the ``REPRO_DELTA_FOOTPRINT=0`` fallback.
        """
        footprint = self.footprint
        if footprint is not None and footprint.new_graph is new_graph:
            return set(footprint.dirty_targets)
        return self._structurally_dirty_targets(
            old_graph, new_graph, delta, set(added_vertices)
        )

    def _scan_changed_factor_sources(
        self,
        old_graph: Graph,
        new_graph: Graph,
        delta: GraphDelta,
    ) -> Set[int]:
        """Changed-factor sources of the current delta (footprint-served)."""
        footprint = self.footprint
        if footprint is not None and footprint.new_graph is new_graph:
            return set(footprint.changed_factor_sources)
        return self._changed_factor_sources(old_graph, new_graph, delta)

    def _structurally_dirty_targets(
        self,
        old_graph: Graph,
        new_graph: Graph,
        delta: Optional[GraphDelta] = None,
        added_vertices: Optional[Set[int]] = None,
    ) -> Set[int]:
        """Vertices whose incoming factor map changed (they must be
        re-aggregated at every refined iteration).  ``delta`` narrows the
        scan to its footprint; every candidate is still verified by factor
        comparison, so the result equals the full scan's."""
        spec = self.spec
        pool = self._dirty_target_pool(old_graph, new_graph, delta, added_vertices)
        dirty: Set[int] = set()
        for vertex in pool if pool is not None else new_graph.vertices():
            if not new_graph.has_vertex(vertex):
                continue
            old_in = (
                {
                    u: spec.edge_factor(old_graph, u, vertex)
                    for u in old_graph.in_neighbors(vertex)
                }
                if old_graph.has_vertex(vertex)
                else None
            )
            new_in = {
                u: spec.edge_factor(new_graph, u, vertex)
                for u in new_graph.in_neighbors(vertex)
            }
            if old_in != new_in:
                dirty.add(vertex)
        return dirty

    def _changed_factor_sources(
        self,
        old_graph: Graph,
        new_graph: Graph,
        delta: Optional[GraphDelta] = None,
    ) -> Set[int]:
        """Vertices whose outgoing factor map changed."""
        spec = self.spec
        pool = (
            set(old_graph.vertices()) | set(new_graph.vertices())
            if delta is None
            else delta.touched_sources(old_graph)
        )
        changed: Set[int] = set()
        for vertex in pool:
            old_out = (
                {
                    t: spec.edge_factor(old_graph, vertex, t)
                    for t in old_graph.out_neighbors(vertex)
                }
                if old_graph.has_vertex(vertex)
                else {}
            )
            new_out = (
                {
                    t: spec.edge_factor(new_graph, vertex, t)
                    for t in new_graph.out_neighbors(vertex)
                }
                if new_graph.has_vertex(vertex)
                else {}
            )
            if old_out != new_out:
                changed.add(vertex)
        return changed

    def _pull_value(self, graph: Graph, previous: Dict[int, float], vertex: int) -> float:
        """Re-aggregate ``vertex`` from all of its in-edges (one full pull)."""
        spec = self.spec
        root = spec.initial_message(vertex)
        if spec.absorbs(vertex):
            return root
        total = root
        for in_neighbor in graph.in_neighbors(vertex):
            total = spec.aggregate(
                total,
                spec.combine(
                    previous.get(in_neighbor, spec.initial_message(in_neighbor)),
                    spec.edge_factor(graph, in_neighbor, vertex),
                ),
            )
        return total

    def _pull_frontier(
        self,
        graph: Graph,
        previous: Dict[int, float],
        frontier: Set[int],
        level: Dict[int, float],
        tolerance: float,
        csr: Optional[FactorCSR] = None,
    ) -> Tuple[int, Set[int]]:
        """Re-aggregate every frontier vertex from all of its in-edges.

        Writes the refined values into ``level`` and returns
        ``(activations, changed)``.  When ``csr`` is given the pulls run
        vectorized on the in-edge CSR arrays — contributions are applied in
        slot order, matching the Python loop's in-adjacency iteration order
        bit for bit; otherwise the reference Python pulls run.  (This is the
        dict-store path; with the dense store active the engines call
        :meth:`_pull_frontier_rows` on the matrix instead.)
        """
        spec = self.spec
        ordered = sorted(frontier)
        if csr is not None:
            index = csr.index
            frontier_rows = np.fromiter(
                (index[v] for v in ordered), np.int64, count=len(ordered)
            )
            counts = csr.out_degree[frontier_rows]
            total = int(counts.sum())
            values = np.fromiter(
                (spec.initial_message(v) for v in ordered), np.float64, count=len(ordered)
            )
            if total:
                slots = expand_edges(csr.offsets[frontier_rows], counts, total)
                sources = csr.targets[slots]
                unique_sources, inverse = np.unique(sources, return_inverse=True)
                ids = csr.vertex_ids
                source_values = np.fromiter(
                    (
                        previous.get(ids[i], spec.initial_message(ids[i]))
                        for i in unique_sources
                    ),
                    np.float64,
                    count=len(unique_sources),
                )
                contributions = self._combine_arrays(
                    source_values[inverse], csr.factors[slots]
                )
                np.add.at(
                    values,
                    np.repeat(np.arange(len(ordered), dtype=np.int64), counts),
                    contributions,
                )
            changed: Set[int] = set()
            for position, vertex in enumerate(ordered):
                new_value = float(values[position])
                reference = level.get(vertex)
                if reference is None or abs(new_value - reference) > tolerance:
                    changed.add(vertex)
                level[vertex] = new_value
            return total, changed

        activations = 0
        changed = set()
        for vertex in ordered:
            new_value = self._pull_value(graph, previous, vertex)
            activations += graph.in_degree(vertex)
            reference = level.get(vertex)
            if reference is None or abs(new_value - reference) > tolerance:
                changed.add(vertex)
            level[vertex] = new_value
        return activations, changed

    def _pull_frontier_rows(
        self,
        csr: FactorCSR,
        memo: MemoTable,
        iteration: int,
        frontier_rows: np.ndarray,
        tolerance: float,
        root: np.ndarray,
    ) -> Tuple[int, np.ndarray]:
        """Dense-store frontier pull: pure gather/scatter on matrix rows.

        ``frontier_rows`` must be ascending (the sorted-vertex order of the
        reference); contributions are applied with ``np.add.at`` in slot
        order, so the refined values are bitwise equal to the dict paths.
        Returns ``(activations, changed_rows)``.
        """
        kinds = self._algebra()
        return pull_rows(
            csr.offsets,
            csr.targets,
            csr.factors,
            csr.out_degree,
            frontier_rows,
            memo.row(iteration - 1),
            memo.row(iteration),
            root,
            tolerance,
            not (kinds is not None and kinds[1] == COMBINE_MUL),
        )

    def _pull_frontier_memo(
        self,
        csr: FactorCSR,
        memo: MemoTable,
        iteration: int,
        frontier: Set[int],
        tolerance: float,
        root: np.ndarray,
    ) -> Tuple[int, Set[int]]:
        """Dense pull for an id-set frontier (DZiG's hybrid loops)."""
        if not frontier:
            return 0, set()
        index = csr.index
        frontier_rows = np.fromiter(
            (index[v] for v in sorted(frontier)), np.int64, count=len(frontier)
        )
        total, changed_rows = self._pull_frontier_rows(
            csr, memo, iteration, frontier_rows, tolerance, root
        )
        ids = csr.vertex_ids
        return total, {ids[int(row)] for row in changed_rows}

    def _frontier(
        self, new_graph: Graph, structurally_dirty: Set[int], changed_prev: Set[int]
    ) -> Set[int]:
        """Vertices that must be re-aggregated at the current iteration."""
        spec = self.spec
        frontier = set(structurally_dirty)
        for vertex in changed_prev:
            if new_graph.has_vertex(vertex):
                frontier.update(new_graph.out_neighbors(vertex))
        return {
            v for v in frontier if new_graph.has_vertex(v) and not spec.absorbs(v)
        }

    def _root_array(self, csr: FactorCSR) -> np.ndarray:
        """Initial messages in dense-index order (the pull fallback values)."""
        spec = self.spec
        return np.fromiter(
            (spec.initial_message(v) for v in csr.vertex_ids),
            np.float64,
            count=csr.num_vertices,
        )

    def _dense_context(self, csr: FactorCSR) -> Tuple[np.ndarray, np.ndarray]:
        """``(root, keep_mask)`` for the dense store's index space, cached.

        Both arrays are pure functions of the vertex-id list (spec root
        messages and non-absorbing vertices), so they are recomputed only
        when the memo table was remapped to a new id list — not on every
        delta.
        """
        memo = self.memo
        cached = self._dense_aux
        if cached is not None and cached[0] is memo.vertex_ids:
            return cached[1], cached[2]
        spec = self.spec
        root = self._root_array(csr)
        keep_mask = np.fromiter(
            (not spec.absorbs(v) for v in csr.vertex_ids),
            bool,
            count=csr.num_vertices,
        )
        self._dense_aux = (memo.vertex_ids, root, keep_mask)
        return root, keep_mask

    # ------------------------------------------------------------------
    def _refine(
        self,
        new_graph: Graph,
        old_graph: Graph,
        structurally_dirty: Set[int],
        changed_prev: Set[int],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        """GraphBolt refinement: pull every in-edge of every frontier vertex.

        Within the memoized range a vertex counts as changed when its refined
        value differs from the memoized one (those memoized values fed the
        next memoized iteration); beyond the memoized range the comparison is
        against the previous refined iteration, i.e. ordinary convergence.
        """
        spec = self.spec
        # Refinement uses a tighter threshold than the convergence tolerance
        # so that the truncation of "unchanged" vertices does not accumulate
        # into a visible divergence from a from-scratch run.
        tolerance = spec.tolerance() * 0.1
        if self.memo is not None:
            csr = self._stashed_bsp_csr(new_graph) or self._bsp_csr(new_graph)
            if csr is not None and self.memo.matches_ids(csr.vertex_ids):
                return self._refine_dense(
                    new_graph, csr, structurally_dirty, changed_prev, metrics, tolerance
                )
            self._demote_memo()
        csr = self._bsp_csr(new_graph)
        last_memo = len(self._iterations) - 1
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and not changed_prev:
                break
            frontier = self._frontier(new_graph, structurally_dirty, changed_prev)
            if not frontier:
                break
            if not in_memo_range:
                self._iterations.append(dict(self._iterations[iteration - 1]))
            previous = self._iterations[iteration - 1]
            level = self._iterations[iteration]
            activations, changed_now = self._pull_frontier(
                new_graph, previous, frontier, level, tolerance, csr=csr
            )
            metrics.record_round(activations, len(frontier))
            changed_prev = changed_now
            iteration += 1
        return dict(self._iterations[-1])

    def _refine_dense(
        self,
        new_graph: Graph,
        csr: FactorCSR,
        structurally_dirty: Set[int],
        changed_prev: Set[int],
        metrics: ExecutionMetrics,
        tolerance: float,
    ) -> Dict[int, float]:
        """Array-native refinement over the dense memo table.

        The per-iteration frontier — structurally-dirty rows plus the
        out-neighbors of the rows that changed at the previous iteration — is
        maintained as sorted row arrays on the cached out-edge CSR, and every
        pull is a :meth:`_pull_frontier_rows` gather/scatter.  Frontier sets,
        change detection and round metrics replay the dict reference exactly.
        """
        spec = self.spec
        memo = self.memo
        index = csr.index
        root, keep_mask = self._dense_context(csr)
        out_csr, dirty_mask = refinement_preamble(
            self.csr_cache, spec, new_graph, csr, structurally_dirty
        )
        changed_rows = np.unique(
            np.fromiter(
                (index[v] for v in changed_prev if v in index), np.int64
            )
        )
        last_memo = memo.num_levels - 1
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and changed_rows.size == 0:
                break
            frontier_rows = self._frontier_rows(
                out_csr, dirty_mask, changed_rows, keep_mask
            )
            if frontier_rows.size == 0:
                break
            if not in_memo_range:
                memo.append_copy_of(iteration - 1)
            activations, changed_rows = self._pull_frontier_rows(
                csr, memo, iteration, frontier_rows, tolerance, root
            )
            metrics.record_round(activations, int(frontier_rows.size))
            iteration += 1
        return memo.level_dict(memo.num_levels - 1)

    @staticmethod
    def _frontier_rows(
        out_csr: FactorCSR,
        dirty_mask: np.ndarray,
        changed_rows: np.ndarray,
        keep_mask: np.ndarray,
    ) -> np.ndarray:
        """Array-native frontier: dirty rows ∪ out-targets(changed), minus
        absorbing rows — ascending, exactly :meth:`_frontier`'s sorted set."""
        mask = dirty_mask.copy()
        if changed_rows.size:
            counts = out_csr.out_degree[changed_rows]
            total = int(counts.sum())
            if total:
                slots = expand_edges(out_csr.offsets[changed_rows], counts, total)
                mask[out_csr.targets[slots]] = True
        mask &= keep_mask
        return np.nonzero(mask)[0]
