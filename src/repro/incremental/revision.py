"""Revision-message deduction for accumulative (invertible) algorithms.

Section II-B of the paper: after ``ΔG``, a set of previously transmitted
messages becomes *invalid* and another set is *missing*.  For accumulative
algorithms whose aggregation has an inverse (PageRank, PHP) the engine can
deduce both without any memoization beyond the converged states — the
"memoization-free" policy of Ingress, which Layph reuses.

At convergence of the batch run, the total message mass a vertex ``u`` has
propagated equals its state change ``x_u - x^0_u``, and its contribution along
edge ``(u, v)`` is ``combine(x_u - x^0_u, edge_factor(u, v))``.  When ``ΔG``
changes ``u``'s out-adjacency (edges added, removed, re-weighted, or the
out-degree — and therefore every factor — changes), the revision message to
each affected target is simply *new contribution minus old contribution*.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph


def propagated_mass(spec: AlgorithmSpec, states: Dict[int, float], vertex: int) -> float:
    """Total message mass ``vertex`` has propagated at convergence."""
    state = states.get(vertex, spec.initial_state(vertex))
    return state - spec.initial_state(vertex)


def out_factor_map(spec: AlgorithmSpec, graph: Graph, vertex: int) -> Dict[int, float]:
    """Map target -> edge factor for every out-edge of ``vertex``."""
    if not graph.has_vertex(vertex):
        return {}
    return {
        target: spec.edge_factor(graph, vertex, target)
        for target in graph.out_neighbors(vertex)
    }


def accumulative_revision_messages(
    spec: AlgorithmSpec,
    old_graph: Graph,
    new_graph: Graph,
    states: Dict[int, float],
    candidates: Optional[Iterable[int]] = None,
) -> Tuple[Dict[int, float], Set[int], Set[int]]:
    """Deduce cancellation/compensation messages for an accumulative algorithm.

    Args:
        spec: an accumulative, invertible algorithm (PageRank, PHP).
        old_graph: the graph the memoized ``states`` were computed on.
        new_graph: ``old_graph ⊕ ΔG``.
        states: converged states on ``old_graph``.
        candidates: optional superset of the vertices whose out-adjacency may
            have changed (e.g. ``delta.touched_sources(old_graph)``); when
            given, the changed-factor scan is restricted to it instead of
            walking every vertex of both graphs.  Each candidate is still
            verified by comparing its factor maps, so the result is exactly
            the full scan's.

    Returns:
        A triple ``(pending, new_vertices, removed_vertices)``:

        * ``pending`` — vertex -> aggregated revision message, ready to be fed
          into :func:`repro.engine.propagation.propagate` on the new graph;
        * ``new_vertices`` — vertices present only in the new graph (their
          root messages are included in ``pending``);
        * ``removed_vertices`` — vertices present only in the old graph
          (their states must be dropped by the caller).

    Raises:
        ValueError: if ``spec`` is selective (no aggregation inverse).
    """
    if spec.is_selective():
        raise ValueError(
            "revision messages via inversion require an accumulative algorithm; "
            "use dependency-based maintenance for selective algorithms"
        )

    identity = spec.aggregate_identity()
    pending: Dict[int, float] = {}
    old_vertices = set(old_graph.vertices())
    new_vertices_set = set(new_graph.vertices())
    added_vertices = new_vertices_set - old_vertices
    removed_vertices = old_vertices - new_vertices_set

    def push(target: int, value: float) -> None:
        if target in removed_vertices:
            return
        if spec.absorbs(target):
            return
        pending[target] = spec.aggregate(pending.get(target, identity), value)

    # Vertices whose out-adjacency (targets or factors) may have changed.
    # Comparing out-edge dictionaries directly keeps the logic independent of
    # how the delta was expressed; a caller-provided candidate set merely
    # narrows the scan, never the outcome.
    pool: Iterable[int] = (
        old_vertices | new_vertices_set
        if candidates is None
        else set(candidates) | added_vertices | removed_vertices
    )
    changed: Set[int] = set()
    for vertex in pool:
        old_out = old_graph.out_neighbors(vertex) if old_graph.has_vertex(vertex) else {}
        new_out = new_graph.out_neighbors(vertex) if new_graph.has_vertex(vertex) else {}
        if old_out != new_out:
            changed.add(vertex)

    for vertex in changed:
        if vertex in added_vertices:
            # A brand-new vertex has not propagated anything yet; its root
            # message is injected below and its out-edges fire naturally
            # during the incremental propagation.
            continue
        mass = propagated_mass(spec, states, vertex)
        old_factors = out_factor_map(spec, old_graph, vertex)
        new_factors = (
            out_factor_map(spec, new_graph, vertex)
            if vertex not in removed_vertices
            else {}
        )
        for target in set(old_factors) | set(new_factors):
            old_contribution = (
                spec.combine(mass, old_factors[target]) if target in old_factors else identity
            )
            new_contribution = (
                spec.combine(mass, new_factors[target]) if target in new_factors else identity
            )
            difference = spec.aggregate(new_contribution, spec.negate(old_contribution))
            if spec.is_significant(difference):
                push(target, difference)

    # Root messages of newly added vertices.
    for vertex in added_vertices:
        root = spec.initial_message(vertex)
        if spec.is_significant(root):
            pending[vertex] = spec.aggregate(pending.get(vertex, identity), root)

    return pending, added_vertices, removed_vertices
