"""Revision-message deduction for accumulative (invertible) algorithms.

Section II-B of the paper: after ``ΔG``, a set of previously transmitted
messages becomes *invalid* and another set is *missing*.  For accumulative
algorithms whose aggregation has an inverse (PageRank, PHP) the engine can
deduce both without any memoization beyond the converged states — the
"memoization-free" policy of Ingress, which Layph reuses.

At convergence of the batch run, the total message mass a vertex ``u`` has
propagated equals its state change ``x_u - x^0_u``, and its contribution along
edge ``(u, v)`` is ``combine(x_u - x^0_u, edge_factor(u, v))``.  When ``ΔG``
changes ``u``'s out-adjacency (edges added, removed, re-weighted, or the
out-degree — and therefore every factor — changes), the revision message to
each affected target is simply *new contribution minus old contribution*.

Two implementations deduce the messages:

* the dict reference below, which walks the changed sources in ascending id
  order and their affected targets in adjacency order (old row first, then
  the new-only targets) — a fully deterministic visit order;
* :func:`_revision_messages_numpy`, which replays exactly that order with
  array gathers over the *cached out-edge factor CSRs* of both graph
  versions (``old_csr``/``new_csr``, see
  :meth:`repro.incremental.base.IncrementalEngine._revision_out_csr`):
  contribution differences are computed per ``(source, target)`` slot and
  accumulated per target with an in-order ``np.add.at``, so the pending map
  is bitwise equal to the reference's.  Specs outside the standard
  sum-aggregate algebra (or with a custom ``negate``) fall back to the
  reference transparently.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.dense_propagation import AGGREGATE_SUM, COMBINE_MUL, classify_spec
from repro.graph.csr import FactorCSR, expand_edges
from repro.graph.graph import Graph


def propagated_mass(spec: AlgorithmSpec, states: Dict[int, float], vertex: int) -> float:
    """Total message mass ``vertex`` has propagated at convergence."""
    state = states.get(vertex, spec.initial_state(vertex))
    return state - spec.initial_state(vertex)


def out_factor_map(spec: AlgorithmSpec, graph: Graph, vertex: int) -> Dict[int, float]:
    """Map target -> edge factor for every out-edge of ``vertex``."""
    if not graph.has_vertex(vertex):
        return {}
    return {
        target: spec.edge_factor(graph, vertex, target)
        for target in graph.out_neighbors(vertex)
    }


def changed_out_sources(
    old_graph: Graph,
    new_graph: Graph,
    candidates: Optional[Iterable[int]] = None,
    added_vertices: Optional[Set[int]] = None,
    removed_vertices: Optional[Set[int]] = None,
) -> List[int]:
    """Ascending list of vertices whose out-adjacency differs between graphs.

    This is the single owner of the changed-source scan: revision deduction
    and the engines' activation metering both iterate its result, so the
    candidate-narrowing rule cannot drift between them.  ``candidates``
    (e.g. ``delta.touched_sources(old_graph)``) narrows the scan to the
    delta's footprint — vertices present in only one of the graphs are
    always included — and every candidate is verified by comparing its
    adjacency maps, so the result equals the full scan's.

    ``added_vertices``/``removed_vertices`` (both together or neither) are a
    precomputed vertex-membership diff — e.g. the O(delta) one of
    :class:`repro.graph.footprint.DeltaFootprint` — that replaces the two
    O(V) membership set builds below; they only narrow the pool, every
    candidate is still verified, so the result is unchanged.
    """
    if candidates is not None and added_vertices is not None and removed_vertices is not None:
        pool: Iterable[int] = set(candidates) | added_vertices | removed_vertices
    else:
        old_vertices = set(old_graph.vertices())
        new_vertices = set(new_graph.vertices())
        pool = (
            old_vertices | new_vertices
            if candidates is None
            else set(candidates)
            | (new_vertices - old_vertices)
            | (old_vertices - new_vertices)
        )
    changed: List[int] = []
    for vertex in sorted(pool):
        old_out = old_graph.out_neighbors(vertex) if old_graph.has_vertex(vertex) else {}
        new_out = new_graph.out_neighbors(vertex) if new_graph.has_vertex(vertex) else {}
        if old_out != new_out:
            changed.append(vertex)
    return changed


def _uses_default_negate(spec) -> bool:
    """Whether ``spec.negate`` is the base class's arithmetic negation."""
    return getattr(spec.negate, "__func__", None) is AlgorithmSpec.negate


def _revision_messages_numpy(
    spec: AlgorithmSpec,
    states: Dict[int, float],
    sources: List[int],
    removed_vertices: Set[int],
    old_csr: FactorCSR,
    new_csr: FactorCSR,
) -> Optional[Dict[int, float]]:
    """Vectorized contribution-difference deduction, or ``None`` to fall back.

    ``sources`` must be the ascending list of changed (non-added) vertices;
    the result is bitwise equal to the dict reference: differences are
    computed per ``(source, target)`` — matched old/new slots as
    ``new + (-old)``, old-only as ``0 + (-old)``, new-only as ``new`` — then
    filtered (significance, removed targets, absorbing targets) and summed
    per target with ``np.add.at`` in the reference's exact visit order
    (sources ascending; within a source the old row's slot order first, then
    the new-only slots in new-row order).
    """
    kinds = classify_spec(spec)
    if kinds is None or kinds[0] != AGGREGATE_SUM:
        return None
    if not _uses_default_negate(spec):
        return None
    if spec.aggregate_identity() != 0.0:
        return None
    combine_mul = kinds[1] == COMBINE_MUL
    tolerance = float(spec.tolerance())

    n_src = len(sources)
    mass = np.fromiter(
        (propagated_mass(spec, states, v) for v in sources), np.float64, count=n_src
    )
    if np.isnan(mass).any():
        return None

    old_index = old_csr.index
    new_index = new_csr.index
    old_rows = np.fromiter((old_index.get(v, -1) for v in sources), np.int64, count=n_src)
    new_rows = np.fromiter(
        (new_index.get(v, -1) if v not in removed_vertices else -1 for v in sources),
        np.int64,
        count=n_src,
    )

    def _expand(csr: FactorCSR, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        present = rows >= 0
        if not present.any():
            # No source has a row in this snapshot (e.g. a delta that removed
            # every vertex leaves a zero-row CSR that must not be indexed).
            return np.zeros(n_src, dtype=np.int64), np.empty(0, dtype=np.int64)
        safe_rows = np.where(present, rows, 0)
        counts = np.where(present, csr.out_degree[safe_rows], 0)
        total = int(counts.sum())
        if not total:
            return counts, np.empty(0, dtype=np.int64)
        return counts, expand_edges(csr.offsets[safe_rows], counts, total)

    old_counts, old_slots = _expand(old_csr, old_rows)
    new_counts, new_slots = _expand(new_csr, new_rows)
    total_old = old_slots.size
    total_new = new_slots.size
    if total_old + total_new == 0:
        return {}

    old_src = np.repeat(np.arange(n_src, dtype=np.int64), old_counts)
    new_src = np.repeat(np.arange(n_src, dtype=np.int64), new_counts)
    old_targets = old_csr.ids_array()[old_csr.targets[old_slots]]
    new_targets = new_csr.ids_array()[new_csr.targets[new_slots]]
    old_factors = old_csr.factors[old_slots]
    new_factors = new_csr.factors[new_slots]
    if np.isnan(old_factors).any() or np.isnan(new_factors).any():
        return None

    if combine_mul:
        old_contrib = mass[old_src] * old_factors
        new_contrib = mass[new_src] * new_factors
    else:
        old_contrib = mass[old_src] + old_factors
        new_contrib = mass[new_src] + new_factors

    # Compact target index space shared by both halves.
    unique_targets, inverse = np.unique(
        np.concatenate((old_targets, new_targets)), return_inverse=True
    )
    k = int(unique_targets.size)
    old_t = inverse[:total_old]
    new_t = inverse[total_old:]

    # Match new slots to old slots of the same (source, target): the keys are
    # unique per half (adjacencies carry no parallel edges).
    old_keys = old_src * k + old_t
    new_keys = new_src * k + new_t
    if total_old:
        order = np.argsort(old_keys)
        sorted_keys = old_keys[order]
        positions = np.minimum(
            np.searchsorted(sorted_keys, new_keys), total_old - 1
        )
        matched = sorted_keys[positions] == new_keys
        match_slot = order[positions]
    else:
        matched = np.zeros(total_new, dtype=bool)
        match_slot = np.empty(0, dtype=np.int64)

    # One difference per (source, target), in the reference's operand order:
    # aggregate(new_contribution, negate(old_contribution)) = new + (-old).
    new_on_old = np.zeros(total_old, dtype=np.float64)
    if total_new and matched.any():
        new_on_old[match_slot[matched]] = new_contrib[matched]
    diff_old = new_on_old + np.negative(old_contrib)
    new_only = ~matched

    # Visit order within a source: old-row slot order, then new-only slots.
    old_order = expand_edges(np.zeros(n_src, dtype=np.int64), old_counts, total_old)
    exclusive = np.concatenate(([0], np.cumsum(new_only)))
    starts = np.concatenate(([0], np.cumsum(new_counts)))[:-1]
    new_rank = exclusive[:-1] - exclusive[starts][new_src]
    new_order = old_counts[new_src] + new_rank

    all_src = np.concatenate((old_src, new_src[new_only]))
    all_order = np.concatenate((old_order, new_order[new_only]))
    all_diff = np.concatenate((diff_old, new_contrib[new_only]))
    all_target = np.concatenate((old_t, new_t[new_only]))
    permutation = np.lexsort((all_order, all_src))
    diffs = all_diff[permutation]
    target_positions = all_target[permutation]

    # Per-entry filters, exactly the reference's: significance of the single
    # difference, then the push() guards (removed / absorbing targets).
    significant = np.abs(diffs) > tolerance
    removed_flags = np.fromiter(
        (int(t) in removed_vertices for t in unique_targets), bool, count=k
    )
    absorb_flags = np.fromiter(
        (bool(spec.absorbs(int(t))) for t in unique_targets), bool, count=k
    )
    keep = significant & ~removed_flags[target_positions] & ~absorb_flags[target_positions]
    if not keep.any():
        return {}

    accumulator = np.zeros(k, dtype=np.float64)
    touched = np.zeros(k, dtype=bool)
    kept_targets = target_positions[keep]
    # np.add.at applies element-wise in order, replaying the reference's
    # per-target aggregation sequence (sources ascending).
    np.add.at(accumulator, kept_targets, diffs[keep])
    touched[kept_targets] = True
    return {
        int(unique_targets[position]): float(accumulator[position])
        for position in np.nonzero(touched)[0]
    }


def accumulative_revision_messages(
    spec: AlgorithmSpec,
    old_graph: Graph,
    new_graph: Graph,
    states: Dict[int, float],
    candidates: Optional[Iterable[int]] = None,
    changed: Optional[List[int]] = None,
    old_csr: Optional[FactorCSR] = None,
    new_csr: Optional[FactorCSR] = None,
    added_vertices: Optional[Set[int]] = None,
    removed_vertices: Optional[Set[int]] = None,
) -> Tuple[Dict[int, float], Set[int], Set[int]]:
    """Deduce cancellation/compensation messages for an accumulative algorithm.

    Args:
        spec: an accumulative, invertible algorithm (PageRank, PHP).
        old_graph: the graph the memoized ``states`` were computed on.
        new_graph: ``old_graph ⊕ ΔG``.
        states: converged states on ``old_graph``.
        candidates: optional superset of the vertices whose out-adjacency may
            have changed (e.g. ``delta.touched_sources(old_graph)``); when
            given, the changed-factor scan is restricted to it instead of
            walking every vertex of both graphs.  Each candidate is still
            verified by comparing its adjacency maps, so the result is
            exactly the full scan's.
        changed: optional precomputed
            :func:`changed_out_sources(old_graph, new_graph, candidates)
            <changed_out_sources>` result — callers that also meter the
            changed sources pass it in so the scan runs once per delta.
        old_csr: optional out-edge factor CSR snapshot of ``old_graph``
            (taken *before* the delta was applied to the engine's cache).
        new_csr: optional out-edge factor CSR snapshot of ``new_graph``.
            When both snapshots are given and the spec's algebra is the
            standard invertible sum, the contribution differences are deduced
            with array ops (:func:`_revision_messages_numpy`), bitwise equal
            to the dict reference.
        added_vertices: optional precomputed set of vertices present only in
            ``new_graph`` (e.g. from the engine's
            :class:`repro.graph.footprint.DeltaFootprint`); skips the O(V)
            membership scans below.
        removed_vertices: optional precomputed set of vertices present only
            in ``old_graph``.  Both must be passed together or not at all.

    Returns:
        A triple ``(pending, new_vertices, removed_vertices)``:

        * ``pending`` — vertex -> aggregated revision message, ready to be fed
          into :func:`repro.engine.propagation.propagate` on the new graph;
        * ``new_vertices`` — vertices present only in the new graph (their
          root messages are included in ``pending``);
        * ``removed_vertices`` — vertices present only in the old graph
          (their states must be dropped by the caller).

    Raises:
        ValueError: if ``spec`` is selective (no aggregation inverse).
    """
    if spec.is_selective():
        raise ValueError(
            "revision messages via inversion require an accumulative algorithm; "
            "use dependency-based maintenance for selective algorithms"
        )

    identity = spec.aggregate_identity()
    if added_vertices is None or removed_vertices is None:
        old_vertices = set(old_graph.vertices())
        new_vertices_set = set(new_graph.vertices())
        added_vertices = new_vertices_set - old_vertices
        removed_vertices = old_vertices - new_vertices_set

    # Vertices whose out-adjacency (targets or factors) changed — comparing
    # out-edge dictionaries directly keeps the logic independent of how the
    # delta was expressed (see :func:`changed_out_sources`).  Ascending order
    # makes the float accumulation below deterministic (and lets the
    # vectorized path replay it exactly).  Brand-new vertices have not
    # propagated anything yet; their root message is injected below and their
    # out-edges fire naturally during the incremental propagation.
    if changed is None:
        changed = changed_out_sources(old_graph, new_graph, candidates)
    sources = [vertex for vertex in changed if vertex not in added_vertices]

    pending: Optional[Dict[int, float]] = None
    if old_csr is not None and new_csr is not None and sources:
        pending = _revision_messages_numpy(
            spec, states, sources, removed_vertices, old_csr, new_csr
        )
    if pending is None:
        pending = {}

        def push(target: int, value: float) -> None:
            if target in removed_vertices:
                return
            if spec.absorbs(target):
                return
            pending[target] = spec.aggregate(pending.get(target, identity), value)

        for vertex in sources:
            mass = propagated_mass(spec, states, vertex)
            old_factors = out_factor_map(spec, old_graph, vertex)
            new_factors = (
                out_factor_map(spec, new_graph, vertex)
                if vertex not in removed_vertices
                else {}
            )
            # Old-row targets first (adjacency order), then new-only targets
            # (new adjacency order) — the order the CSR rows materialise.
            ordered_targets = list(old_factors)
            ordered_targets += [t for t in new_factors if t not in old_factors]
            for target in ordered_targets:
                old_contribution = (
                    spec.combine(mass, old_factors[target])
                    if target in old_factors
                    else identity
                )
                new_contribution = (
                    spec.combine(mass, new_factors[target])
                    if target in new_factors
                    else identity
                )
                difference = spec.aggregate(
                    new_contribution, spec.negate(old_contribution)
                )
                if spec.is_significant(difference):
                    push(target, difference)

    # Root messages of newly added vertices.
    for vertex in sorted(added_vertices):
        root = spec.initial_message(vertex)
        if spec.is_significant(root):
            pending[vertex] = spec.aggregate(pending.get(vertex, identity), root)

    return pending, added_vertices, removed_vertices
