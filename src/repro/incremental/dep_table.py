"""Dense dependency trees for the selective engines.

KickStarter, RisGraph and Ingress's memoization-path policy maintain the
value dependencies of converged selective computations as a per-vertex Python
dict (``{vertex: winning in-neighbor}``, :mod:`repro.incremental.dependency`).
After PR 4 that left the selective subsystem as the last dict-and-set hot
path: taint expansion walks supporting edges one Python call at a time,
trim-and-seed re-aggregates every tainted vertex through ``in_neighbors``
dictionaries, and the post-propagation parent refresh re-scans every state
for changes.  :class:`DepTable` closes the gap the same way
:class:`repro.incremental.memo.MemoTable` did for the BSP engines:

* ``parent_pos`` — the winning in-neighbor of every vertex as a dense
  position (``-1`` = no parent), keyed by the cached in-edge factor CSR's
  vertex index (the ``sorted(graph.vertices())`` space the
  :mod:`repro.graph.csr_cache` snapshots share);
* ``levels`` — each vertex's depth in the dependency forest, recomputed with
  pointer doubling after every parent refresh; a level-ordered sweep taints a
  whole dependency *tree* in one pass (RisGraph/Ingress), and a mask-based
  frontier walk on the cached out-edge CSR taints the conservative
  dependency *DAG* (KickStarter);
* ``values`` — the converged states as one float64 array, so support checks
  (``combine(x_u, f_{u,v}) == x_v``) and the trimmed-vertex re-pull run as
  row gathers instead of dict lookups.

The table is built lazily from the dict reference on the first dense delta,
remapped with one gather when a delta changes the vertex-id space, and
**demoted** back to the dict (``to_parents_dict``) whenever the dense gate
fails: Python backend, CSR cache disabled, an algebra outside min/+, NaN
factors or states, or the ``REPRO_DEP_DENSE=0`` escape hatch.  The dict
engines in :mod:`repro.incremental.dependency` remain the semantic reference;
``tests/incremental/test_dep_table.py`` pins the dense path to it bitwise —
states, rounds, edge activations — over random edge+vertex delta sequences.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.backends import (  # noqa: F401 (re-export: the knob lives
    DEP_DENSE_ENV_VAR,  # with the other backend env vars)
    dep_dense_enabled,
)
from repro.graph.csr import FactorCSR, expand_edges

_EMPTY_ROWS = np.zeros(0, dtype=np.int64)


class DepTable:
    """Dense dependency-forest store of one selective engine.

    The column space is the dense vertex index of the engine's cached
    in-edge factor CSR; ``graph_version`` records the
    :attr:`repro.graph.graph.Graph.version` the columns were last
    synchronized against (introspection only — the authoritative sync check
    is the id-list comparison against the CSR, as for ``MemoTable``).
    """

    __slots__ = (
        "vertex_ids",
        "index",
        "parent_pos",
        "values",
        "levels",
        "graph_version",
        "_levels_stale",
        "_level_order",
        "_level_starts",
        "_child_order",
        "_child_sorted",
        "_children_added",
        "_moved_mask",
        "_moves_by_level",
        "_move_level_of",
        "level_rebuilds",
        "level_patches",
        "full_value_gathers",
        "partial_value_gathers",
    )

    def __init__(
        self,
        vertex_ids: Sequence[int],
        index: Mapping[int, int],
        parent_pos: np.ndarray,
        values: np.ndarray,
        graph_version: Optional[int] = None,
    ) -> None:
        self.vertex_ids: List[int] = list(vertex_ids)
        self.index: Mapping[int, int] = index
        self.parent_pos = parent_pos
        self.values = values
        #: per-vertex depth in the dependency forest (0 = no parent), or
        #: ``None`` when the parent array contains a cycle (zero-weight
        #: support loops) — tree tainting then falls back to the fixpoint.
        #: Computed lazily on the first :meth:`taint_tree` after a parent
        #: change (the DAG policy never pays for it); ``False`` marks stale.
        self.levels: Optional[np.ndarray] = None
        self.graph_version = graph_version
        self._levels_stale = True
        self._level_order: Optional[np.ndarray] = None
        self._level_starts: Optional[np.ndarray] = None
        #: children index built alongside the levels (rows sorted by parent)
        #: plus the per-patch corrections/overlay of the incremental level
        #: maintenance; valid only while the levels are
        self._child_order: Optional[np.ndarray] = None
        self._child_sorted: Optional[np.ndarray] = None
        self._children_added: Dict[int, List[int]] = {}
        self._moved_mask: Optional[np.ndarray] = None
        self._moves_by_level: Dict[int, Set[int]] = {}
        self._move_level_of: Dict[int, int] = {}
        #: full pointer-doubling recomputations vs in-place patches (tests)
        self.level_rebuilds = 0
        self.level_patches = 0
        #: O(V) value gathers vs candidate-row gathers in :meth:`refresh`
        self.full_value_gathers = 0
        self.partial_value_gathers = 0

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of columns (vertices in the dense index space)."""
        return len(self.vertex_ids)

    def matches_ids(self, vertex_ids: Sequence[int]) -> bool:
        """Whether the table's column space equals ``vertex_ids`` (in order)."""
        return self.vertex_ids == list(vertex_ids)

    def forest_levels(self) -> Optional[np.ndarray]:
        """The per-vertex forest depths, computed on demand (``None`` on a
        parent cycle — the tree taint then uses its fixpoint fallback)."""
        if self._levels_stale:
            self._refresh_levels()
        return self.levels

    def parent_of(self, vertex: int) -> Optional[int]:
        """The recorded dependency parent of ``vertex`` (``None`` = root)."""
        position = self.index.get(vertex)
        if position is None:
            return None
        parent = int(self.parent_pos[position])
        return self.vertex_ids[parent] if parent >= 0 else None

    def to_parents_dict(self) -> Dict[int, Optional[int]]:
        """The dict-reference representation (used on demotion)."""
        ids = self.vertex_ids
        return {
            vertex: (ids[int(parent)] if parent >= 0 else None)
            for vertex, parent in zip(ids, self.parent_pos)
        }

    # ------------------------------------------------------------------
    # construction / promotion
    # ------------------------------------------------------------------
    @classmethod
    def from_parents(
        cls,
        csr: FactorCSR,
        states: Mapping[int, float],
        parents: Mapping[int, Optional[int]],
        identity: float,
        graph_version: Optional[int] = None,
    ) -> "DepTable":
        """Build the dense table from the dict reference (promotion)."""
        ids = csr.vertex_ids
        index = csr.index
        n = len(ids)
        parent_pos = np.fromiter(
            (
                index.get(parents.get(vertex), -1)
                if parents.get(vertex) is not None
                else -1
                for vertex in ids
            ),
            np.int64,
            count=n,
        )
        values = np.fromiter(
            (states.get(vertex, identity) for vertex in ids), np.float64, count=n
        )
        return cls(ids, index, parent_pos, values, graph_version=graph_version)

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def remap(
        self,
        csr: FactorCSR,
        fill_states: Mapping[int, float],
        identity: float,
        graph_version: Optional[int] = None,
    ) -> None:
        """Move the table to a new dense index space after a vertex delta.

        Surviving columns are gathered into their new positions with their
        parent links re-pointed; columns of removed vertices are dropped (a
        removed parent becomes ``None``, which the post-propagation refresh
        overwrites — every child of a removed vertex is an endpoint of a
        deleted edge and therefore stale); brand-new columns start parentless
        with their value taken from ``fill_states``.  A delta that left the
        vertex-id space untouched (the common, edge-only case) is a no-op
        beyond the version stamp.
        """
        if self.matches_ids(csr.vertex_ids):
            if graph_version is not None:
                self.graph_version = graph_version
            return
        new_ids = csr.vertex_ids
        new_index = csr.index
        n_new = len(new_ids)
        old_index = self.index
        gather = np.fromiter(
            (old_index.get(vertex, -1) for vertex in new_ids), np.int64, count=n_new
        )
        old_to_new = np.full(len(self.vertex_ids), -1, dtype=np.int64)
        kept = gather >= 0
        old_to_new[gather[kept]] = np.nonzero(kept)[0]

        values = np.fromiter(
            (fill_states.get(vertex, identity) for vertex in new_ids),
            np.float64,
            count=n_new,
        )
        values[kept] = self.values[gather[kept]]

        parent_pos = np.full(n_new, -1, dtype=np.int64)
        old_parents = self.parent_pos[gather[kept]]
        safe = np.where(old_parents >= 0, old_parents, 0)
        parent_pos[kept] = np.where(old_parents >= 0, old_to_new[safe], -1)

        self.vertex_ids = list(new_ids)
        self.index = new_index
        self.parent_pos = parent_pos
        self.values = values
        if graph_version is not None:
            self.graph_version = graph_version
        self._levels_stale = True

    # ------------------------------------------------------------------
    # dependency levels
    # ------------------------------------------------------------------
    def _refresh_levels(self) -> None:
        """Recompute the forest depths with pointer doubling (O(V log d)).

        A parent cycle (possible with zero-weight support loops) leaves
        ``levels`` as ``None``; :meth:`taint_tree` then uses the mask
        fixpoint, which converges regardless.
        """
        parent = self.parent_pos
        n = parent.size
        self._levels_stale = False
        self._level_order = None
        self._level_starts = None
        self._child_order = None
        self._child_sorted = None
        self._children_added = {}
        self._moved_mask = None
        self._moves_by_level = {}
        self._move_level_of = {}
        self.level_rebuilds += 1
        if n == 0:
            self.levels = np.zeros(0, dtype=np.int64)
            return
        # Pointer doubling: ``level[i]`` counts the steps from ``i`` to
        # ``jump[i]`` (or to its root once ``jump[i]`` is -1); every round
        # both quantities compose with the jump target's, doubling the
        # walked distance, so depth-d forests settle in O(log d) rounds.
        level = (parent >= 0).astype(np.int64)
        jump = parent.copy()
        limit = int(math.ceil(math.log2(max(n, 2)))) + 2
        iterations = 0
        while True:
            live = jump >= 0
            if not live.any():
                break
            if iterations > limit:
                self.levels = None
                return
            targets = jump[live]
            level[live] = level[live] + level[targets]
            jump[live] = jump[targets]
            iterations += 1
        self.levels = level

    # ------------------------------------------------------------------
    # incremental level maintenance
    # ------------------------------------------------------------------
    def _ensure_child_index(self) -> None:
        """Build the rows-sorted-by-parent index used to walk subtrees.

        Built lazily on the first level patch (full rebuilds drop it), from
        the *current* parent array; rows re-parented afterwards are tracked
        in ``_children_added`` and every base hit is re-validated against
        ``parent_pos``, so the index never needs re-sorting between rebuilds.
        """
        if self._child_order is None:
            self._child_order = np.argsort(self.parent_pos, kind="stable")
            self._child_sorted = self.parent_pos[self._child_order]
            self._children_added = {}

    def _children_of(self, rows: np.ndarray) -> np.ndarray:
        """Current children (rows whose parent is in ``rows``), deduplicated."""
        left = np.searchsorted(self._child_sorted, rows, side="left")
        right = np.searchsorted(self._child_sorted, rows, side="right")
        counts = right - left
        total = int(counts.sum())
        pieces = []
        if total:
            slots = expand_edges(left, counts, total)
            candidates = self._child_order[slots]
            keep = self.parent_pos[candidates] == np.repeat(rows, counts)
            if keep.any():
                pieces.append(candidates[keep])
        extras: List[int] = []
        for row in rows.tolist():
            for child in self._children_added.get(row, ()):
                if self.parent_pos[child] == row:
                    extras.append(child)
        if extras:
            pieces.append(np.fromiter(extras, np.int64, count=len(extras)))
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(pieces)) if len(pieces) > 1 else np.unique(pieces[0])

    def _record_moves(self, moved: np.ndarray, moved_levels: np.ndarray) -> None:
        """Move rows between level buckets without re-sorting the base order."""
        if self._moved_mask is None:
            self._moved_mask = np.zeros(self.parent_pos.size, dtype=bool)
        for row, level in zip(moved.tolist(), moved_levels.tolist()):
            previous = self._move_level_of.get(row)
            if previous is not None:
                self._moves_by_level[previous].discard(row)
            self._move_level_of[row] = level
            self._moves_by_level.setdefault(level, set()).add(row)
            self._moved_mask[row] = True

    def _patch_levels(self, rows: np.ndarray, old_parents: np.ndarray) -> bool:
        """Repair ``levels`` in place after :meth:`refresh` re-derived ``rows``.

        Only rows whose parent actually changed can move; their new depths are
        pushed down the (new) subtrees with a children BFS.  Returns ``False``
        — caller marks the levels stale for a full rebuild — when the walk
        blows its budget (new-parent cycle, or a re-parenting that drags a
        large subtree) or the bucket overlay has grown past ``n/4``.
        """
        levels = self.levels
        parent = self.parent_pos
        changed = rows[parent[rows] != old_parents]
        if changed.size == 0:
            return True
        self._ensure_child_index()
        for row, new_parent in zip(changed.tolist(), parent[changed].tolist()):
            if new_parent >= 0:
                self._children_added.setdefault(new_parent, []).append(row)
        n = parent.size
        budget = 4 * n + 16
        visited = 0
        frontier = np.unique(changed)
        while frontier.size:
            visited += int(frontier.size)
            if visited > budget:
                return False
            has_parent = parent[frontier] >= 0
            safe = np.where(has_parent, parent[frontier], 0)
            new_levels = np.where(has_parent, levels[safe] + 1, 0)
            moved_here = new_levels != levels[frontier]
            if not moved_here.any():
                break
            moved = frontier[moved_here]
            moved_levels = new_levels[moved_here]
            levels[moved] = moved_levels
            self._record_moves(moved, moved_levels)
            frontier = self._children_of(moved)
        if self._moved_mask is not None and int(self._moved_mask.sum()) > n // 4:
            return False
        return True

    # ------------------------------------------------------------------
    # taint expansion
    # ------------------------------------------------------------------
    def taint_tree(self, roots: np.ndarray) -> np.ndarray:
        """Boolean mask of the dependency-tree dependents of ``roots``.

        Set-equal to :func:`repro.incremental.dependency.
        dependents_single_parent`: every vertex whose parent chain passes
        through a root.  Processed as one sweep in ascending forest-level
        order (a parent's level is strictly below its children's), falling
        back to a mask fixpoint when the levels are unavailable.
        """
        n = self.parent_pos.size
        mask = np.zeros(n, dtype=bool)
        if roots.size == 0:
            return mask
        mask[roots] = True
        parent = self.parent_pos
        if self._levels_stale:
            self._refresh_levels()
        if self.levels is not None:
            order, starts, max_level = self._level_buckets()
            moves = self._moves_by_level
            moved_mask = self._moved_mask
            if moves:
                populated = [level for level, rows_ in moves.items() if rows_]
                if populated:
                    max_level = max(max_level, max(populated))
            safe = np.where(parent >= 0, parent, 0)
            for level in range(1, max_level + 1):
                if level < starts.size - 1:
                    bucket = order[starts[level] : starts[level + 1]]
                else:
                    bucket = _EMPTY_ROWS
                if moved_mask is not None:
                    # rows moved since the bucket order was built are swept
                    # at their current level instead of their build-time one
                    if bucket.size:
                        bucket = bucket[~moved_mask[bucket]]
                    extra = moves.get(level)
                    if extra:
                        moved_rows = np.fromiter(extra, np.int64, count=len(extra))
                        bucket = (
                            np.concatenate([bucket, moved_rows])
                            if bucket.size
                            else moved_rows
                        )
                if not bucket.size:
                    continue
                hits = mask[safe[bucket]] & (parent[bucket] >= 0)
                if hits.any():
                    mask[bucket[hits]] = True
            return mask
        valid = parent >= 0
        safe = np.where(valid, parent, 0)
        while True:
            newly = valid & ~mask & mask[safe]
            if not newly.any():
                return mask
            mask[newly] = True

    def _level_buckets(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """Vertices sorted by forest level plus per-level slice starts."""
        if self._level_order is None:
            levels = self.levels
            assert levels is not None
            self._level_order = np.argsort(levels, kind="stable")
            max_level = int(levels[self._level_order[-1]]) if levels.size else 0
            self._level_starts = np.searchsorted(
                levels[self._level_order], np.arange(max_level + 2)
            )
        return (
            self._level_order,
            self._level_starts,
            int(self._level_starts.size - 2),
        )

    def taint_dag(self, out_csr: FactorCSR, roots: np.ndarray) -> np.ndarray:
        """Boolean mask of the value-supporting DAG reachable from ``roots``.

        Set-equal to :func:`repro.incremental.dependency.dependents_dag`:
        a frontier walk on the cached out-edge CSR following every edge whose
        offer equals its target's (non-identity) state.  ``combine`` is the
        classified ``+`` (the dense gate admits only the min/+ algebra), so
        the offers are the exact floats the dict reference computes.
        """
        n = self.parent_pos.size
        mask = np.zeros(n, dtype=bool)
        values = self.values
        identity = math.inf
        frontier = np.unique(roots)
        offsets, targets, factors, out_degree = (
            out_csr.offsets,
            out_csr.targets,
            out_csr.factors,
            out_csr.out_degree,
        )
        while frontier.size:
            mask[frontier] = True
            counts = out_degree[frontier]
            total = int(counts.sum())
            if not total:
                break
            slots = expand_edges(offsets[frontier], counts, total)
            edge_targets = targets[slots]
            offered = np.repeat(values[frontier], counts) + factors[slots]
            supported = (
                ~mask[edge_targets]
                & (values[edge_targets] != identity)
                & (offered == values[edge_targets])
            )
            frontier = np.unique(edge_targets[supported])
        return mask

    # ------------------------------------------------------------------
    # trim and seed
    # ------------------------------------------------------------------
    def trim_and_seed(
        self,
        in_csr: FactorCSR,
        tainted_rows: np.ndarray,
        initial_messages: np.ndarray,
        identity: float,
    ) -> Tuple[np.ndarray, int]:
        """Re-pull every tainted vertex from its non-tainted in-neighbors.

        Array replay of :func:`repro.incremental.dependency.trim_and_seed`:
        each tainted row's best value starts at its root message and folds
        ``min`` over ``x_u + f_{u,v}`` of the surviving (non-tainted,
        non-identity) in-neighbors — ``min`` is order-insensitive and exact,
        so the floats match the dict loop bit for bit.  Returns the per-row
        best values and the number of in-edges visited (the F-work the
        engines meter), and resets the tainted columns of :attr:`values` to
        the identity afterwards, mirroring the dict loop's state resets.
        """
        best = initial_messages.copy()
        tainted_mask = np.zeros(self.values.size, dtype=bool)
        tainted_mask[tainted_rows] = True
        counts = in_csr.out_degree[tainted_rows]
        total = int(counts.sum())
        if total:
            slots = expand_edges(in_csr.offsets[tainted_rows], counts, total)
            sources = in_csr.targets[slots]
            segments = np.repeat(
                np.arange(tainted_rows.size, dtype=np.int64), counts
            )
            source_values = self.values[sources]
            keep = ~tainted_mask[sources] & (source_values != identity)
            if keep.any():
                offered = source_values[keep] + in_csr.factors[slots][keep]
                np.minimum.at(best, segments[keep], offered)
        self.values[tainted_rows] = identity
        return best, total

    # ------------------------------------------------------------------
    # post-propagation refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        in_csr: FactorCSR,
        out_csr: FactorCSR,
        states: Mapping[int, float],
        seed_rows: np.ndarray,
        initial_states: np.ndarray,
        identity: float,
        graph_version: Optional[int] = None,
        changed_rows: Optional[np.ndarray] = None,
    ) -> None:
        """Re-derive the parents of every vertex whose support may have changed.

        ``seed_rows`` are the rows the engine already knows are stale
        (tainted vertices plus changed-edge endpoints); the refresh adds the
        vertices whose state changed this delta and the out-neighbors of
        every stale vertex — exactly the stale set of the dict reference's
        ``_refresh_parents`` — then replays ``compute_parents`` on the cached
        in-edge CSR: a stale vertex gets the *first* in-neighbor (row order =
        adjacency insertion order) whose non-identity state offers exactly
        the vertex's state, or no parent when it holds the identity or its
        own root value.

        ``changed_rows``, when given, is a superset of the rows whose state
        may differ from :attr:`values` (the engine tracks every write to its
        working dict); only those rows are re-gathered from ``states``
        instead of the full O(V) sweep.  Rows outside it are trusted to
        still match — the caller owns that invariant.  The forest levels are
        patched in place when only a few parents moved, and marked for a
        full pointer-doubling rebuild otherwise.
        """
        ids = self.vertex_ids
        n = len(ids)
        if changed_rows is None:
            # The engine invariant guarantees a state for every graph vertex
            # at this point (removed ones popped, added ones seeded), so the
            # gather can use the C-level ``map``/``__getitem__`` fast path.
            new_values = np.fromiter(
                map(states.__getitem__, ids), np.float64, count=n
            )
            changed = ~(new_values == self.values)
            self.full_value_gathers += 1
        else:
            changed = np.zeros(n, dtype=bool)
            if changed_rows.size:
                gathered = np.fromiter(
                    (states[ids[row]] for row in changed_rows.tolist()),
                    np.float64,
                    count=changed_rows.size,
                )
                diff = ~(gathered == self.values[changed_rows])
                changed[changed_rows[diff]] = True
                self.values[changed_rows] = gathered
            new_values = self.values
            self.partial_value_gathers += 1

        stale = np.zeros(n, dtype=bool)
        stale[seed_rows] = True
        expand_from = np.nonzero(stale | changed)[0]
        stale[expand_from] = True
        counts = out_csr.out_degree[expand_from]
        total = int(counts.sum())
        if total:
            slots = expand_edges(out_csr.offsets[expand_from], counts, total)
            stale[out_csr.targets[slots]] = True

        if changed_rows is None:
            self.values = new_values
        rows = np.nonzero(stale)[0]
        if rows.size:
            parent = np.full(rows.size, -1, dtype=np.int64)
            needs = (new_values[rows] != identity) & (
                new_values[rows] != initial_states[rows]
            )
            candidate_rows = rows[needs]
            counts = in_csr.out_degree[candidate_rows]
            total = int(counts.sum())
            if total:
                slots = expand_edges(in_csr.offsets[candidate_rows], counts, total)
                sources = in_csr.targets[slots]
                segments = np.repeat(
                    np.arange(candidate_rows.size, dtype=np.int64), counts
                )
                source_values = new_values[sources]
                offered = source_values + in_csr.factors[slots]
                valid = (source_values != identity) & (
                    offered == new_values[candidate_rows][segments]
                )
                first = np.full(candidate_rows.size, total, dtype=np.int64)
                slot_order = np.arange(total, dtype=np.int64)
                np.minimum.at(first, segments[valid], slot_order[valid])
                found = first < total
                winners = np.full(candidate_rows.size, -1, dtype=np.int64)
                winners[found] = sources[first[found]]
                parent[np.nonzero(needs)[0]] = winners
            old_parents = self.parent_pos[rows].copy()
            self.parent_pos[rows] = parent
        if graph_version is not None:
            self.graph_version = graph_version
        if not rows.size:
            return
        if self._levels_stale or self.levels is None:
            self._levels_stale = True
        elif self._patch_levels(rows, old_parents):
            self.level_patches += 1
        else:
            self._levels_stale = True
