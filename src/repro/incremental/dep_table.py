"""Dense dependency trees for the selective engines.

KickStarter, RisGraph and Ingress's memoization-path policy maintain the
value dependencies of converged selective computations as a per-vertex Python
dict (``{vertex: winning in-neighbor}``, :mod:`repro.incremental.dependency`).
After PR 4 that left the selective subsystem as the last dict-and-set hot
path: taint expansion walks supporting edges one Python call at a time,
trim-and-seed re-aggregates every tainted vertex through ``in_neighbors``
dictionaries, and the post-propagation parent refresh re-scans every state
for changes.  :class:`DepTable` closes the gap the same way
:class:`repro.incremental.memo.MemoTable` did for the BSP engines:

* ``parent_pos`` — the winning in-neighbor of every vertex as a dense
  position (``-1`` = no parent), keyed by the cached in-edge factor CSR's
  vertex index (the ``sorted(graph.vertices())`` space the
  :mod:`repro.graph.csr_cache` snapshots share);
* ``levels`` — each vertex's depth in the dependency forest, recomputed with
  pointer doubling after every parent refresh; a level-ordered sweep taints a
  whole dependency *tree* in one pass (RisGraph/Ingress), and a mask-based
  frontier walk on the cached out-edge CSR taints the conservative
  dependency *DAG* (KickStarter);
* ``values`` — the converged states as one float64 array, so support checks
  (``combine(x_u, f_{u,v}) == x_v``) and the trimmed-vertex re-pull run as
  row gathers instead of dict lookups.

The table is built lazily from the dict reference on the first dense delta,
remapped with one gather when a delta changes the vertex-id space, and
**demoted** back to the dict (``to_parents_dict``) whenever the dense gate
fails: Python backend, CSR cache disabled, an algebra outside min/+, NaN
factors or states, or the ``REPRO_DEP_DENSE=0`` escape hatch.  The dict
engines in :mod:`repro.incremental.dependency` remain the semantic reference;
``tests/incremental/test_dep_table.py`` pins the dense path to it bitwise —
states, rounds, edge activations — over random edge+vertex delta sequences.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.engine.backends import (  # noqa: F401 (re-export: the knob lives
    DEP_DENSE_ENV_VAR,  # with the other backend env vars)
    dep_dense_enabled,
)
from repro.graph.csr import FactorCSR, expand_edges


class DepTable:
    """Dense dependency-forest store of one selective engine.

    The column space is the dense vertex index of the engine's cached
    in-edge factor CSR; ``graph_version`` records the
    :attr:`repro.graph.graph.Graph.version` the columns were last
    synchronized against (introspection only — the authoritative sync check
    is the id-list comparison against the CSR, as for ``MemoTable``).
    """

    __slots__ = (
        "vertex_ids",
        "index",
        "parent_pos",
        "values",
        "levels",
        "graph_version",
        "_levels_stale",
        "_level_order",
        "_level_starts",
    )

    def __init__(
        self,
        vertex_ids: Sequence[int],
        index: Mapping[int, int],
        parent_pos: np.ndarray,
        values: np.ndarray,
        graph_version: Optional[int] = None,
    ) -> None:
        self.vertex_ids: List[int] = list(vertex_ids)
        self.index: Mapping[int, int] = index
        self.parent_pos = parent_pos
        self.values = values
        #: per-vertex depth in the dependency forest (0 = no parent), or
        #: ``None`` when the parent array contains a cycle (zero-weight
        #: support loops) — tree tainting then falls back to the fixpoint.
        #: Computed lazily on the first :meth:`taint_tree` after a parent
        #: change (the DAG policy never pays for it); ``False`` marks stale.
        self.levels: Optional[np.ndarray] = None
        self.graph_version = graph_version
        self._levels_stale = True
        self._level_order: Optional[np.ndarray] = None
        self._level_starts: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of columns (vertices in the dense index space)."""
        return len(self.vertex_ids)

    def matches_ids(self, vertex_ids: Sequence[int]) -> bool:
        """Whether the table's column space equals ``vertex_ids`` (in order)."""
        return self.vertex_ids == list(vertex_ids)

    def forest_levels(self) -> Optional[np.ndarray]:
        """The per-vertex forest depths, computed on demand (``None`` on a
        parent cycle — the tree taint then uses its fixpoint fallback)."""
        if self._levels_stale:
            self._refresh_levels()
        return self.levels

    def parent_of(self, vertex: int) -> Optional[int]:
        """The recorded dependency parent of ``vertex`` (``None`` = root)."""
        position = self.index.get(vertex)
        if position is None:
            return None
        parent = int(self.parent_pos[position])
        return self.vertex_ids[parent] if parent >= 0 else None

    def to_parents_dict(self) -> Dict[int, Optional[int]]:
        """The dict-reference representation (used on demotion)."""
        ids = self.vertex_ids
        return {
            vertex: (ids[int(parent)] if parent >= 0 else None)
            for vertex, parent in zip(ids, self.parent_pos)
        }

    # ------------------------------------------------------------------
    # construction / promotion
    # ------------------------------------------------------------------
    @classmethod
    def from_parents(
        cls,
        csr: FactorCSR,
        states: Mapping[int, float],
        parents: Mapping[int, Optional[int]],
        identity: float,
        graph_version: Optional[int] = None,
    ) -> "DepTable":
        """Build the dense table from the dict reference (promotion)."""
        ids = csr.vertex_ids
        index = csr.index
        n = len(ids)
        parent_pos = np.fromiter(
            (
                index.get(parents.get(vertex), -1)
                if parents.get(vertex) is not None
                else -1
                for vertex in ids
            ),
            np.int64,
            count=n,
        )
        values = np.fromiter(
            (states.get(vertex, identity) for vertex in ids), np.float64, count=n
        )
        return cls(ids, index, parent_pos, values, graph_version=graph_version)

    # ------------------------------------------------------------------
    # delta maintenance
    # ------------------------------------------------------------------
    def remap(
        self,
        csr: FactorCSR,
        fill_states: Mapping[int, float],
        identity: float,
        graph_version: Optional[int] = None,
    ) -> None:
        """Move the table to a new dense index space after a vertex delta.

        Surviving columns are gathered into their new positions with their
        parent links re-pointed; columns of removed vertices are dropped (a
        removed parent becomes ``None``, which the post-propagation refresh
        overwrites — every child of a removed vertex is an endpoint of a
        deleted edge and therefore stale); brand-new columns start parentless
        with their value taken from ``fill_states``.  A delta that left the
        vertex-id space untouched (the common, edge-only case) is a no-op
        beyond the version stamp.
        """
        if self.matches_ids(csr.vertex_ids):
            if graph_version is not None:
                self.graph_version = graph_version
            return
        new_ids = csr.vertex_ids
        new_index = csr.index
        n_new = len(new_ids)
        old_index = self.index
        gather = np.fromiter(
            (old_index.get(vertex, -1) for vertex in new_ids), np.int64, count=n_new
        )
        old_to_new = np.full(len(self.vertex_ids), -1, dtype=np.int64)
        kept = gather >= 0
        old_to_new[gather[kept]] = np.nonzero(kept)[0]

        values = np.fromiter(
            (fill_states.get(vertex, identity) for vertex in new_ids),
            np.float64,
            count=n_new,
        )
        values[kept] = self.values[gather[kept]]

        parent_pos = np.full(n_new, -1, dtype=np.int64)
        old_parents = self.parent_pos[gather[kept]]
        safe = np.where(old_parents >= 0, old_parents, 0)
        parent_pos[kept] = np.where(old_parents >= 0, old_to_new[safe], -1)

        self.vertex_ids = list(new_ids)
        self.index = new_index
        self.parent_pos = parent_pos
        self.values = values
        if graph_version is not None:
            self.graph_version = graph_version
        self._levels_stale = True

    # ------------------------------------------------------------------
    # dependency levels
    # ------------------------------------------------------------------
    def _refresh_levels(self) -> None:
        """Recompute the forest depths with pointer doubling (O(V log d)).

        A parent cycle (possible with zero-weight support loops) leaves
        ``levels`` as ``None``; :meth:`taint_tree` then uses the mask
        fixpoint, which converges regardless.
        """
        parent = self.parent_pos
        n = parent.size
        self._levels_stale = False
        self._level_order = None
        self._level_starts = None
        if n == 0:
            self.levels = np.zeros(0, dtype=np.int64)
            return
        # Pointer doubling: ``level[i]`` counts the steps from ``i`` to
        # ``jump[i]`` (or to its root once ``jump[i]`` is -1); every round
        # both quantities compose with the jump target's, doubling the
        # walked distance, so depth-d forests settle in O(log d) rounds.
        level = (parent >= 0).astype(np.int64)
        jump = parent.copy()
        limit = int(math.ceil(math.log2(max(n, 2)))) + 2
        iterations = 0
        while True:
            live = jump >= 0
            if not live.any():
                break
            if iterations > limit:
                self.levels = None
                return
            targets = jump[live]
            level[live] = level[live] + level[targets]
            jump[live] = jump[targets]
            iterations += 1
        self.levels = level

    # ------------------------------------------------------------------
    # taint expansion
    # ------------------------------------------------------------------
    def taint_tree(self, roots: np.ndarray) -> np.ndarray:
        """Boolean mask of the dependency-tree dependents of ``roots``.

        Set-equal to :func:`repro.incremental.dependency.
        dependents_single_parent`: every vertex whose parent chain passes
        through a root.  Processed as one sweep in ascending forest-level
        order (a parent's level is strictly below its children's), falling
        back to a mask fixpoint when the levels are unavailable.
        """
        n = self.parent_pos.size
        mask = np.zeros(n, dtype=bool)
        if roots.size == 0:
            return mask
        mask[roots] = True
        parent = self.parent_pos
        if self._levels_stale:
            self._refresh_levels()
        if self.levels is not None:
            order, starts, max_level = self._level_buckets()
            safe = np.where(parent >= 0, parent, 0)
            for level in range(1, max_level + 1):
                bucket = order[starts[level] : starts[level + 1]]
                if not bucket.size:
                    continue
                hits = mask[safe[bucket]] & (parent[bucket] >= 0)
                if hits.any():
                    mask[bucket[hits]] = True
            return mask
        valid = parent >= 0
        safe = np.where(valid, parent, 0)
        while True:
            newly = valid & ~mask & mask[safe]
            if not newly.any():
                return mask
            mask[newly] = True

    def _level_buckets(self) -> Tuple[np.ndarray, np.ndarray, int]:
        """Vertices sorted by forest level plus per-level slice starts."""
        if self._level_order is None:
            levels = self.levels
            assert levels is not None
            self._level_order = np.argsort(levels, kind="stable")
            max_level = int(levels[self._level_order[-1]]) if levels.size else 0
            self._level_starts = np.searchsorted(
                levels[self._level_order], np.arange(max_level + 2)
            )
        return (
            self._level_order,
            self._level_starts,
            int(self._level_starts.size - 2),
        )

    def taint_dag(self, out_csr: FactorCSR, roots: np.ndarray) -> np.ndarray:
        """Boolean mask of the value-supporting DAG reachable from ``roots``.

        Set-equal to :func:`repro.incremental.dependency.dependents_dag`:
        a frontier walk on the cached out-edge CSR following every edge whose
        offer equals its target's (non-identity) state.  ``combine`` is the
        classified ``+`` (the dense gate admits only the min/+ algebra), so
        the offers are the exact floats the dict reference computes.
        """
        n = self.parent_pos.size
        mask = np.zeros(n, dtype=bool)
        values = self.values
        identity = math.inf
        frontier = np.unique(roots)
        offsets, targets, factors, out_degree = (
            out_csr.offsets,
            out_csr.targets,
            out_csr.factors,
            out_csr.out_degree,
        )
        while frontier.size:
            mask[frontier] = True
            counts = out_degree[frontier]
            total = int(counts.sum())
            if not total:
                break
            slots = expand_edges(offsets[frontier], counts, total)
            edge_targets = targets[slots]
            offered = np.repeat(values[frontier], counts) + factors[slots]
            supported = (
                ~mask[edge_targets]
                & (values[edge_targets] != identity)
                & (offered == values[edge_targets])
            )
            frontier = np.unique(edge_targets[supported])
        return mask

    # ------------------------------------------------------------------
    # trim and seed
    # ------------------------------------------------------------------
    def trim_and_seed(
        self,
        in_csr: FactorCSR,
        tainted_rows: np.ndarray,
        initial_messages: np.ndarray,
        identity: float,
    ) -> Tuple[np.ndarray, int]:
        """Re-pull every tainted vertex from its non-tainted in-neighbors.

        Array replay of :func:`repro.incremental.dependency.trim_and_seed`:
        each tainted row's best value starts at its root message and folds
        ``min`` over ``x_u + f_{u,v}`` of the surviving (non-tainted,
        non-identity) in-neighbors — ``min`` is order-insensitive and exact,
        so the floats match the dict loop bit for bit.  Returns the per-row
        best values and the number of in-edges visited (the F-work the
        engines meter), and resets the tainted columns of :attr:`values` to
        the identity afterwards, mirroring the dict loop's state resets.
        """
        best = initial_messages.copy()
        tainted_mask = np.zeros(self.values.size, dtype=bool)
        tainted_mask[tainted_rows] = True
        counts = in_csr.out_degree[tainted_rows]
        total = int(counts.sum())
        if total:
            slots = expand_edges(in_csr.offsets[tainted_rows], counts, total)
            sources = in_csr.targets[slots]
            segments = np.repeat(
                np.arange(tainted_rows.size, dtype=np.int64), counts
            )
            source_values = self.values[sources]
            keep = ~tainted_mask[sources] & (source_values != identity)
            if keep.any():
                offered = source_values[keep] + in_csr.factors[slots][keep]
                np.minimum.at(best, segments[keep], offered)
        self.values[tainted_rows] = identity
        return best, total

    # ------------------------------------------------------------------
    # post-propagation refresh
    # ------------------------------------------------------------------
    def refresh(
        self,
        in_csr: FactorCSR,
        out_csr: FactorCSR,
        states: Mapping[int, float],
        seed_rows: np.ndarray,
        initial_states: np.ndarray,
        identity: float,
        graph_version: Optional[int] = None,
    ) -> None:
        """Re-derive the parents of every vertex whose support may have changed.

        ``seed_rows`` are the rows the engine already knows are stale
        (tainted vertices plus changed-edge endpoints); the refresh adds the
        vertices whose state changed this delta and the out-neighbors of
        every stale vertex — exactly the stale set of the dict reference's
        ``_refresh_parents`` — then replays ``compute_parents`` on the cached
        in-edge CSR: a stale vertex gets the *first* in-neighbor (row order =
        adjacency insertion order) whose non-identity state offers exactly
        the vertex's state, or no parent when it holds the identity or its
        own root value.  :attr:`values` is refreshed from ``states`` as one
        gather, and the forest levels are recomputed.
        """
        ids = self.vertex_ids
        n = len(ids)
        # The engine invariant guarantees a state for every graph vertex at
        # this point (removed ones popped, added ones seeded), so the gather
        # can use the C-level ``map``/``__getitem__`` fast path.
        new_values = np.fromiter(map(states.__getitem__, ids), np.float64, count=n)
        changed = ~(new_values == self.values)

        stale = np.zeros(n, dtype=bool)
        stale[seed_rows] = True
        expand_from = np.nonzero(stale | changed)[0]
        stale[expand_from] = True
        counts = out_csr.out_degree[expand_from]
        total = int(counts.sum())
        if total:
            slots = expand_edges(out_csr.offsets[expand_from], counts, total)
            stale[out_csr.targets[slots]] = True

        self.values = new_values
        rows = np.nonzero(stale)[0]
        if rows.size:
            parent = np.full(rows.size, -1, dtype=np.int64)
            needs = (new_values[rows] != identity) & (
                new_values[rows] != initial_states[rows]
            )
            candidate_rows = rows[needs]
            counts = in_csr.out_degree[candidate_rows]
            total = int(counts.sum())
            if total:
                slots = expand_edges(in_csr.offsets[candidate_rows], counts, total)
                sources = in_csr.targets[slots]
                segments = np.repeat(
                    np.arange(candidate_rows.size, dtype=np.int64), counts
                )
                source_values = new_values[sources]
                offered = source_values + in_csr.factors[slots]
                valid = (source_values != identity) & (
                    offered == new_values[candidate_rows][segments]
                )
                first = np.full(candidate_rows.size, total, dtype=np.int64)
                slot_order = np.arange(total, dtype=np.int64)
                np.minimum.at(first, segments[valid], slot_order[valid])
                found = first < total
                winners = np.full(candidate_rows.size, -1, dtype=np.int64)
                winners[found] = sources[first[found]]
                parent[np.nonzero(needs)[0]] = winners
            self.parent_pos[rows] = parent
        if graph_version is not None:
            self.graph_version = graph_version
        self._levels_stale = True
