"""DZiG-style incremental engine (Mariappan, Che & Vora, EuroSys'21).

DZiG keeps GraphBolt's per-iteration memoization but adds *sparsity-aware*
change propagation: when the set of vertices whose value changed at the
previous iteration is sparse, it pushes exact value *differences* along their
out-edges instead of re-aggregating every in-edge of every frontier vertex.
Pushing differences costs ``Σ out-degree(changed)`` edge activations instead
of GraphBolt's ``Σ in-degree(frontier)``, which is why DZiG sits between
GraphBolt and Ingress in Figures 1 and 6.  When the change set grows dense it
falls back to GraphBolt-style pulls.

Only accumulative algorithms are supported (PageRank, PHP).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental.base import IncrementalResult
from repro.incremental.graphbolt import GraphBoltEngine, _MAX_ITERATIONS


class DZiGEngine(GraphBoltEngine):
    """Sparsity-aware per-iteration refinement."""

    name = "dzig"
    supported_family = "accumulative"

    #: if the changed set is below this fraction of the vertices, push deltas
    sparsity_threshold: float = 0.05

    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()

        with phases.phase("graph update"):
            new_graph = self._update_graph(delta)
            added_vertices = {
                v for v in new_graph.vertices() if not old_graph.has_vertex(v)
            }
            removed_vertices = {
                v for v in old_graph.vertices() if not new_graph.has_vertex(v)
            }

        with phases.phase("sparsity-aware refinement"):
            # Snapshot the pre-delta memoization: exact difference pushes need
            # the old per-iteration values and the old edge factors.
            old_iterations = [dict(level) for level in self.iterations]
            self._prepare_iteration_zero(new_graph, added_vertices, removed_vertices)
            structurally_dirty = self._structurally_dirty_targets(
                old_graph, new_graph, delta, set(added_vertices)
            )
            changed_sources = self._changed_factor_sources(old_graph, new_graph, delta)
            states = self._refine_sparse(
                new_graph,
                old_graph,
                old_iterations,
                structurally_dirty,
                changed_sources,
                set(added_vertices),
                removed_vertices,
                metrics,
            )

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    def _old_level(
        self, old_iterations: List[Dict[int, float]], iteration: int
    ) -> Dict[int, float]:
        """Pre-delta memoized values at ``iteration`` (clamped to the tail)."""
        if not old_iterations:
            return {}
        return old_iterations[min(iteration, len(old_iterations) - 1)]

    def _refine_sparse(
        self,
        new_graph: Graph,
        old_graph: Graph,
        old_iterations: List[Dict[int, float]],
        structurally_dirty: Set[int],
        changed_sources: Set[int],
        added_vertices: Set[int],
        removed_vertices: Set[int],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        spec = self.spec
        # Same tightened threshold as GraphBolt (see _refine there).
        tolerance = spec.tolerance() * 0.1
        csr = self._bsp_csr(new_graph)
        num_vertices = max(new_graph.num_vertices(), 1)
        last_memo = len(self.iterations) - 1
        #: vertices whose value at the previous iteration differs from the
        #: pre-delta memoized value (added vertices count as changed)
        changed_prev: Set[int] = set(added_vertices)
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and not changed_prev:
                break
            push_sources = {
                v
                for v in (changed_prev | changed_sources)
                if new_graph.has_vertex(v) or old_graph.has_vertex(v)
            }
            frontier = self._frontier(new_graph, structurally_dirty, changed_prev)
            if not frontier and not push_sources:
                break
            if not in_memo_range:
                self.iterations.append(dict(self.iterations[iteration - 1]))
            previous = self.iterations[iteration - 1]
            old_previous = self._old_level(old_iterations, iteration - 1)
            old_level = self._old_level(old_iterations, iteration)
            level = self.iterations[iteration]
            sparse = len(push_sources) <= self.sparsity_threshold * num_vertices
            activations = 0
            changed_now: Set[int] = set()

            if sparse and in_memo_range and old_iterations:
                # Exact difference push: for every source whose contribution
                # changed, scatter (new contribution - old contribution).
                differences: Dict[int, float] = {}
                for source in push_sources:
                    new_value = previous.get(source, 0.0) if new_graph.has_vertex(source) else 0.0
                    old_value = (
                        old_previous.get(source, 0.0) if old_graph.has_vertex(source) else 0.0
                    )
                    targets: Set[int] = set()
                    if new_graph.has_vertex(source):
                        targets.update(new_graph.out_neighbors(source))
                    if old_graph.has_vertex(source):
                        targets.update(old_graph.out_neighbors(source))
                    for target in targets:
                        activations += 1
                        new_contribution = (
                            spec.combine(
                                new_value, spec.edge_factor(new_graph, source, target)
                            )
                            if new_graph.has_edge(source, target)
                            else 0.0
                        )
                        old_contribution = (
                            spec.combine(
                                old_value, spec.edge_factor(old_graph, source, target)
                            )
                            if old_graph.has_edge(source, target)
                            else 0.0
                        )
                        difference = new_contribution - old_contribution
                        if difference != 0.0:
                            differences[target] = differences.get(target, 0.0) + difference
                for target, difference in differences.items():
                    if (
                        not new_graph.has_vertex(target)
                        or spec.absorbs(target)
                        or target in added_vertices
                    ):
                        continue
                    base = old_level.get(target)
                    if base is None:
                        continue
                    new_value = base + difference
                    if abs(new_value - old_level.get(target, new_value)) > tolerance or abs(
                        difference
                    ) > tolerance:
                        changed_now.add(target)
                    level[target] = new_value
                # Added vertices have no memoized base value; pull them.
                fresh_pulls = {
                    vertex
                    for vertex in added_vertices
                    if new_graph.has_vertex(vertex) and not spec.absorbs(vertex)
                }
                if fresh_pulls:
                    pulled, pull_changed = self._pull_frontier(
                        new_graph, previous, fresh_pulls, level, tolerance, csr=csr
                    )
                    activations += pulled
                    changed_now |= pull_changed
            else:
                # Dense (or beyond the memoized range): GraphBolt-style pull.
                pulled, pull_changed = self._pull_frontier(
                    new_graph, previous, frontier, level, tolerance, csr=csr
                )
                activations += pulled
                changed_now |= pull_changed

            metrics.record_round(activations, len(frontier) or len(push_sources))
            changed_prev = changed_now
            iteration += 1
        return dict(self.iterations[-1])
