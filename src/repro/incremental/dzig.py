"""DZiG-style incremental engine (Mariappan, Che & Vora, EuroSys'21).

DZiG keeps GraphBolt's per-iteration memoization but adds *sparsity-aware*
change propagation: when the set of vertices whose value changed at the
previous iteration is sparse, it pushes exact value *differences* along their
out-edges instead of re-aggregating every in-edge of every frontier vertex.
Pushing differences costs ``Σ out-degree(changed)`` edge activations instead
of GraphBolt's ``Σ in-degree(frontier)``, which is why DZiG sits between
GraphBolt and Ingress in Figures 1 and 6.  When the change set grows dense it
falls back to GraphBolt-style pulls.

The memoized iterations share GraphBolt's two stores: the dict reference and
the dense :class:`repro.incremental.memo.MemoTable`.  With the dense store
active (:meth:`_refine_sparse_dense`) the pre-delta baseline is one matrix
snapshot (``MemoTable.copy``) instead of a per-level dict copy, the frontier
and changed sets live as sorted row arrays on the cached CSRs, and the
dense-fallback / added-vertex pulls are matrix gather/scatter.  Only the
delta-sized sparse difference push itself stays a Python loop (by design —
its footprint is the delta's, not the graph's), reading and writing matrix
rows through :class:`repro.incremental.memo.MemoRow` views.  Both stores are
bitwise interchangeable.

Only accumulative algorithms are supported (PageRank, PHP).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Union

import numpy as np

from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph
from repro.incremental.base import IncrementalResult
from repro.incremental.graphbolt import PHASE_SCAN, GraphBoltEngine, _MAX_ITERATIONS
from repro.incremental.memo import MemoRow, MemoTable, refinement_preamble

#: the pre-delta memoization snapshot: per-level dicts (reference store) or a
#: dense matrix copy (MemoTable store)
_OldStore = Union[List[Dict[int, float]], MemoTable]


class DZiGEngine(GraphBoltEngine):
    """Sparsity-aware per-iteration refinement."""

    name = "dzig"
    supported_family = "accumulative"

    #: if the changed set is below this fraction of the vertices, push deltas
    sparsity_threshold: float = 0.05

    # ------------------------------------------------------------------
    def _apply_delta(self, delta: GraphDelta) -> IncrementalResult:
        metrics = ExecutionMetrics()
        phases = PhaseTimer()
        old_graph = self._require_graph()

        with phases.phase("graph update"):
            new_graph = self._update_graph(delta)
            added_vertices, removed_vertices = self._vertex_membership_diff(
                old_graph, new_graph
            )

        with phases.phase(PHASE_SCAN):
            structurally_dirty = self._scan_dirty_targets(
                old_graph, new_graph, delta, added_vertices
            )
            changed_sources = self._scan_changed_factor_sources(
                old_graph, new_graph, delta
            )

        with phases.phase("sparsity-aware refinement"):
            # Snapshot the pre-delta memoization: exact difference pushes need
            # the old per-iteration values and the old edge factors.  The
            # dense store snapshots with one matrix copy (keeping the *old*
            # index space); the dict reference copies per level.
            old_store: _OldStore
            if self.memo is not None:
                old_store = self.memo.copy()
            else:
                old_store = [dict(level) for level in self._iterations]
            self._prepare_iteration_zero(new_graph, added_vertices, removed_vertices)
            if self.memo is None and isinstance(old_store, MemoTable):
                # The dense store demoted itself during preparation; the
                # baseline must follow it to the dict representation.
                old_store = old_store.to_dicts()
            states = self._refine_sparse(
                new_graph,
                old_graph,
                old_store,
                structurally_dirty,
                changed_sources,
                set(added_vertices),
                removed_vertices,
                metrics,
            )

        return IncrementalResult(states=states, metrics=metrics, phases=phases)

    # ------------------------------------------------------------------
    def _old_level(
        self, old_store: _OldStore, iteration: int
    ) -> Union[Dict[int, float], MemoRow]:
        """Pre-delta memoized values at ``iteration`` (clamped to the tail)."""
        if isinstance(old_store, MemoTable):
            if not old_store.num_levels:
                return {}
            return old_store.row_view(min(iteration, old_store.num_levels - 1))
        if not old_store:
            return {}
        return old_store[min(iteration, len(old_store) - 1)]

    def _push_differences(
        self,
        new_graph: Graph,
        old_graph: Graph,
        push_sources: Set[int],
        previous: Union[Dict[int, float], MemoRow],
        old_previous: Union[Dict[int, float], MemoRow],
        old_level: Union[Dict[int, float], MemoRow],
        level: Union[Dict[int, float], MemoRow],
        added_vertices: Set[int],
        tolerance: float,
    ) -> tuple:
        """One sparse round: scatter exact contribution differences.

        Shared verbatim between the dict store and the dense store (where the
        level arguments are :class:`MemoRow` views), so the visit order — and
        with it every float sum — is identical in both.  Returns
        ``(activations, changed_now)``.
        """
        spec = self.spec
        activations = 0
        changed_now: Set[int] = set()
        differences: Dict[int, float] = {}
        for source in push_sources:
            new_value = previous.get(source, 0.0) if new_graph.has_vertex(source) else 0.0
            old_value = (
                old_previous.get(source, 0.0) if old_graph.has_vertex(source) else 0.0
            )
            targets: Set[int] = set()
            if new_graph.has_vertex(source):
                targets.update(new_graph.out_neighbors(source))
            if old_graph.has_vertex(source):
                targets.update(old_graph.out_neighbors(source))
            for target in targets:
                activations += 1
                new_contribution = (
                    spec.combine(
                        new_value, spec.edge_factor(new_graph, source, target)
                    )
                    if new_graph.has_edge(source, target)
                    else 0.0
                )
                old_contribution = (
                    spec.combine(
                        old_value, spec.edge_factor(old_graph, source, target)
                    )
                    if old_graph.has_edge(source, target)
                    else 0.0
                )
                difference = new_contribution - old_contribution
                if difference != 0.0:
                    differences[target] = differences.get(target, 0.0) + difference
        for target, difference in differences.items():
            if (
                not new_graph.has_vertex(target)
                or spec.absorbs(target)
                or target in added_vertices
            ):
                continue
            base = old_level.get(target)
            if base is None:
                continue
            new_value = base + difference
            if abs(new_value - old_level.get(target, new_value)) > tolerance or abs(
                difference
            ) > tolerance:
                changed_now.add(target)
            level[target] = new_value
        return activations, changed_now

    def _refine_sparse(
        self,
        new_graph: Graph,
        old_graph: Graph,
        old_store: _OldStore,
        structurally_dirty: Set[int],
        changed_sources: Set[int],
        added_vertices: Set[int],
        removed_vertices: Set[int],
        metrics: ExecutionMetrics,
    ) -> Dict[int, float]:
        spec = self.spec
        # Same tightened threshold as GraphBolt (see _refine there).
        tolerance = spec.tolerance() * 0.1
        if self.memo is not None:
            csr = self._stashed_bsp_csr(new_graph) or self._bsp_csr(new_graph)
            if csr is not None and self.memo.matches_ids(csr.vertex_ids):
                assert isinstance(old_store, MemoTable)
                return self._refine_sparse_dense(
                    new_graph,
                    old_graph,
                    old_store,
                    structurally_dirty,
                    changed_sources,
                    added_vertices,
                    metrics,
                    tolerance,
                    csr,
                )
            # No usable CSR for the new graph: continue on dicts.
            self._demote_memo()
            if isinstance(old_store, MemoTable):
                old_store = old_store.to_dicts()
        csr = self._bsp_csr(new_graph)
        num_vertices = max(new_graph.num_vertices(), 1)
        last_memo = len(self._iterations) - 1
        #: vertices whose value at the previous iteration differs from the
        #: pre-delta memoized value (added vertices count as changed)
        changed_prev: Set[int] = set(added_vertices)
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and not changed_prev:
                break
            push_sources = {
                v
                for v in (changed_prev | changed_sources)
                if new_graph.has_vertex(v) or old_graph.has_vertex(v)
            }
            frontier = self._frontier(new_graph, structurally_dirty, changed_prev)
            if not frontier and not push_sources:
                break
            if not in_memo_range:
                self._iterations.append(dict(self._iterations[iteration - 1]))
            previous = self._iterations[iteration - 1]
            old_previous = self._old_level(old_store, iteration - 1)
            old_level = self._old_level(old_store, iteration)
            level = self._iterations[iteration]
            sparse = len(push_sources) <= self.sparsity_threshold * num_vertices
            activations = 0
            changed_now: Set[int] = set()

            if sparse and in_memo_range and len(old_store):
                # Exact difference push: for every source whose contribution
                # changed, scatter (new contribution - old contribution).
                activations, changed_now = self._push_differences(
                    new_graph,
                    old_graph,
                    push_sources,
                    previous,
                    old_previous,
                    old_level,
                    level,
                    added_vertices,
                    tolerance,
                )
                # Added vertices have no memoized base value; pull them.
                fresh_pulls = {
                    vertex
                    for vertex in added_vertices
                    if new_graph.has_vertex(vertex) and not spec.absorbs(vertex)
                }
                if fresh_pulls:
                    pulled, pull_changed = self._pull_frontier(
                        new_graph, previous, fresh_pulls, level, tolerance, csr=csr
                    )
                    activations += pulled
                    changed_now |= pull_changed
            else:
                # Dense (or beyond the memoized range): GraphBolt-style pull.
                pulled, pull_changed = self._pull_frontier(
                    new_graph, previous, frontier, level, tolerance, csr=csr
                )
                activations += pulled
                changed_now |= pull_changed

            metrics.record_round(activations, len(frontier) or len(push_sources))
            changed_prev = changed_now
            iteration += 1
        return dict(self._iterations[-1])

    # ------------------------------------------------------------------
    def _refine_sparse_dense(
        self,
        new_graph: Graph,
        old_graph: Graph,
        old_store: MemoTable,
        structurally_dirty: Set[int],
        changed_sources: Set[int],
        added_vertices: Set[int],
        metrics: ExecutionMetrics,
        tolerance: float,
        csr: FactorCSR,
    ) -> Dict[int, float]:
        """Sparsity-aware refinement on the dense memo table.

        The changed set is carried as a sorted row array between rounds;
        frontier assembly and push-set sizing are mask operations on the
        cached CSRs.  The Python id-sets of the reference are materialised
        only when a round actually runs the (delta-sized) sparse push, in the
        reference's exact construction order, so every float accumulation —
        and every set iteration the reference performs — is replayed
        identically.
        """
        spec = self.spec
        memo = self.memo
        ids = csr.vertex_ids
        index = csr.index
        n = csr.num_vertices
        root, keep_mask = self._dense_context(csr)
        out_csr, dirty_mask = refinement_preamble(
            self.csr_cache, spec, new_graph, csr, structurally_dirty
        )

        # The push set is changed_prev ∪ changed_sources filtered to live
        # vertices; the changed_sources half is fixed across rounds, so its
        # row mask (and the count of row-less members, i.e. removed-only
        # sources) is computed once.
        push_extra = {
            v
            for v in changed_sources
            if new_graph.has_vertex(v) or old_graph.has_vertex(v)
        }
        extra_mask = np.zeros(n, dtype=bool)
        for vertex in push_extra:
            row = index.get(vertex)
            if row is not None:
                extra_mask[row] = True
        extra_row_count = int(extra_mask.sum())
        extra_no_row = len(push_extra) - extra_row_count

        num_vertices = max(new_graph.num_vertices(), 1)
        last_memo = memo.num_levels - 1
        changed_rows = np.unique(
            np.fromiter(
                (index[v] for v in added_vertices), np.int64, count=len(added_vertices)
            )
        )
        #: the reference's changed_prev set, kept only while its construction
        #: order is known (sparse rounds build it; dense rounds leave the
        #: ascending row array, whose materialisation order matches the
        #: reference's ascending pull loop)
        changed_ids: Optional[Set[int]] = set(added_vertices)
        iteration = 1
        while iteration < _MAX_ITERATIONS:
            in_memo_range = iteration <= last_memo
            if not in_memo_range and changed_rows.size == 0:
                break
            if changed_rows.size:
                push_mask = extra_mask.copy()
                push_mask[changed_rows] = True
                push_size = int(push_mask.sum()) + extra_no_row
            else:
                push_size = extra_row_count + extra_no_row
            frontier_rows = self._frontier_rows(
                out_csr, dirty_mask, changed_rows, keep_mask
            )
            if frontier_rows.size == 0 and push_size == 0:
                break
            if not in_memo_range:
                memo.append_copy_of(iteration - 1)
            sparse = push_size <= self.sparsity_threshold * num_vertices
            activations = 0
            if sparse and in_memo_range and memo.num_levels and len(old_store):
                if changed_ids is None:
                    changed_ids = {ids[int(row)] for row in changed_rows}
                push_sources = {
                    v
                    for v in (changed_ids | changed_sources)
                    if new_graph.has_vertex(v) or old_graph.has_vertex(v)
                }
                previous = memo.row_view(iteration - 1)
                level = memo.row_view(iteration)
                activations, changed_now = self._push_differences(
                    new_graph,
                    old_graph,
                    push_sources,
                    previous,
                    self._old_level(old_store, iteration - 1),
                    self._old_level(old_store, iteration),
                    level,
                    added_vertices,
                    tolerance,
                )
                fresh_pulls = {
                    vertex
                    for vertex in added_vertices
                    if new_graph.has_vertex(vertex) and not spec.absorbs(vertex)
                }
                if fresh_pulls:
                    pulled, pull_changed = self._pull_frontier_memo(
                        csr, memo, iteration, fresh_pulls, tolerance, root
                    )
                    activations += pulled
                    changed_now |= pull_changed
                changed_ids = changed_now
                changed_rows = np.unique(
                    np.fromiter(
                        (index[v] for v in changed_now),
                        np.int64,
                        count=len(changed_now),
                    )
                )
            else:
                activations, changed_rows = self._pull_frontier_rows(
                    csr, memo, iteration, frontier_rows, tolerance, root
                )
                changed_ids = None
            metrics.record_round(activations, int(frontier_rows.size) or push_size)
            iteration += 1
        return memo.level_dict(memo.num_levels - 1)
