"""Incremental maintenance of compiled CSR snapshots across graph deltas.

PR 1 gave the delta-accumulative loop a vectorized CSR backend, but every
``propagate`` call recompiled the :class:`repro.graph.csr.FactorCSR` from
scratch — an O(V+E) Python-level row enumeration that dwarfs the actual
(small) incremental propagation work of a typical ΔG.  This module closes
that gap:

* :class:`CSRCache` keeps one compiled out-edge factor CSR (and, for the
  pull-based BSP engines, one in-edge factor CSR) alive per engine.  A
  :class:`repro.graph.delta.GraphDelta` is *patched* into the cached arrays
  — only the rows whose adjacency (and therefore factors) changed are
  re-enumerated in Python; everything else is moved with O(E) numpy
  gather/scatter, which has a far smaller constant than the per-edge Python
  loop of a fresh compile.  When a delta touches more than
  ``rebuild_fraction`` of the edges the patch is abandoned and the next
  access recompiles from scratch (amortized rebuild).
* Staleness is detected through :attr:`repro.graph.graph.Graph.version`:
  every cache entry records the graph object *and* its version counter at
  compile/patch time, so any out-of-band mutation (one not announced through
  :meth:`CSRCache.apply_delta`) forces a rebuild instead of serving stale
  arrays.
* :func:`master_factor_csr` memoizes the compile of a materialised
  :class:`repro.engine.propagation.FactorAdjacency` on the adjacency object
  itself, so repeated ``propagate`` calls over the same adjacency (Layph's
  per-boundary-vertex shortcut computations, retries with unchanged
  ``states``/``pending``) compile once instead of per call.

Patched arrays are **exactly** equal — ids, offsets, targets and factor bits
— to a fresh ``FactorCSR.from_graph`` compile of the updated graph; the
property tests in ``tests/test_properties.py`` enforce this after every delta
of a random sequence for all four algorithms.

Contract: edge factors must be a function of the edge and its *source's
out-adjacency* only (true for SSSP/BFS weight factors and for the
degree-normalized PageRank/PHP factors).  A spec whose factors depend on
more remote structure must not be cached.

Environment knobs:

* ``REPRO_CSR_CACHE=0`` force-disables all CSR caching (every access
  compiles fresh) — CI runs the tier-1 suite in this mode so the
  patched-CSR and fresh-compile paths are both exercised;
* ``REPRO_CSR_REBUILD_FRACTION`` overrides the amortized-rebuild threshold
  (default ``0.25``: a delta touching more than a quarter of the edges
  triggers a full recompile instead of a patch).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.graph.csr import FactorCSR
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph

#: environment variable that force-disables CSR caching when set to a falsy value
CSR_CACHE_ENV_VAR = "REPRO_CSR_CACHE"
#: environment variable overriding the amortized-rebuild threshold
REBUILD_FRACTION_ENV_VAR = "REPRO_CSR_REBUILD_FRACTION"
#: default fraction of edges a delta may touch before a patch is abandoned
DEFAULT_REBUILD_FRACTION = 0.25

_FALSY = {"0", "false", "off", "no"}


def env_flag_enabled(name: str, default: str = "1") -> bool:
    """Whether a boolean environment knob is enabled (default on).

    Shared by the CSR-cache knob here and the dense-memo knob in
    :mod:`repro.incremental.memo`, so every ``REPRO_*`` flag parses falsy
    values (``0``/``false``/``off``/``no``) identically.
    """
    return os.environ.get(name, default).strip().lower() not in _FALSY


def csr_cache_enabled() -> bool:
    """Whether CSR caching is enabled (the ``REPRO_CSR_CACHE`` knob)."""
    return env_flag_enabled(CSR_CACHE_ENV_VAR)


def rebuild_fraction_default() -> float:
    """The configured amortized-rebuild threshold."""
    raw = os.environ.get(REBUILD_FRACTION_ENV_VAR)
    if raw is None:
        return DEFAULT_REBUILD_FRACTION
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_REBUILD_FRACTION
    return value if value > 0.0 else DEFAULT_REBUILD_FRACTION


# ----------------------------------------------------------------------
# delta patching
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatchNote:
    """Provenance of one incremental CSR patch, attached to the patched
    snapshot's :attr:`~repro.graph.csr.FactorCSR.patch_note`.

    Downstream mirrors of the CSR arrays — the shared-memory slab arenas of
    :mod:`repro.parallel.arena` — use it to ship only the changed regions:
    when ``same_ids`` holds, every byte of ``targets``/``factors`` before the
    first changed row's offset is identical to ``parent``'s, and when
    ``counts_changed`` is additionally false, only the changed rows' own slot
    ranges differ at all.
    """

    #: the snapshot this one was patched from
    parent: FactorCSR
    #: sorted dense row indices whose content was re-enumerated
    changed_rows: np.ndarray
    #: whether the dense vertex-id space is unchanged (row numbers stable)
    same_ids: bool
    #: whether any row's edge count changed (offsets shifted past the first
    #: changed row); meaningful only when ``same_ids`` is true
    counts_changed: bool


def _changed_row_vertices(
    spec,
    orientation: str,
    added: List[Tuple[int, int, float]],
    deleted: List[Tuple[int, int, float]],
    old_graph: Graph,
    new_graph: Graph,
) -> Set[int]:
    """Vertices whose CSR row content (targets or factors) may have changed.

    For the out orientation a row changes exactly when its source's
    out-adjacency changes (factors depend only on that, see the module
    contract).  For the in orientation a row changes when edges into it are
    added/removed *or* when any in-neighbor's out-adjacency changed (its
    factors are functions of the source's out-adjacency) — unless the spec
    declares :attr:`repro.engine.algorithm.AlgorithmSpec.edge_local_factors`,
    in which case only the updated edges' targets can differ and the
    O(degree²) neighbor re-enumeration is skipped.
    """
    changed: Set[int] = set()
    if orientation == "out":
        for source, _target, _weight in added:
            changed.add(source)
        for source, _target, _weight in deleted:
            changed.add(source)
        return changed
    changed_sources: Set[int] = set()
    for source, target, _weight in added:
        changed.add(target)
        changed_sources.add(source)
    for source, target, _weight in deleted:
        changed.add(target)
        changed_sources.add(source)
    if getattr(spec, "edge_local_factors", False):
        return changed
    for source in changed_sources:
        if old_graph.has_vertex(source):
            changed.update(old_graph.out_neighbors(source))
        if new_graph.has_vertex(source):
            changed.update(new_graph.out_neighbors(source))
    return changed


def _patch_csr(
    spec,
    old_csr: FactorCSR,
    old_graph: Graph,
    new_graph: Graph,
    delta: GraphDelta,
    orientation: str,
    rebuild_fraction: float,
) -> Optional[FactorCSR]:
    """Patched snapshot for ``new_graph``, or ``None`` when a rebuild is due.

    Only the changed rows are re-enumerated in Python; unchanged rows are
    moved wholesale with numpy gather/scatter (targets remapped when the
    vertex-id space shifted).  The result is bit-for-bit identical to a
    fresh compile of ``new_graph``.
    """
    added = delta.added_edges(old_graph)
    deleted = delta.deleted_edges(old_graph)
    if not new_graph.directed:
        # Undirected graphs install/remove the reverse edge alongside every
        # update, so both endpoints' rows change.
        added = added + [(t, s, w) for s, t, w in added if s != t]
        deleted = deleted + [(t, s, w) for s, t, w in deleted if s != t]
    if len(added) + len(deleted) > rebuild_fraction * max(old_csr.num_edges, 1):
        return None

    changed = _changed_row_vertices(
        spec, orientation, added, deleted, old_graph, new_graph
    )

    old_ids = old_csr.vertex_ids
    old_index = old_csr.index
    new_ids = sorted(new_graph.vertices())
    n_new = len(new_ids)
    same_ids = new_ids == old_ids
    if same_ids:
        new_index = old_index
        old_row_of_new = np.arange(n_new, dtype=np.int64)
        remap: Optional[np.ndarray] = None
    else:
        new_index = {vertex: row for row, vertex in enumerate(new_ids)}
        old_row_of_new = np.fromiter(
            (old_index.get(vertex, -1) for vertex in new_ids), np.int64, count=n_new
        )
        remap = np.full(len(old_ids), -1, dtype=np.int64)
        for position, vertex in enumerate(old_ids):
            row = new_index.get(vertex)
            if row is not None:
                remap[position] = row

    changed_rows: Set[int] = {new_index[v] for v in changed if v in new_index}
    # Brand-new vertices have no old row to copy from, changed or not.
    changed_rows.update(int(row) for row in np.nonzero(old_row_of_new < 0)[0])

    # Re-enumerate the changed rows from the new graph (Python work
    # proportional to the delta's footprint, not to |E|).
    new_rows: Dict[int, List[Tuple[int, float]]] = {}
    for row in changed_rows:
        vertex = new_ids[row]
        if orientation == "out":
            entries = [
                (new_index[target], spec.edge_factor(new_graph, vertex, target))
                for target in new_graph.out_neighbors(vertex)
            ]
        else:
            entries = [
                (new_index[source], spec.edge_factor(new_graph, source, vertex))
                for source in new_graph.in_neighbors(vertex)
            ]
        new_rows[row] = entries

    changed_arr = np.fromiter(sorted(changed_rows), np.int64, count=len(changed_rows))
    unchanged_mask = np.ones(n_new, dtype=bool)
    if changed_arr.size:
        unchanged_mask[changed_arr] = False
    unchanged_rows = np.nonzero(unchanged_mask)[0]

    old_counts = old_csr.out_degree
    row_counts = np.zeros(n_new, dtype=np.int64)
    if unchanged_rows.size:
        row_counts[unchanged_rows] = old_counts[old_row_of_new[unchanged_rows]]
    for row in changed_rows:
        row_counts[row] = len(new_rows[row])

    counts = np.zeros(n_new + 1, dtype=np.int64)
    counts[1:] = row_counts
    offsets = np.cumsum(counts)
    num_edges = int(offsets[-1])
    targets = np.empty(num_edges, dtype=np.int64)
    factors = np.empty(num_edges, dtype=np.float64)

    # Bulk-move the unchanged rows.
    if unchanged_rows.size:
        if same_ids:
            # The dense index space is unchanged, so unchanged rows keep
            # their row number and the maximal runs of consecutive unchanged
            # rows are contiguous in both snapshots: splice each run with a
            # slice copy (memcpy speed) instead of a per-slot gather.
            breaks = np.nonzero(np.diff(unchanged_rows) != 1)[0] + 1
            for run in np.split(unchanged_rows, breaks):
                first, last = int(run[0]), int(run[-1])
                src0 = int(old_csr.offsets[first])
                src1 = int(old_csr.offsets[last + 1])
                dst0 = int(offsets[first])
                targets[dst0 : dst0 + (src1 - src0)] = old_csr.targets[src0:src1]
                factors[dst0 : dst0 + (src1 - src0)] = old_csr.factors[src0:src1]
        else:
            # The id space shifted, but runs of rows that are consecutive in
            # *both* snapshots are still contiguous slot ranges on both
            # sides: splice each such run with a slice copy (factors) and a
            # single contiguous-source gather (targets through the id remap)
            # instead of materialising per-slot index vectors for every edge.
            src_rows = old_row_of_new[unchanged_rows]
            breaks = (
                np.nonzero((np.diff(unchanged_rows) != 1) | (np.diff(src_rows) != 1))[0]
                + 1
            )
            for run, src_run in zip(
                np.split(unchanged_rows, breaks), np.split(src_rows, breaks)
            ):
                src0 = int(old_csr.offsets[src_run[0]])
                src1 = int(old_csr.offsets[src_run[-1] + 1])
                if src1 == src0:
                    continue
                dst0 = int(offsets[run[0]])
                moved = old_csr.targets[src0:src1]
                if remap is not None:
                    moved = remap[moved]
                    if (moved < 0).any():
                        # An unchanged row references a removed vertex: the
                        # factor-locality contract was violated; rebuild.
                        return None
                targets[dst0 : dst0 + (src1 - src0)] = moved
                factors[dst0 : dst0 + (src1 - src0)] = old_csr.factors[src0:src1]

    # Splice in the recomputed rows.
    for row in changed_rows:
        start = int(offsets[row])
        for slot, (target, factor) in enumerate(new_rows[row]):
            targets[start + slot] = target
            factors[start + slot] = factor

    patched = FactorCSR(new_ids, offsets, targets, factors, index=new_index)
    if same_ids:
        # The dense index space is unchanged: carry the memoized id array
        # forward so per-delta consumers (footprint row diffs, revision
        # deduction) do not re-materialise an O(V) conversion per patch.
        patched._ids_cache = old_csr._ids_cache
    patched.patch_note = PatchNote(
        parent=old_csr,
        changed_rows=changed_arr,
        same_ids=same_ids,
        counts_changed=bool(
            same_ids and not np.array_equal(offsets, old_csr.offsets)
        ),
    )
    # Sever the provenance chain at one generation so a long delta sequence
    # retains at most the immediately preceding snapshot.
    old_csr.patch_note = None
    return patched


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------
class _Entry:
    __slots__ = ("spec", "graph", "version", "csr")

    def __init__(self, spec, graph: Graph, version: int, csr: FactorCSR) -> None:
        self.spec = spec
        self.graph = graph
        self.version = version
        self.csr = csr


class CSRCache:
    """Compile-once / patch-per-delta cache of factor CSR snapshots.

    One instance is owned by each incremental engine.  ``out_csr``/``in_csr``
    return the compiled snapshot of the engine's current graph, compiling at
    most once per (graph, version); :meth:`apply_delta` moves the cached
    arrays forward in O(delta + E·numpy) instead of O(V+E) Python.  Every
    entry is validated against the graph's mutation counter, so out-of-band
    mutations are never served stale.
    """

    def __init__(
        self,
        enabled: Optional[bool] = None,
        rebuild_fraction: Optional[float] = None,
    ) -> None:
        self._enabled_override = enabled
        self._rebuild_override = rebuild_fraction
        self._entries: Dict[str, _Entry] = {}
        #: statistics (exposed for tests and benchmark reporting)
        self.compiles = 0
        self.patches = 0
        self.rebuilds = 0
        self.hits = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether this cache memoizes (the env knob is read dynamically)."""
        if self._enabled_override is not None:
            return self._enabled_override
        return csr_cache_enabled()

    @property
    def rebuild_fraction(self) -> float:
        """Delta-to-edges ratio beyond which patches give way to rebuilds."""
        if self._rebuild_override is not None:
            return self._rebuild_override
        return rebuild_fraction_default()

    # ------------------------------------------------------------------
    def out_csr(self, spec, graph: Graph) -> FactorCSR:
        """Out-edge factor CSR of ``graph`` under ``spec`` (cached)."""
        return self._get("out", spec, graph)

    def in_csr(self, spec, graph: Graph) -> FactorCSR:
        """In-edge factor CSR of ``graph`` under ``spec`` (cached)."""
        return self._get("in", spec, graph)

    def adjacency(self, spec, graph: Graph) -> "CachedGraphAdjacency":
        """Factor-adjacency view of ``graph`` served from this cache."""
        return CachedGraphAdjacency(self, spec, graph)

    def peek_csr(self, orientation: str, spec, graph: Graph) -> Optional[FactorCSR]:
        """Cached snapshot of ``graph`` if present and current, else ``None``.

        Unlike :meth:`out_csr`/:meth:`in_csr` this never compiles: the delta
        footprint (:mod:`repro.graph.footprint`) uses it to borrow whatever
        snapshots the engine already maintains without forcing an O(V+E)
        compile onto engines that never use that orientation.
        """
        if not self.enabled:
            return None
        entry = self._current_entry(orientation, spec, graph)
        return entry.csr if entry is not None else None

    def _current_entry(self, orientation: str, spec, graph: Graph) -> Optional[_Entry]:
        """The cached entry for ``orientation`` if it matches ``(spec, graph,
        version)`` exactly — the single definition of cache-hit validity."""
        entry = self._entries.get(orientation)
        if (
            entry is not None
            and entry.spec is spec
            and entry.graph is graph
            and entry.version == graph.version
        ):
            return entry
        return None

    def _compile(self, orientation: str, spec, graph: Graph) -> FactorCSR:
        self.compiles += 1
        if orientation == "out":
            return FactorCSR.from_graph(spec, graph)
        return FactorCSR.from_graph_in_edges(spec, graph)

    def _get(self, orientation: str, spec, graph: Graph) -> FactorCSR:
        if not self.enabled:
            return self._compile(orientation, spec, graph)
        entry = self._current_entry(orientation, spec, graph)
        if entry is not None:
            self.hits += 1
            return entry.csr
        if orientation in self._entries:
            self.invalidations += 1
        csr = self._compile(orientation, spec, graph)
        self._entries[orientation] = _Entry(spec, graph, graph.version, csr)
        return csr

    # ------------------------------------------------------------------
    def apply_delta(
        self, spec, old_graph: Graph, new_graph: Graph, delta: GraphDelta
    ) -> None:
        """Advance every cached snapshot from ``old_graph`` to ``new_graph``.

        Entries that do not match ``(spec, old_graph, version)`` — or whose
        patch exceeds the rebuild threshold — are dropped and recompiled
        lazily on the next access.
        """
        if not self.enabled:
            self._entries.clear()
            return
        for orientation in list(self._entries):
            entry = self._entries[orientation]
            if (
                entry.spec is not spec
                or entry.graph is not old_graph
                or entry.version != old_graph.version
            ):
                del self._entries[orientation]
                self.invalidations += 1
                continue
            try:
                patched = _patch_csr(
                    spec,
                    entry.csr,
                    old_graph,
                    new_graph,
                    delta,
                    orientation,
                    self.rebuild_fraction,
                )
            except Exception:
                patched = None
            if patched is None:
                del self._entries[orientation]
                self.rebuilds += 1
            else:
                self._entries[orientation] = _Entry(
                    spec, new_graph, new_graph.version, patched
                )
                self.patches += 1

    def install_csr(self, orientation: str, spec, graph: Graph, csr: FactorCSR) -> None:
        """Install a snapshot restored from a durable store.

        The entry is keyed by the live ``(spec, graph, version)`` triple like
        any compiled one, so subsequent accesses hit and subsequent deltas
        patch it forward.  No-op when caching is disabled.
        """
        if not self.enabled:
            return
        self._entries[orientation] = _Entry(spec, graph, graph.version, csr)

    def clear(self) -> None:
        """Drop every cached snapshot."""
        self._entries.clear()


class CachedGraphAdjacency:
    """Callable factor adjacency over a :class:`Graph`, cache-backed.

    Drop-in replacement for ``FactorAdjacency.from_graph(spec, graph)`` on the
    engines' full-graph propagation path: the Python loop iterates it like any
    adjacency (factors derived on the fly), while the vectorized backend asks
    for :meth:`compiled_csr` and skips both the adjacency materialisation and
    the CSR row enumeration entirely.
    """

    __slots__ = ("cache", "spec", "graph")

    def __init__(self, cache: CSRCache, spec, graph: Graph) -> None:
        self.cache = cache
        self.spec = spec
        self.graph = graph

    def __call__(self, vertex: int) -> List[Tuple[int, float]]:
        graph = self.graph
        spec = self.spec
        return [
            (target, spec.edge_factor(graph, vertex, target))
            for target in graph.out_neighbors(vertex)
        ]

    def __len__(self) -> int:
        return self.graph.num_edges()

    def vertices_with_out_edges(self) -> List[int]:
        """Vertices that have at least one out-edge."""
        graph = self.graph
        return [v for v in graph.vertices() if graph.out_degree(v) > 0]

    def compiled_csr(self, universe: Iterable[int]) -> Optional[FactorCSR]:
        """Cached CSR covering ``universe``, or ``None`` if it cannot.

        The cached snapshot indexes exactly the graph's vertices; a universe
        reaching outside it (states for vertices no longer in the graph)
        falls back to a fresh universe-specific compile in the caller.
        """
        csr = self.cache.out_csr(self.spec, self.graph)
        index = csr.index
        for vertex in universe:
            if vertex not in index:
                return None
        return csr


# ----------------------------------------------------------------------
# adjacency-level compile memo
# ----------------------------------------------------------------------
def master_factor_csr(base, universe: Iterable[int]) -> Optional[FactorCSR]:
    """Memoized full compile of a ``FactorAdjacency``-like object.

    The master snapshot (no silencing, universe grown monotonically) is
    stored on the adjacency object itself, keyed by its mutation counter;
    repeated ``propagate`` calls — or the B per-boundary-vertex silenced
    variants of one Layph shortcut computation, served through
    :class:`repro.graph.csr.FactorCSRView` — compile once instead of per
    call.  Returns ``None`` when caching is disabled or the adjacency does
    not carry a version counter (the caller then compiles fresh).
    """
    if not csr_cache_enabled():
        return None
    version = getattr(base, "_version", None)
    if version is None:
        return None
    universe = set(universe)
    memo = getattr(base, "_csr_memo", None)
    if memo is not None:
        memo_version, memo_ids, csr = memo
        if memo_version == version and universe <= memo_ids:
            return csr
        universe |= memo_ids
    csr = FactorCSR.from_factor_adjacency(base, universe=universe)
    base._csr_memo = (version, set(csr.vertex_ids), csr)
    return csr
