"""Plain-text edge-list I/O.

The format is one edge per line: ``source target [weight]``, whitespace
separated, ``#``-prefixed lines are comments.  This matches the common format
of the SNAP / LAW datasets the paper uses, so a user with access to the real
UK/IT/SK/WB graphs can load them directly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from repro.graph.graph import Graph


def load_edge_list(path: Union[str, Path], directed: bool = True) -> Graph:
    """Load a graph from a whitespace-separated edge-list file."""
    graph = Graph(directed=directed)
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{line_number}: expected 'source target [weight]', "
                    f"got {stripped!r}"
                )
            source, target = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            graph.add_edge(source, target, weight)
    return graph


def save_edge_list(graph: Graph, path: Union[str, Path]) -> None:
    """Write a graph to a whitespace-separated edge-list file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# |V|={graph.num_vertices()} |E|={graph.num_edges()}\n")
        for source, target, weight in graph.edges():
            handle.write(f"{source} {target} {weight}\n")
