"""Array-native per-delta footprint shared by every incremental engine.

After PR 3 the one remaining O(graph)-ish cost on every ``GraphDelta`` was a
pile of per-engine Python scans that each rebuilt the same information from
scratch:

* GraphBolt/DZiG re-derived the structurally-dirty targets and the
  changed-factor sources by materialising per-vertex factor dictionaries
  (every ``edge_factor`` call is Python work proportional to the source's
  out-degree);
* Ingress and Layph each re-expanded the delta (``added_edges`` /
  ``deleted_edges`` / ``touched_sources``) to build the candidate set behind
  :func:`repro.incremental.revision.changed_out_sources`;
* every engine discovered vertex additions/removals with two O(V) membership
  scans per delta.

:class:`DeltaFootprint` closes all of these at once: it is computed **once
per delta** (by :meth:`repro.incremental.base.IncrementalEngine._update_graph`)
from the ``GraphDelta`` and — when available — the engine's cached
:class:`repro.graph.csr.FactorCSR` snapshots of both graph versions, and it
exposes

* the delta expansion (added/deleted edge lists, touched sources/vertices)
  computed once and shared by every consumer,
* ``added_vertices`` / ``removed_vertices`` derived in O(delta) from the
  touched vertices instead of O(V) membership scans,
* ``changed_sources`` — the ascending changed-out-adjacency list that
  :func:`repro.incremental.revision.accumulative_revision_messages` and the
  engines' activation metering consume (bitwise equal to
  :func:`repro.incremental.revision.changed_out_sources`),
* ``dirty_targets`` / ``changed_factor_sources`` — the factor-level scans of
  the BSP engines, answered by diffing the cached old/new CSR rows with
  array ops (an order-insensitive row comparison that matches the dict
  references' map equality exactly) instead of re-evaluating ``edge_factor``
  in Python,
* the same results as sorted ``numpy`` index vectors (``*_array``) for the
  vectorized paths.

When the CSR snapshots are unavailable (Python backend, ``REPRO_CSR_CACHE=0``,
patch abandoned for an amortized rebuild) the footprint falls back to the
dict-reference comparisons — still computed once per delta.  Setting
``REPRO_DELTA_FOOTPRINT=0`` disables the footprint entirely: the engines then
run their original per-engine scans, which remain the semantic reference
(mirroring the ``REPRO_CSR_CACHE`` / ``REPRO_MEMO_DENSE`` demotion knobs).
The conformance suite in ``tests/graph/test_footprint.py`` pins every
footprint field to a brute-force recomputation from the two graphs, and every
engine to bitwise-identical results with the knob on and off.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.graph.csr import FactorCSR, expand_edges
from repro.graph.csr_cache import env_flag_enabled
from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph

#: environment variable that force-disables the shared delta footprint
FOOTPRINT_ENV_VAR = "REPRO_DELTA_FOOTPRINT"


def footprint_enabled() -> bool:
    """Whether the shared delta footprint is enabled (default on)."""
    return env_flag_enabled(FOOTPRINT_ENV_VAR)


def _rows_differ(
    old_csr: FactorCSR,
    new_csr: FactorCSR,
    pool: Sequence[int],
    missing_old_is_changed: bool,
) -> np.ndarray:
    """Boolean mask over ``pool``: does the vertex's CSR row content differ?

    A row is compared as the *map* ``{target_id: factor}`` — order
    insensitive, exactly like the dict references' factor-map equality — by
    sorting both rows' slots by target id and comparing element-wise.  A NaN
    factor never equals anything (matching ``dict.__eq__`` on fresh NaN
    values), so NaN rows always count as changed on both paths.

    ``missing_old_is_changed`` selects what a vertex without an old row
    means: ``True`` replays the dirty-target reference (``None != {...}`` —
    a brand-new vertex is always dirty); ``False`` replays the
    changed-factor-source reference (a missing graph membership is an empty
    factor map).  A missing *new* row is always treated as an empty map
    (callers filter pools that require new-graph membership themselves).
    """
    n = len(pool)
    mask = np.zeros(n, dtype=bool)
    if not n:
        return mask
    old_index = old_csr.index
    new_index = new_csr.index
    old_rows = np.fromiter((old_index.get(v, -1) for v in pool), np.int64, count=n)
    new_rows = np.fromiter((new_index.get(v, -1) for v in pool), np.int64, count=n)
    old_has = old_rows >= 0
    new_has = new_rows >= 0
    if missing_old_is_changed:
        mask |= ~old_has

    old_deg = np.zeros(n, dtype=np.int64)
    if old_has.any():
        old_deg[old_has] = old_csr.out_degree[old_rows[old_has]]
    new_deg = np.zeros(n, dtype=np.int64)
    if new_has.any():
        new_deg[new_has] = new_csr.out_degree[new_rows[new_has]]
    mask |= old_deg != new_deg

    check = ~mask & (old_deg > 0)
    if not check.any():
        return mask
    rows_o = old_rows[check]
    rows_n = new_rows[check]
    counts = old_deg[check]
    total = int(counts.sum())
    slots_o = expand_edges(old_csr.offsets[rows_o], counts, total)
    slots_n = expand_edges(new_csr.offsets[rows_n], counts, total)
    num_segments = int(check.sum())
    segments = np.repeat(np.arange(num_segments, dtype=np.int64), counts)
    targets_o = old_csr.ids_array()[old_csr.targets[slots_o]]
    targets_n = new_csr.ids_array()[new_csr.targets[slots_n]]
    factors_o = old_csr.factors[slots_o]
    factors_n = new_csr.factors[slots_n]
    # Rows whose target sequence is unchanged slot for slot (the common case
    # — unchanged and factor-only-changed rows are moved/recomputed by the
    # CSR patch with their adjacency order intact) have equal key sets in
    # matching positions, so map equality reduces to a positional factor
    # compare.  Only rows whose target sequence itself differs (an edge
    # deleted and re-added within one delta reorders the row) need the
    # order-insensitive multiset recheck — and only those pay a sort.
    target_diff = targets_o != targets_n
    factor_diff = ~(factors_o == factors_n)
    check_positions = np.nonzero(check)[0]
    reordered = np.zeros(num_segments, dtype=bool)
    if target_diff.any():
        reordered[segments[target_diff]] = True
    aligned_dirty = factor_diff & ~reordered[segments]
    if aligned_dirty.any():
        # Duplicate segment hits scatter idempotently; no dedup needed.
        mask[check_positions[segments[aligned_dirty]]] = True
    if reordered.any():
        keep = reordered[segments]
        seg_k = segments[keep]
        t_o = targets_o[keep]
        t_n = targets_n[keep]
        f_o = factors_o[keep]
        f_n = factors_n[keep]
        order_o = np.lexsort((t_o, seg_k))
        order_n = np.lexsort((t_n, seg_k))
        mismatch = (t_o[order_o] != t_n[order_n]) | ~(f_o[order_o] == f_n[order_n])
        if mismatch.any():
            # lexsort's primary key is the segment, so the sorted segment
            # vector is shared by both orders.
            seg_sorted = seg_k[order_o]
            mask[check_positions[seg_sorted[mismatch]]] = True
    return mask


def _id_array(vertices: Set[int]) -> np.ndarray:
    """Sorted int64 index vector of a vertex-id set."""
    return np.fromiter(sorted(vertices), np.int64, count=len(vertices))


def expand_weight_changes(
    old_graph: Graph,
    added: List[Tuple[int, int, float]],
    deleted: List[Tuple[int, int, float]],
) -> List[Tuple[int, int, float]]:
    """``deleted`` with weight-changing insertions made explicit deletions.

    An ``ADD_EDGE`` that overwrites an existing edge with a different weight
    is semantically a deletion of the old weight plus an insertion of the
    new one (the paper models weight changes as delete + add).  The single
    owner of that rule: :attr:`DeltaFootprint.invalidation_edges` caches its
    result per delta, and the selective engines' ``REPRO_DELTA_FOOTPRINT=0``
    fallback calls it directly on their own expansion.
    """
    expanded = list(deleted)
    explicitly_deleted = {(s, t) for s, t, _ in expanded}
    for source, target, weight in added:
        if (source, target) in explicitly_deleted:
            continue
        if (
            old_graph.has_edge(source, target)
            and old_graph.edge_weight(source, target) != weight
        ):
            explicitly_deleted.add((source, target))
            expanded.append((source, target, old_graph.edge_weight(source, target)))
    return expanded


class DeltaFootprint:
    """Everything the incremental engines need to know about one ΔG.

    Constructed once per delta by
    :meth:`repro.incremental.base.IncrementalEngine._update_graph`; the delta
    expansion and the vertex-membership diff are eager (O(delta)), the
    factor-level scans are computed lazily on first access and cached so
    every consumer of the same delta shares one result.
    """

    __slots__ = (
        "spec",
        "old_graph",
        "new_graph",
        "delta",
        "added_edges",
        "deleted_edges",
        "touched_sources",
        "touched_vertices",
        "added_vertices",
        "removed_vertices",
        "old_out_csr",
        "new_out_csr",
        "old_in_csr",
        "new_in_csr",
        "_changed_sources",
        "_changed_factor_sources",
        "_dirty_targets",
        "_invalidation_edges",
    )

    def __init__(
        self,
        spec,
        old_graph: Graph,
        new_graph: Graph,
        delta: GraphDelta,
        old_out_csr: Optional[FactorCSR] = None,
        new_out_csr: Optional[FactorCSR] = None,
        old_in_csr: Optional[FactorCSR] = None,
        new_in_csr: Optional[FactorCSR] = None,
    ) -> None:
        self.spec = spec
        self.old_graph = old_graph
        self.new_graph = new_graph
        self.delta = delta
        #: the delta's edge expansion against the old graph, computed once
        #: (``GraphDelta.added_edges``/``deleted_edges`` re-expand per call)
        self.added_edges: List[Tuple[int, int, float]] = delta.added_edges(old_graph)
        self.deleted_edges: List[Tuple[int, int, float]] = delta.deleted_edges(old_graph)
        self.old_out_csr = old_out_csr
        self.new_out_csr = new_out_csr
        self.old_in_csr = old_in_csr
        self.new_in_csr = new_in_csr

        # Touched sources/vertices: mirrors GraphDelta.touched_sources /
        # touched_vertices on the cached expansions (undirected graphs count
        # both endpoints of every edge update as sources).
        undirected = not old_graph.directed
        sources: Set[int] = set()
        vertices: Set[int] = set()
        for source, target, _weight in self.added_edges:
            sources.add(source)
            vertices.add(source)
            vertices.add(target)
            if undirected:
                sources.add(target)
        for source, target, _weight in self.deleted_edges:
            sources.add(source)
            vertices.add(source)
            vertices.add(target)
            if undirected:
                sources.add(target)
        for update in delta.vertex_updates:
            sources.add(update.vertex)
            vertices.add(update.vertex)
        self.touched_sources = sources
        self.touched_vertices = vertices

        # Vertex-membership diff in O(delta): only a vertex named by the
        # delta (an update's vertex or an expanded edge endpoint) can enter
        # or leave the graph.
        self.added_vertices: Set[int] = {
            v
            for v in vertices
            if new_graph.has_vertex(v) and not old_graph.has_vertex(v)
        }
        self.removed_vertices: Set[int] = {
            v
            for v in vertices
            if old_graph.has_vertex(v) and not new_graph.has_vertex(v)
        }

        self._changed_sources: Optional[List[int]] = None
        self._changed_factor_sources: Optional[Set[int]] = None
        self._dirty_targets: Optional[Set[int]] = None
        self._invalidation_edges: Optional[
            Tuple[List[Tuple[int, int, float]], List[Tuple[int, int, float]]]
        ] = None

    # ------------------------------------------------------------------
    # changed out-adjacency (weights) — the revision-deduction scan
    # ------------------------------------------------------------------
    @property
    def changed_sources(self) -> List[int]:
        """Ascending vertices whose out-adjacency (targets or weights) changed.

        Computed by :func:`repro.incremental.revision.changed_out_sources`
        itself — handed the footprint's touched sources and its O(delta)
        membership diff, so the shared scan skips the two O(V) vertex-set
        builds it would otherwise run per call.  Every candidate is verified
        by comparing its out-neighbor dictionaries (a C-level map comparison;
        no factor evaluation is involved, so there is nothing for the CSR
        arrays to accelerate here).
        """
        if self._changed_sources is None:
            # Imported lazily: the revision module sits one layer above the
            # graph package and pulls in the engine algebra on import.
            from repro.incremental.revision import changed_out_sources

            self._changed_sources = changed_out_sources(
                self.old_graph,
                self.new_graph,
                self.touched_sources,
                added_vertices=self.added_vertices,
                removed_vertices=self.removed_vertices,
            )
        return self._changed_sources

    @property
    def changed_source_array(self) -> np.ndarray:
        """:attr:`changed_sources` as an int64 index vector."""
        changed = self.changed_sources
        return np.fromiter(changed, np.int64, count=len(changed))

    # ------------------------------------------------------------------
    # changed out-factors — DZiG's push-source scan
    # ------------------------------------------------------------------
    @property
    def changed_factor_sources(self) -> Set[int]:
        """Vertices whose outgoing *factor* map changed.

        Matches ``GraphBoltEngine._changed_factor_sources`` exactly: the pool
        is the delta's touched sources (a vertex whose membership changed is
        always among them), a vertex absent from a graph has an empty factor
        map, and candidates are verified by factor comparison — on the cached
        old/new out-edge CSR rows when both snapshots are available, through
        ``edge_factor`` dictionaries otherwise.
        """
        if self._changed_factor_sources is None:
            pool = sorted(self.touched_sources)
            if self.old_out_csr is not None and self.new_out_csr is not None:
                mask = _rows_differ(
                    self.old_out_csr, self.new_out_csr, pool, missing_old_is_changed=False
                )
                self._changed_factor_sources = {
                    vertex for vertex, flag in zip(pool, mask) if flag
                }
            else:
                spec = self.spec
                old_graph = self.old_graph
                new_graph = self.new_graph
                changed: Set[int] = set()
                for vertex in pool:
                    old_out = (
                        {
                            t: spec.edge_factor(old_graph, vertex, t)
                            for t in old_graph.out_neighbors(vertex)
                        }
                        if old_graph.has_vertex(vertex)
                        else {}
                    )
                    new_out = (
                        {
                            t: spec.edge_factor(new_graph, vertex, t)
                            for t in new_graph.out_neighbors(vertex)
                        }
                        if new_graph.has_vertex(vertex)
                        else {}
                    )
                    if old_out != new_out:
                        changed.add(vertex)
                self._changed_factor_sources = changed
        return self._changed_factor_sources

    @property
    def changed_factor_source_array(self) -> np.ndarray:
        """:attr:`changed_factor_sources` as a sorted int64 index vector."""
        return _id_array(self.changed_factor_sources)

    # ------------------------------------------------------------------
    # structurally-dirty targets — the BSP engines' refinement roots
    # ------------------------------------------------------------------
    def _dirty_pool(self) -> Set[int]:
        """Candidates whose incoming factor map may have changed.

        Mirrors ``GraphBoltEngine._dirty_target_pool``: targets of every
        added/deleted edge (both endpoints on undirected graphs), the old and
        new out-neighbors of every touched source, and the added vertices.
        The touched-source neighbor expansion — the only part proportional to
        vertex degrees — runs as row gathers on the cached old/new out-edge
        CSR snapshots when both are available, and falls back to the
        dictionary walks otherwise; both produce the same id set.
        """
        old_graph = self.old_graph
        new_graph = self.new_graph
        undirected = not new_graph.directed
        pool: Set[int] = set()
        for source, target, _weight in self.added_edges:
            pool.add(target)
            if undirected:
                pool.add(source)
        for source, target, _weight in self.deleted_edges:
            pool.add(target)
            if undirected:
                pool.add(source)
        if self.old_out_csr is not None and self.new_out_csr is not None:
            sources = sorted(self.touched_sources)
            n = len(sources)
            for csr in (self.old_out_csr, self.new_out_csr):
                rows = np.fromiter(
                    (csr.index.get(v, -1) for v in sources), np.int64, count=n
                )
                rows = rows[rows >= 0]
                counts = csr.out_degree[rows]
                total = int(counts.sum())
                if total:
                    slots = expand_edges(csr.offsets[rows], counts, total)
                    pool.update(csr.ids_array()[csr.targets[slots]].tolist())
        else:
            for source in self.touched_sources:
                if old_graph.has_vertex(source):
                    pool.update(old_graph.out_neighbors(source))
                if new_graph.has_vertex(source):
                    pool.update(new_graph.out_neighbors(source))
        pool.update(self.added_vertices)
        return pool

    @property
    def dirty_targets(self) -> Set[int]:
        """Vertices of the new graph whose incoming factor map changed.

        Matches ``GraphBoltEngine._structurally_dirty_targets`` exactly
        (including the "brand-new vertices are always dirty" rule); verified
        on the cached old/new in-edge CSR rows when both snapshots are
        available, through ``edge_factor`` dictionaries otherwise.
        """
        if self._dirty_targets is None:
            new_graph = self.new_graph
            pool = sorted(v for v in self._dirty_pool() if new_graph.has_vertex(v))
            if self.old_in_csr is not None and self.new_in_csr is not None:
                mask = _rows_differ(
                    self.old_in_csr, self.new_in_csr, pool, missing_old_is_changed=True
                )
                self._dirty_targets = {vertex for vertex, flag in zip(pool, mask) if flag}
            else:
                spec = self.spec
                old_graph = self.old_graph
                dirty: Set[int] = set()
                for vertex in pool:
                    old_in = (
                        {
                            u: spec.edge_factor(old_graph, u, vertex)
                            for u in old_graph.in_neighbors(vertex)
                        }
                        if old_graph.has_vertex(vertex)
                        else None
                    )
                    new_in = {
                        u: spec.edge_factor(new_graph, u, vertex)
                        for u in new_graph.in_neighbors(vertex)
                    }
                    if old_in != new_in:
                        dirty.add(vertex)
                self._dirty_targets = dirty
        return self._dirty_targets

    @property
    def dirty_target_array(self) -> np.ndarray:
        """:attr:`dirty_targets` as a sorted int64 index vector."""
        return _id_array(self.dirty_targets)

    # ------------------------------------------------------------------
    # weight-level link diff — the selective engines' invalidation input
    # ------------------------------------------------------------------
    @property
    def invalidation_edges(
        self,
    ) -> Tuple[List[Tuple[int, int, float]], List[Tuple[int, int, float]]]:
        """``(added, deleted)`` edges with weight changes made explicit.

        The dependency engines treat an ``ADD_EDGE`` that overwrites an
        existing edge with a different weight as an implicit deletion of the
        old weight plus an insertion of the new one (the paper models weight
        changes as delete + add) — otherwise a weight increase never reaches
        the invalidation step and its target keeps a stale supported value.
        This is the weight-level link diff of the delta (edge weights, not
        algorithm factors: a weight change must invalidate BFS dependents
        even though every BFS factor is 1), expanded once per delta and
        shared by the dict-reference and dense dependency paths.
        """
        if self._invalidation_edges is None:
            self._invalidation_edges = (
                self.added_edges,
                expand_weight_changes(
                    self.old_graph, self.added_edges, self.deleted_edges
                ),
            )
        return self._invalidation_edges

    # ------------------------------------------------------------------
    @property
    def added_vertex_array(self) -> np.ndarray:
        """:attr:`added_vertices` as a sorted int64 index vector."""
        return _id_array(self.added_vertices)

    @property
    def removed_vertex_array(self) -> np.ndarray:
        """:attr:`removed_vertices` as a sorted int64 index vector."""
        return _id_array(self.removed_vertices)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaFootprint(|ΔE+|={len(self.added_edges)}, "
            f"|ΔE-|={len(self.deleted_edges)}, "
            f"touched={len(self.touched_sources)}, "
            f"+V={len(self.added_vertices)}, -V={len(self.removed_vertices)})"
        )
