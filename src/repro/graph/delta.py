"""Batch graph updates (ΔG) and their application to a :class:`Graph`.

The paper treats a batch update as a sequence of unit updates: single edge
insertions and deletions, plus vertex insertions and deletions (Section II-B
and the vertex-update experiment of Figure 5e).  A weight change is modelled
as a deletion followed by an insertion with the new weight.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graph.graph import Graph


class UpdateKind(enum.Enum):
    """The kind of a unit update."""

    ADD_EDGE = "add_edge"
    DELETE_EDGE = "delete_edge"
    ADD_VERTEX = "add_vertex"
    DELETE_VERTEX = "delete_vertex"


@dataclass(frozen=True)
class EdgeUpdate:
    """A single edge insertion or deletion."""

    kind: UpdateKind
    source: int
    target: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (UpdateKind.ADD_EDGE, UpdateKind.DELETE_EDGE):
            raise ValueError(f"EdgeUpdate cannot have kind {self.kind}")


@dataclass(frozen=True)
class VertexUpdate:
    """A single vertex insertion or deletion.

    A vertex deletion implicitly deletes every incident edge; a vertex
    insertion optionally carries the edges that attach it to the graph.
    """

    kind: UpdateKind
    vertex: int
    edges: Tuple[Tuple[int, int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (UpdateKind.ADD_VERTEX, UpdateKind.DELETE_VERTEX):
            raise ValueError(f"VertexUpdate cannot have kind {self.kind}")


def update_intrinsic_problems(update: object) -> List[str]:
    """Graph-independent defects of a single unit update.

    A non-empty result means the update can *never* be applied safely, no
    matter the graph state: NaN/inf weights would contaminate every float
    sum they touch, and a vertex-attach edge not incident to its vertex is
    self-inconsistent.  Because the verdict does not depend on graph state,
    it is reproducible during WAL replay — which is what lets the streaming
    service rebuild its dead-letter queue deterministically after a crash.
    """
    problems: List[str] = []
    if isinstance(update, EdgeUpdate):
        if update.kind is UpdateKind.ADD_EDGE and not math.isfinite(update.weight):
            problems.append(
                f"non-finite weight {update.weight!r} on edge "
                f"({update.source}, {update.target})"
            )
    elif isinstance(update, VertexUpdate):
        for source, target, weight in update.edges:
            if update.kind is not UpdateKind.ADD_VERTEX:
                problems.append(
                    f"vertex delete of {update.vertex} carries attach edges"
                )
                break
            if not math.isfinite(weight):
                problems.append(
                    f"non-finite weight {weight!r} on attach edge "
                    f"({source}, {target}) of vertex {update.vertex}"
                )
            if update.vertex not in (source, target):
                problems.append(
                    f"attach edge ({source}, {target}) not incident to "
                    f"vertex {update.vertex}"
                )
    else:
        problems.append(f"unknown update type {type(update).__name__}")
    return problems


@dataclass
class GraphDelta:
    """An ordered batch of unit updates (the paper's ΔG)."""

    edge_updates: List[EdgeUpdate] = field(default_factory=list)
    vertex_updates: List[VertexUpdate] = field(default_factory=list)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_changes(
        cls,
        additions: Iterable[Tuple[int, int, float]] = (),
        deletions: Iterable[Tuple[int, int]] = (),
    ) -> "GraphDelta":
        """Build a delta from explicit edge additions and deletions."""
        delta = cls()
        for source, target in deletions:
            delta.delete_edge(source, target)
        for source, target, weight in additions:
            delta.add_edge(source, target, weight)
        return delta

    def add_edge(self, source: int, target: int, weight: float = 1.0) -> None:
        """Record an edge insertion."""
        self.edge_updates.append(
            EdgeUpdate(UpdateKind.ADD_EDGE, source, target, weight)
        )

    def delete_edge(self, source: int, target: int) -> None:
        """Record an edge deletion."""
        self.edge_updates.append(EdgeUpdate(UpdateKind.DELETE_EDGE, source, target))

    def add_vertex(
        self, vertex: int, edges: Sequence[Tuple[int, int, float]] = ()
    ) -> None:
        """Record a vertex insertion with optional attaching edges."""
        self.vertex_updates.append(
            VertexUpdate(UpdateKind.ADD_VERTEX, vertex, tuple(edges))
        )

    def delete_vertex(self, vertex: int) -> None:
        """Record a vertex deletion (incident edges go with it)."""
        self.vertex_updates.append(VertexUpdate(UpdateKind.DELETE_VERTEX, vertex))

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.edge_updates) + len(self.vertex_updates)

    def is_empty(self) -> bool:
        """Whether the delta contains no unit updates."""
        return not self.edge_updates and not self.vertex_updates

    def added_edges(self, graph: Graph) -> List[Tuple[int, int, float]]:
        """Edge insertions after expanding vertex updates against ``graph``."""
        added = [
            (u.source, u.target, u.weight)
            for u in self.edge_updates
            if u.kind is UpdateKind.ADD_EDGE
        ]
        for update in self.vertex_updates:
            if update.kind is UpdateKind.ADD_VERTEX:
                added.extend(update.edges)
        return added

    def deleted_edges(self, graph: Graph) -> List[Tuple[int, int, float]]:
        """Edge deletions (with old weights) after expanding vertex deletes.

        Each edge of ``graph`` appears at most once, no matter how many unit
        updates remove it: an edge can only be deleted once, and duplicates
        would make the revision machinery cancel its contribution twice.  In
        particular, deleting a vertex with a self-loop ``(v, v)`` reaches
        that edge through both its out- and its in-adjacency.
        """
        deleted: List[Tuple[int, int, float]] = []
        seen: Set[Tuple[int, int]] = set()

        def push(source: int, target: int, weight: float) -> None:
            if (source, target) in seen:
                return
            seen.add((source, target))
            deleted.append((source, target, weight))

        for update in self.edge_updates:
            if update.kind is UpdateKind.DELETE_EDGE:
                if graph.has_edge(update.source, update.target):
                    weight = graph.edge_weight(update.source, update.target)
                    push(update.source, update.target, weight)
        for update in self.vertex_updates:
            if update.kind is UpdateKind.DELETE_VERTEX and graph.has_vertex(
                update.vertex
            ):
                for target, weight in graph.out_neighbors(update.vertex).items():
                    push(update.vertex, target, weight)
                for source, weight in graph.in_neighbors(update.vertex).items():
                    push(source, update.vertex, weight)
        return deleted

    def touched_vertices(self, graph: Graph) -> Set[int]:
        """All vertices that are an endpoint of any unit update."""
        touched: Set[int] = set()
        for source, target, _ in self.added_edges(graph):
            touched.add(source)
            touched.add(target)
        for source, target, _ in self.deleted_edges(graph):
            touched.add(source)
            touched.add(target)
        for update in self.vertex_updates:
            touched.add(update.vertex)
        return touched

    def touched_sources(self, graph: Graph) -> Set[int]:
        """Vertices whose *out-adjacency* can change when this delta applies.

        The union of the sources of every (expanded) edge insertion and
        deletion plus the vertices of vertex updates.  Engines use it to
        narrow their changed-factor scans from O(V) to the delta's footprint;
        a vertex outside this set keeps its out-edge dictionary (and, under
        the factor-locality contract of :mod:`repro.graph.csr_cache`, every
        outgoing edge factor) unchanged.  On an undirected graph every edge
        update also installs/removes the reverse edge, so both endpoints
        count as sources.
        """
        undirected = not graph.directed
        sources: Set[int] = set()
        for source, target, _weight in self.added_edges(graph):
            sources.add(source)
            if undirected:
                sources.add(target)
        for source, target, _weight in self.deleted_edges(graph):
            sources.add(source)
            if undirected:
                sources.add(target)
        for update in self.vertex_updates:
            sources.add(update.vertex)
        return sources

    def unit_updates(self) -> Iterator[object]:
        """Iterate vertex updates first, then edge updates, in order."""
        yield from self.vertex_updates
        yield from self.edge_updates

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self, graph: Optional[Graph] = None) -> List[str]:
        """Problems that would poison an engine if this delta were applied.

        Two layers of checks, both returned as human-readable strings (an
        empty list means the delta is safe to apply):

        * *Intrinsic* defects — detectable from the delta alone: non-finite
          (NaN/inf) weights on edge insertions or vertex-attach edges, and
          attach edges not incident to the vertex they claim to attach.
          These are the defects the streaming service quarantines, precisely
          because they are graph-independent and therefore reproducible
          during WAL replay.
        * *Contextual* defects — only checkable against ``graph``: deleting
          an edge or vertex that does not exist at its point of application
          (tracked through the delta's own earlier updates, in the same
          vertex-updates-then-edge-updates order :meth:`apply` uses).
          ``apply`` treats these as no-ops, but an engine fed a dangling
          delete wastes an invalidation pass on it, so upstream layers
          reject or drop them.
        """
        problems = [
            problem
            for update in self.unit_updates()
            for problem in update_intrinsic_problems(update)
        ]
        if graph is None:
            return problems

        present_vertices = None  # lazily materialised only if vertices change
        removed_edges: Set[Tuple[int, int]] = set()
        added_edges: Set[Tuple[int, int]] = set()

        def edge_present(source: int, target: int) -> bool:
            key = (source, target)
            if key in added_edges:
                return True
            if key in removed_edges:
                return False
            return graph.has_edge(source, target)

        for update in self.vertex_updates:
            if update.kind is UpdateKind.ADD_VERTEX:
                if present_vertices is None:
                    present_vertices = set(graph.vertices())
                present_vertices.add(update.vertex)
                for source, target, _weight in update.edges:
                    added_edges.add((source, target))
                    if not graph.directed:
                        added_edges.add((target, source))
            else:
                exists = (
                    update.vertex in present_vertices
                    if present_vertices is not None
                    else graph.has_vertex(update.vertex)
                )
                if not exists:
                    problems.append(f"delete of missing vertex {update.vertex}")
                    continue
                if present_vertices is None:
                    present_vertices = set(graph.vertices())
                present_vertices.discard(update.vertex)
                if graph.has_vertex(update.vertex):
                    for target in graph.out_neighbors(update.vertex):
                        removed_edges.add((update.vertex, target))
                    for source in graph.in_neighbors(update.vertex):
                        removed_edges.add((source, update.vertex))
        for update in self.edge_updates:
            key = (update.source, update.target)
            reverse = (update.target, update.source)
            if update.kind is UpdateKind.ADD_EDGE:
                added_edges.add(key)
                removed_edges.discard(key)
                if not graph.directed:
                    added_edges.add(reverse)
                    removed_edges.discard(reverse)
            else:
                if not edge_present(update.source, update.target):
                    problems.append(
                        f"delete of missing edge ({update.source}, {update.target})"
                    )
                    continue
                added_edges.discard(key)
                removed_edges.add(key)
                if not graph.directed:
                    added_edges.discard(reverse)
                    removed_edges.add(reverse)
        return problems

    # ------------------------------------------------------------------
    # serialization (the durable delta log)
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """JSON-serializable form of the delta (order-preserving)."""
        return {
            "edges": [
                [update.kind.value, update.source, update.target, update.weight]
                for update in self.edge_updates
            ],
            "vertices": [
                [update.kind.value, update.vertex, [list(edge) for edge in update.edges]]
                for update in self.vertex_updates
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "GraphDelta":
        """Rebuild a delta from :meth:`to_payload` output."""
        delta = cls()
        for kind, vertex, edges in payload.get("vertices", ()):
            delta.vertex_updates.append(
                VertexUpdate(
                    UpdateKind(kind),
                    int(vertex),
                    tuple(
                        (int(source), int(target), float(weight))
                        for source, target, weight in edges
                    ),
                )
            )
        for kind, source, target, weight in payload.get("edges", ()):
            delta.edge_updates.append(
                EdgeUpdate(UpdateKind(kind), int(source), int(target), float(weight))
            )
        return delta

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, graph: Graph, in_place: bool = False) -> Graph:
        """Apply the delta and return the updated graph (``G ⊕ ΔG``).

        Unit updates are applied in the order vertex updates then edge
        updates.  Deleting a missing edge or vertex is a no-op so that random
        workload generators do not need to pre-validate every unit update.
        """
        updated = graph if in_place else graph.copy()
        for update in self.vertex_updates:
            if update.kind is UpdateKind.ADD_VERTEX:
                updated.add_vertex(update.vertex)
                for source, target, weight in update.edges:
                    updated.add_edge(source, target, weight)
            else:
                if updated.has_vertex(update.vertex):
                    updated.remove_vertex(update.vertex)
        for update in self.edge_updates:
            if update.kind is UpdateKind.ADD_EDGE:
                updated.add_edge(update.source, update.target, update.weight)
            else:
                if updated.has_edge(update.source, update.target):
                    updated.remove_edge(update.source, update.target)
        return updated

    def inverted(self, graph: Graph) -> "GraphDelta":
        """Return a delta that undoes this one when applied to ``G ⊕ ΔG``.

        Requires the *original* graph ``G`` in order to recover the weights
        of deleted edges.
        """
        inverse = GraphDelta()
        for source, target, _weight in self.added_edges(graph):
            if graph.has_edge(source, target):
                # The addition overwrote an existing edge's weight; undoing it
                # means restoring the original weight, not deleting the edge.
                inverse.add_edge(source, target, graph.edge_weight(source, target))
            else:
                inverse.delete_edge(source, target)
        for source, target, weight in self.deleted_edges(graph):
            inverse.add_edge(source, target, weight)
        return inverse
