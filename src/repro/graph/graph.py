"""Mutable directed weighted graph used throughout the reproduction.

The graph stores both out-adjacency and in-adjacency so that incremental
engines can walk dependencies backwards (e.g. KickStarter's dependency trees
and Ingress's re-aggregation after a reset).  Vertices are integers; they do
not need to be contiguous, which lets deltas add and delete vertices freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class Edge:
    """A directed weighted edge ``source -> target`` with ``weight``."""

    source: int
    target: int
    weight: float = 1.0

    def reversed(self) -> "Edge":
        """Return the edge with source and target swapped."""
        return Edge(self.target, self.source, self.weight)


class Graph:
    """Directed weighted graph with O(1) edge lookup and both adjacencies.

    Parallel edges are not supported: adding an edge that already exists
    overwrites its weight (the paper models a weight change as delete + add,
    which this behaviour composes with naturally).
    """

    def __init__(self, directed: bool = True) -> None:
        self._directed = directed
        self._out: Dict[int, Dict[int, float]] = {}
        self._in: Dict[int, Dict[int, float]] = {}
        self._version = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[int, int, float]], directed: bool = True
    ) -> "Graph":
        """Build a graph from ``(source, target, weight)`` triples."""
        graph = cls(directed=directed)
        for source, target, weight in edges:
            graph.add_edge(source, target, weight)
        return graph

    @classmethod
    def from_unweighted_edges(
        cls, edges: Iterable[Tuple[int, int]], directed: bool = True
    ) -> "Graph":
        """Build a graph from ``(source, target)`` pairs with unit weights."""
        graph = cls(directed=directed)
        for source, target in edges:
            graph.add_edge(source, target, 1.0)
        return graph

    def copy(self) -> "Graph":
        """Return a deep copy of the graph (its version counter restarts)."""
        clone = Graph(directed=self._directed)
        clone._out = {vertex: dict(targets) for vertex, targets in self._out.items()}
        clone._in = {vertex: dict(sources) for vertex, sources in self._in.items()}
        return clone

    @classmethod
    def from_adjacency_order(
        cls,
        directed: bool,
        out_rows: Dict[int, Dict[int, float]],
        in_rows: Dict[int, Dict[int, float]],
        version: int = 0,
    ) -> "Graph":
        """Rebuild a graph from explicit adjacency dicts *and* their order.

        The durable store (:mod:`repro.storage.edge_store`) persists both
        adjacency dicts with their insertion orders because downstream
        consumers depend on them: the in-CSR slot order fixes the fold order
        of the accumulative engines' non-associative float sums.  Replaying
        ``add_edge`` calls from an edge list cannot reproduce an arbitrary
        ``_in`` order (it is interleaved across sources), so the rebuild
        installs the dicts directly.  The given ``version`` restores the
        mutation counter so version-keyed caches line up with the live run.
        """
        graph = cls(directed=directed)
        graph._out = {vertex: dict(targets) for vertex, targets in out_rows.items()}
        graph._in = {vertex: dict(sources) for vertex, sources in in_rows.items()}
        graph._version = version
        return graph

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def directed(self) -> bool:
        """Whether the graph is directed."""
        return self._directed

    @property
    def version(self) -> int:
        """Monotonic mutation counter.

        Every structural mutation (vertex or edge insertion/removal, weight
        change) bumps it, which is what lets cached derived structures — the
        compiled CSR snapshots of :mod:`repro.graph.csr_cache` in particular —
        detect out-of-band mutations and refuse to serve stale arrays.
        """
        return self._version

    def num_vertices(self) -> int:
        """Number of vertices currently in the graph."""
        return len(self._out)

    def num_edges(self) -> int:
        """Number of directed edges currently in the graph."""
        return sum(len(targets) for targets in self._out.values())

    def vertices(self) -> Iterator[int]:
        """Iterate over all vertex identifiers."""
        return iter(self._out)

    def has_vertex(self, vertex: int) -> bool:
        """Whether ``vertex`` exists in the graph."""
        return vertex in self._out

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over all edges as ``(source, target, weight)`` triples."""
        for source, targets in self._out.items():
            for target, weight in targets.items():
                yield source, target, weight

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the directed edge ``source -> target`` exists."""
        return source in self._out and target in self._out[source]

    def edge_weight(self, source: int, target: int) -> float:
        """Return the weight of edge ``source -> target``.

        Raises:
            KeyError: if the edge does not exist.
        """
        try:
            return self._out[source][target]
        except KeyError as error:
            raise KeyError(f"edge ({source}, {target}) not in graph") from error

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, vertex: int) -> Dict[int, float]:
        """Mapping of out-neighbor -> edge weight for ``vertex``."""
        return self._out.get(vertex, {})

    def in_neighbors(self, vertex: int) -> Dict[int, float]:
        """Mapping of in-neighbor -> edge weight for ``vertex``."""
        return self._in.get(vertex, {})

    def out_degree(self, vertex: int) -> int:
        """Number of outgoing edges of ``vertex``."""
        return len(self._out.get(vertex, {}))

    def in_degree(self, vertex: int) -> int:
        """Number of incoming edges of ``vertex``."""
        return len(self._in.get(vertex, {}))

    def degree(self, vertex: int) -> int:
        """Total (in + out) degree of ``vertex``."""
        return self.out_degree(vertex) + self.in_degree(vertex)

    def total_out_weight(self, vertex: int) -> float:
        """Sum of the weights of the outgoing edges of ``vertex``."""
        return sum(self._out.get(vertex, {}).values())

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: int) -> None:
        """Add an isolated vertex (no-op if it already exists)."""
        if vertex not in self._out:
            self._out[vertex] = {}
            self._in[vertex] = {}
            self._version += 1

    def remove_vertex(self, vertex: int) -> None:
        """Remove ``vertex`` and every edge incident to it.

        Raises:
            KeyError: if the vertex does not exist.
        """
        if vertex not in self._out:
            raise KeyError(f"vertex {vertex} not in graph")
        for target in list(self._out[vertex]):
            self.remove_edge(vertex, target)
        for source in list(self._in[vertex]):
            self.remove_edge(source, vertex)
        del self._out[vertex]
        del self._in[vertex]
        self._version += 1

    def add_edge(self, source: int, target: int, weight: float = 1.0) -> None:
        """Add edge ``source -> target`` (and the reverse if undirected).

        Adding an existing edge overwrites its weight.  End-points are
        created on demand.
        """
        self.add_vertex(source)
        self.add_vertex(target)
        self._out[source][target] = weight
        self._in[target][source] = weight
        if not self._directed and source != target:
            self._out[target][source] = weight
            self._in[source][target] = weight
        self._version += 1

    def remove_edge(self, source: int, target: int) -> None:
        """Remove edge ``source -> target`` (and the reverse if undirected).

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(source, target):
            raise KeyError(f"edge ({source}, {target}) not in graph")
        del self._out[source][target]
        del self._in[target][source]
        if not self._directed and source != target:
            del self._out[target][source]
            del self._in[source][target]
        self._version += 1

    def update_edge_weight(self, source: int, target: int, weight: float) -> None:
        """Change the weight of an existing edge.

        Raises:
            KeyError: if the edge does not exist.
        """
        if not self.has_edge(source, target):
            raise KeyError(f"edge ({source}, {target}) not in graph")
        self._out[source][target] = weight
        self._in[target][source] = weight
        if not self._directed and source != target:
            self._out[target][source] = weight
            self._in[source][target] = weight
        self._version += 1

    # ------------------------------------------------------------------
    # views and helpers
    # ------------------------------------------------------------------
    def subgraph(self, vertices: Iterable[int]) -> "Graph":
        """Return the induced subgraph on ``vertices`` (copies edges)."""
        selected = set(vertices)
        sub = Graph(directed=self._directed)
        for vertex in selected:
            if self.has_vertex(vertex):
                sub.add_vertex(vertex)
        for source, target, weight in self.edges():
            if source in selected and target in selected:
                sub.add_edge(source, target, weight)
        return sub

    def reverse(self) -> "Graph":
        """Return a graph with every edge direction flipped."""
        reversed_graph = Graph(directed=self._directed)
        for vertex in self.vertices():
            reversed_graph.add_vertex(vertex)
        for source, target, weight in self.edges():
            reversed_graph.add_edge(target, source, weight)
        return reversed_graph

    def undirected_view_neighbors(self, vertex: int) -> Dict[int, float]:
        """Union of in- and out-neighbors (used by community detection)."""
        merged: Dict[int, float] = dict(self._out.get(vertex, {}))
        for neighbor, weight in self._in.get(vertex, {}).items():
            merged[neighbor] = merged.get(neighbor, 0.0) + weight
        return merged

    def total_edge_weight(self) -> float:
        """Sum of all edge weights (each directed edge counted once)."""
        return sum(weight for _, _, weight in self.edges())

    def __contains__(self, vertex: int) -> bool:
        return self.has_vertex(vertex)

    def __len__(self) -> int:
        return self.num_vertices()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(directed={self._directed}, "
            f"|V|={self.num_vertices()}, |E|={self.num_edges()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self._directed != other._directed:
            return False
        if set(self._out) != set(other._out):
            return False
        return all(self._out[v] == other._out[v] for v in self._out)

    def __hash__(self) -> int:  # Graph is mutable; identity hash is fine.
        return id(self)

    def max_vertex_id(self) -> Optional[int]:
        """Largest vertex id in the graph, or ``None`` if empty."""
        return max(self._out) if self._out else None

    def edge_list(self) -> List[Tuple[int, int, float]]:
        """All edges as a list of ``(source, target, weight)`` triples."""
        return list(self.edges())
