"""Synthetic graph generators.

The paper evaluates on very large web graphs (UK-2005, IT-2004, SK-2005) and
one social network (Sinaweibo).  Those datasets are not available offline and
are far beyond what a pure-Python engine can process in the time budget, so
the evaluation harness substitutes synthetic graphs that preserve the
*structural property Layph exploits*: web graphs decompose into many small
dense communities with few boundary vertices, while the social graph has a
handful of very large communities (which is why the paper's gains shrink on
WB, Section VI-F).

Every generator takes an explicit ``seed`` so that benchmarks are
reproducible.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence, Tuple

from repro.graph.graph import Graph


def _weight_sampler(
    rng: random.Random, weighted: bool, max_weight: float
) -> Callable[[], float]:
    if weighted:
        return lambda: round(rng.uniform(1.0, max_weight), 3)
    return lambda: 1.0


def path_graph(num_vertices: int, weighted: bool = False, seed: int = 0) -> Graph:
    """A directed path ``0 -> 1 -> ... -> n-1``."""
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, 10.0)
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    for vertex in range(num_vertices - 1):
        graph.add_edge(vertex, vertex + 1, weight_of())
    return graph


def star_graph(num_leaves: int, weighted: bool = False, seed: int = 0) -> Graph:
    """A star with center 0 and edges ``0 -> i`` for each leaf ``i``."""
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, 10.0)
    graph = Graph()
    graph.add_vertex(0)
    for leaf in range(1, num_leaves + 1):
        graph.add_edge(0, leaf, weight_of())
    return graph


def grid_graph(rows: int, cols: int, weighted: bool = False, seed: int = 0) -> Graph:
    """A directed grid where each cell points right and down."""
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, 10.0)
    graph = Graph()
    for row in range(rows):
        for col in range(cols):
            vertex = row * cols + col
            graph.add_vertex(vertex)
            if col + 1 < cols:
                graph.add_edge(vertex, vertex + 1, weight_of())
            if row + 1 < rows:
                graph.add_edge(vertex, vertex + cols, weight_of())
    return graph


def erdos_renyi_graph(
    num_vertices: int,
    num_edges: int,
    weighted: bool = False,
    seed: int = 0,
    max_weight: float = 10.0,
) -> Graph:
    """A uniform random directed graph with ``num_edges`` distinct edges."""
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, max_weight)
    graph = Graph()
    for vertex in range(num_vertices):
        graph.add_vertex(vertex)
    max_possible = num_vertices * (num_vertices - 1)
    if num_edges > max_possible:
        raise ValueError(
            f"cannot place {num_edges} distinct edges in a graph with "
            f"{num_vertices} vertices"
        )
    placed = 0
    while placed < num_edges:
        source = rng.randrange(num_vertices)
        target = rng.randrange(num_vertices)
        if source == target or graph.has_edge(source, target):
            continue
        graph.add_edge(source, target, weight_of())
        placed += 1
    return graph


def powerlaw_cluster_graph(
    num_vertices: int,
    edges_per_vertex: int = 3,
    triangle_probability: float = 0.3,
    weighted: bool = False,
    seed: int = 0,
    max_weight: float = 10.0,
) -> Graph:
    """A Holme–Kim style power-law graph with tunable clustering.

    New vertices attach preferentially to high-degree vertices; with
    probability ``triangle_probability`` an extra edge closes a triangle,
    which produces the local clustering typical of web and social graphs.
    Edges are directed from the new vertex to the chosen targets plus a
    reverse edge with probability 0.5, which gives a weakly connected,
    heavy-tailed directed graph.
    """
    if num_vertices < edges_per_vertex + 1:
        raise ValueError("num_vertices must exceed edges_per_vertex")
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, max_weight)
    graph = Graph()
    # Seed clique keeps early preferential attachment well defined.
    seed_size = edges_per_vertex + 1
    for vertex in range(seed_size):
        graph.add_vertex(vertex)
    for source in range(seed_size):
        for target in range(seed_size):
            if source != target:
                graph.add_edge(source, target, weight_of())

    repeated_targets: List[int] = [
        v for v in range(seed_size) for _ in range(seed_size - 1)
    ]
    for vertex in range(seed_size, num_vertices):
        graph.add_vertex(vertex)
        chosen: List[int] = []
        last_target: Optional[int] = None
        while len(chosen) < edges_per_vertex:
            if last_target is not None and rng.random() < triangle_probability:
                # Triangle step: attach to a neighbor of the last target.
                neighbor_pool = list(graph.out_neighbors(last_target)) or [last_target]
                candidate = rng.choice(neighbor_pool)
            else:
                candidate = rng.choice(repeated_targets)
            if candidate == vertex or candidate in chosen:
                last_target = None
                continue
            chosen.append(candidate)
            last_target = candidate
        for target in chosen:
            graph.add_edge(vertex, target, weight_of())
            if rng.random() < 0.5:
                graph.add_edge(target, vertex, weight_of())
            repeated_targets.append(target)
            repeated_targets.append(vertex)
    return graph


def community_graph(
    num_communities: int,
    community_size_range: Tuple[int, int] = (20, 60),
    intra_edge_probability: float = 0.25,
    inter_edges_per_community: int = 4,
    weighted: bool = False,
    seed: int = 0,
    max_weight: float = 10.0,
    hub_fraction: float = 0.0,
) -> Graph:
    """A planted-partition graph with dense communities and sparse bridges.

    This is the main stand-in for the paper's web graphs: each community is a
    dense directed subgraph, communities are connected by a small number of
    bridge edges that run between boundary vertices, and optionally a fraction
    of "hub" vertices fan out to many communities (which stresses the vertex
    replication optimisation of Section IV-A1).

    Returns a graph whose vertex ids are contiguous starting at 0.
    """
    rng = random.Random(seed)
    weight_of = _weight_sampler(rng, weighted, max_weight)
    graph = Graph()
    communities: List[List[int]] = []
    next_vertex = 0
    low, high = community_size_range
    for _ in range(num_communities):
        size = rng.randint(low, high)
        members = list(range(next_vertex, next_vertex + size))
        next_vertex += size
        communities.append(members)
        for vertex in members:
            graph.add_vertex(vertex)
        # Dense intra-community edges: a ring for connectivity plus random
        # chords controlled by intra_edge_probability.
        for position, vertex in enumerate(members):
            successor = members[(position + 1) % size]
            graph.add_edge(vertex, successor, weight_of())
        for source in members:
            for target in members:
                if source != target and rng.random() < intra_edge_probability:
                    graph.add_edge(source, target, weight_of())

    # Sparse inter-community bridges.
    for index, members in enumerate(communities):
        for _ in range(inter_edges_per_community):
            other_index = rng.randrange(num_communities)
            if other_index == index and num_communities > 1:
                other_index = (other_index + 1) % num_communities
            source = rng.choice(members)
            target = rng.choice(communities[other_index])
            if source != target:
                graph.add_edge(source, target, weight_of())

    # Optional hubs with edges into many communities.
    num_hubs = int(hub_fraction * next_vertex)
    for _ in range(num_hubs):
        hub = next_vertex
        next_vertex += 1
        graph.add_vertex(hub)
        touched = rng.sample(range(num_communities), k=min(5, num_communities))
        for community_index in touched:
            for _ in range(3):
                target = rng.choice(communities[community_index])
                graph.add_edge(hub, target, weight_of())
                if rng.random() < 0.5:
                    graph.add_edge(target, hub, weight_of())
    return graph
