"""Graph substrate: directed weighted graphs, deltas, generators and I/O.

This subpackage provides the mutable adjacency-list :class:`Graph` used by
every engine in the repository, the immutable :class:`CSRGraph` snapshot used
by the batch runner, the :class:`GraphDelta` batch-update abstraction, and
synthetic graph generators that stand in for the paper's web/social datasets.
"""

from repro.graph.graph import Edge, Graph
from repro.graph.csr import CSRGraph, FactorCSR
from repro.graph.csr_cache import CSRCache, CachedGraphAdjacency, csr_cache_enabled
from repro.graph.delta import EdgeUpdate, GraphDelta, UpdateKind, VertexUpdate
from repro.graph.generators import (
    community_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    powerlaw_cluster_graph,
    star_graph,
)
from repro.graph.io import load_edge_list, save_edge_list

__all__ = [
    "Edge",
    "Graph",
    "CSRGraph",
    "FactorCSR",
    "CSRCache",
    "CachedGraphAdjacency",
    "csr_cache_enabled",
    "EdgeUpdate",
    "VertexUpdate",
    "GraphDelta",
    "UpdateKind",
    "community_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "path_graph",
    "powerlaw_cluster_graph",
    "star_graph",
    "load_edge_list",
    "save_edge_list",
]
