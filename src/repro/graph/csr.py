"""Immutable CSR (compressed sparse row) snapshots of graphs.

The delta-accumulative engine iterates over out-edges of active vertices many
times; a CSR layout backed by numpy arrays keeps that loop cache-friendly and
avoids per-iteration dictionary overhead.  Both CSR views map arbitrary
vertex identifiers to a dense ``0..n-1`` index space.

Two snapshots are provided:

* :class:`CSRGraph` — the raw weighted graph (``offsets``/``targets``/
  ``weights``);
* :class:`FactorCSR` — a *factor* graph: the same layout but carrying the
  algorithm-specific propagation factors (``edge_factor`` values or shortcut
  weights) of a :class:`repro.engine.propagation.FactorAdjacency`.  This is
  what the vectorized propagation backend
  (:mod:`repro.engine.dense_propagation`) compiles and runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph


def expand_edges(starts: np.ndarray, counts: np.ndarray, total: int) -> np.ndarray:
    """Flat CSR slot indices for the concatenated rows ``[starts, starts+counts)``.

    The result is ordered row by row (rows in the order given, slots in CSR
    order), which is exactly the scatter order of the Python propagation loop.
    Shared by the vectorized backend, the incremental CSR patching and the
    vectorized Layph/BSP kernels.
    """
    cumulative = np.cumsum(counts)
    row_offset = np.repeat(starts - np.concatenate(([0], cumulative[:-1])), counts)
    return np.arange(total, dtype=np.int64) + row_offset


class CSRGraph:
    """Read-only CSR representation of a directed weighted graph."""

    def __init__(self, graph: Graph) -> None:
        self._vertex_ids: List[int] = sorted(graph.vertices())
        self._index: Dict[int, int] = {
            vertex: position for position, vertex in enumerate(self._vertex_ids)
        }
        n = len(self._vertex_ids)

        out_counts = np.zeros(n + 1, dtype=np.int64)
        for vertex in self._vertex_ids:
            out_counts[self._index[vertex] + 1] = graph.out_degree(vertex)
        self._offsets = np.cumsum(out_counts)

        num_edges = int(self._offsets[-1])
        self._targets = np.empty(num_edges, dtype=np.int64)
        self._weights = np.empty(num_edges, dtype=np.float64)
        cursor = np.array(self._offsets[:-1], dtype=np.int64)
        for vertex in self._vertex_ids:
            row = self._index[vertex]
            for target, weight in graph.out_neighbors(vertex).items():
                position = cursor[row]
                self._targets[position] = self._index[target]
                self._weights[position] = weight
                cursor[row] += 1

        self._out_degree = np.diff(self._offsets)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the snapshot."""
        return len(self._targets)

    def vertex_id(self, index: int) -> int:
        """Original vertex id for a dense ``index``."""
        return self._vertex_ids[index]

    def index_of(self, vertex: int) -> int:
        """Dense index for an original ``vertex`` id."""
        return self._index[vertex]

    @property
    def vertex_ids(self) -> Sequence[int]:
        """All original vertex ids in dense-index order."""
        return self._vertex_ids

    def out_degree(self, index: int) -> int:
        """Out-degree of the vertex at dense ``index``."""
        return int(self._out_degree[index])

    def out_edges(self, index: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(target_index, weight)`` for the vertex at ``index``."""
        start, end = self._offsets[index], self._offsets[index + 1]
        for position in range(start, end):
            yield int(self._targets[position]), float(self._weights[position])

    def out_edge_arrays(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, weights)`` arrays for the vertex at ``index``."""
        start, end = self._offsets[index], self._offsets[index + 1]
        return self._targets[start:end], self._weights[start:end]


class FactorCSR:
    """CSR factor arrays (``offsets``/``targets``/``factors``) of a factor graph.

    Rows appear in ascending vertex-id order and, within a row, edges keep
    the order of the source adjacency — the vectorized backend relies on
    this to replay the Python loop's message order exactly (which makes even
    the non-associative float sums of accumulative algorithms bit-for-bit
    reproducible).
    """

    __slots__ = (
        "vertex_ids",
        "index",
        "offsets",
        "targets",
        "factors",
        "out_degree",
        "_ids_cache",
        "patch_note",
    )

    #: class-wide count of full (row-enumerating) compiles, i.e. every
    #: :meth:`from_rows` call.  Incremental patches in
    #: :mod:`repro.graph.csr_cache` construct instances directly and do not
    #: count, so tests can assert that caching short-circuits recompiles.
    compile_count: int = 0

    def __init__(
        self,
        vertex_ids: Sequence[int],
        offsets: np.ndarray,
        targets: np.ndarray,
        factors: np.ndarray,
        index: Optional[Dict[int, int]] = None,
    ) -> None:
        self.vertex_ids: List[int] = list(vertex_ids)
        self.index: Dict[int, int] = (
            index
            if index is not None
            else {vertex: position for position, vertex in enumerate(self.vertex_ids)}
        )
        self.offsets = offsets
        self.targets = targets
        self.factors = factors
        self.out_degree = np.diff(offsets)
        self._ids_cache: Optional[np.ndarray] = None
        #: provenance of an incremental patch (:class:`repro.graph.csr_cache.
        #: PatchNote`): which snapshot this one was derived from and which
        #: rows changed.  ``None`` for fresh compiles.  Consumers that mirror
        #: CSR arrays elsewhere (the shared-memory slab arenas) use it to
        #: move O(changed) bytes instead of re-exporting O(E).
        self.patch_note = None

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the dense index space."""
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of factor-carrying links."""
        return len(self.targets)

    def ids_array(self) -> np.ndarray:
        """Vertex ids in dense-index order as an int64 array (cached).

        Gathering original ids for target columns (``ids_array()[targets]``)
        is how the array paths translate between the index spaces of two
        snapshots; caching the conversion keeps repeated per-delta consumers
        (revision deduction, footprint row diffs) from re-materialising it.
        """
        if self._ids_cache is None:
            self._ids_cache = np.asarray(self.vertex_ids, dtype=np.int64)
        return self._ids_cache

    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        vertex_ids: Sequence[int],
        rows: Sequence[Sequence[Tuple[int, float]]],
    ) -> "FactorCSR":
        """Build from one ``[(target_id, factor), ...]`` list per vertex.

        ``rows[i]`` holds the out-links of ``vertex_ids[i]``; every target id
        must appear in ``vertex_ids``.
        """
        FactorCSR.compile_count += 1
        n = len(vertex_ids)
        index = {vertex: position for position, vertex in enumerate(vertex_ids)}
        counts = np.zeros(n + 1, dtype=np.int64)
        for position, row in enumerate(rows):
            counts[position + 1] = len(row)
        offsets = np.cumsum(counts)
        num_edges = int(offsets[-1])
        targets = np.empty(num_edges, dtype=np.int64)
        factors = np.empty(num_edges, dtype=np.float64)
        cursor = 0
        for row in rows:
            for target, factor in row:
                targets[cursor] = index[target]
                factors[cursor] = factor
                cursor += 1
        return cls(vertex_ids, offsets, targets, factors, index=index)

    @classmethod
    def from_factor_adjacency(
        cls,
        adjacency,
        universe: Iterable[int] = (),
        silenced: Optional[Iterable[int]] = None,
    ) -> "FactorCSR":
        """Compile a :class:`FactorAdjacency` (or any object exposing
        ``vertices_with_out_edges()`` and ``__call__``) into CSR arrays.

        Args:
            adjacency: the factor adjacency to compile.
            universe: extra vertex ids to include in the dense index space
                (e.g. vertices that only ever receive messages, or that hold
                a state without any out-link).
            silenced: vertices whose out-links are dropped (they keep their
                slot in the index space but get an empty row) — the CSR
                analogue of :class:`repro.engine.propagation.SilencedAdjacency`.
        """
        silenced_set = frozenset(silenced) if silenced is not None else frozenset()
        ids = set(universe)
        sources = list(adjacency.vertices_with_out_edges())
        ids.update(sources)
        live_rows: Dict[int, List[Tuple[int, float]]] = {}
        for source in sources:
            if source in silenced_set:
                continue
            row = list(adjacency(source))
            if not row:
                continue
            live_rows[source] = row
            for target, _factor in row:
                ids.add(target)
        vertex_ids = sorted(ids)
        rows = [live_rows.get(vertex, ()) for vertex in vertex_ids]
        return cls.from_rows(vertex_ids, rows)

    @classmethod
    def from_graph(cls, spec, graph: Graph) -> "FactorCSR":
        """Factor CSR of a whole :class:`Graph` under algorithm ``spec``."""
        vertex_ids = sorted(graph.vertices())
        rows = [
            [
                (target, spec.edge_factor(graph, vertex, target))
                for target in graph.out_neighbors(vertex)
            ]
            for vertex in vertex_ids
        ]
        return cls.from_rows(vertex_ids, rows)

    @classmethod
    def from_graph_in_edges(cls, spec, graph: Graph) -> "FactorCSR":
        """*In-edge* factor CSR of a whole :class:`Graph` under ``spec``.

        Row ``v`` lists ``(source, edge_factor(source, v))`` pairs in the
        in-adjacency's insertion order, which is the chronological order the
        edges were added in — the exact order the pull-based BSP engines
        (GraphBolt/DZiG) fold in-messages in, so the vectorized pulls stay
        bit-for-bit compatible with the Python loops.
        """
        vertex_ids = sorted(graph.vertices())
        rows = [
            [
                (source, spec.edge_factor(graph, source, vertex))
                for source in graph.in_neighbors(vertex)
            ]
            for vertex in vertex_ids
        ]
        return cls.from_rows(vertex_ids, rows)


class FactorCSRView:
    """Row-silenced view of a :class:`FactorCSR` (shared arrays, zeroed rows).

    Exposes the same attribute surface the vectorized propagation loop needs
    (``vertex_ids``/``index``/``offsets``/``targets``/``factors``/
    ``out_degree``) but reports an out-degree of zero for silenced rows.  The
    underlying arrays are shared with the master snapshot, so deriving a view
    is O(V) instead of the O(V+E) row enumeration of a fresh compile — this is
    how one master compile serves every ``SilencedAdjacency`` variant Layph's
    shortcut computations request.
    """

    __slots__ = (
        "vertex_ids",
        "index",
        "offsets",
        "targets",
        "factors",
        "out_degree",
        "master",
    )

    def __init__(self, master: FactorCSR, silenced: Iterable[int]) -> None:
        self.master = master
        self.vertex_ids = master.vertex_ids
        self.index = master.index
        self.offsets = master.offsets
        self.targets = master.targets
        self.factors = master.factors
        out_degree = master.out_degree.copy()
        index = master.index
        for vertex in silenced:
            position = index.get(vertex)
            if position is not None:
                out_degree[position] = 0
        self.out_degree = out_degree

    @property
    def num_vertices(self) -> int:
        """Number of vertices in the dense index space."""
        return len(self.vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of live (non-silenced) factor-carrying links."""
        return int(self.out_degree.sum())
