"""Immutable CSR (compressed sparse row) snapshot of a :class:`Graph`.

The delta-accumulative engine iterates over out-edges of active vertices many
times; a CSR layout backed by numpy arrays keeps that loop cache-friendly and
avoids per-iteration dictionary overhead.  The CSR view maps arbitrary vertex
identifiers to a dense ``0..n-1`` index space.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import Graph


class CSRGraph:
    """Read-only CSR representation of a directed weighted graph."""

    def __init__(self, graph: Graph) -> None:
        self._vertex_ids: List[int] = sorted(graph.vertices())
        self._index: Dict[int, int] = {
            vertex: position for position, vertex in enumerate(self._vertex_ids)
        }
        n = len(self._vertex_ids)

        out_counts = np.zeros(n + 1, dtype=np.int64)
        for vertex in self._vertex_ids:
            out_counts[self._index[vertex] + 1] = graph.out_degree(vertex)
        self._offsets = np.cumsum(out_counts)

        num_edges = int(self._offsets[-1])
        self._targets = np.empty(num_edges, dtype=np.int64)
        self._weights = np.empty(num_edges, dtype=np.float64)
        cursor = np.array(self._offsets[:-1], dtype=np.int64)
        for vertex in self._vertex_ids:
            row = self._index[vertex]
            for target, weight in graph.out_neighbors(vertex).items():
                position = cursor[row]
                self._targets[position] = self._index[target]
                self._weights[position] = weight
                cursor[row] += 1

        self._out_degree = np.diff(self._offsets)

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices in the snapshot."""
        return len(self._vertex_ids)

    @property
    def num_edges(self) -> int:
        """Number of directed edges in the snapshot."""
        return len(self._targets)

    def vertex_id(self, index: int) -> int:
        """Original vertex id for a dense ``index``."""
        return self._vertex_ids[index]

    def index_of(self, vertex: int) -> int:
        """Dense index for an original ``vertex`` id."""
        return self._index[vertex]

    @property
    def vertex_ids(self) -> Sequence[int]:
        """All original vertex ids in dense-index order."""
        return self._vertex_ids

    def out_degree(self, index: int) -> int:
        """Out-degree of the vertex at dense ``index``."""
        return int(self._out_degree[index])

    def out_edges(self, index: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(target_index, weight)`` for the vertex at ``index``."""
        start, end = self._offsets[index], self._offsets[index + 1]
        for position in range(start, end):
            yield int(self._targets[position]), float(self._weights[position])

    def out_edge_arrays(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, weights)`` arrays for the vertex at ``index``."""
        start, end = self._offsets[index], self._offsets[index + 1]
        return self._targets[start:end], self._weights[start:end]
