"""Durable graph + derived-state store (warm starts and crash recovery).

The incremental engines exist because derived state — memoized BSP
iterations, dependency forests, Layph's layered skeleton — is expensive to
build and cheap to maintain.  Before this package a process restart threw all
of it away and re-ran batch initialization.  The storage layer follows the
strategy both related repos argue for (see ROADMAP): SQLite for the
*queryable* live edge list, an append-only log for *crash-safe* deltas, and
compacted array snapshots for the derived state.

Lifecycle (``log → snapshot → compact → restore → demote``):

* every applied :class:`repro.graph.delta.GraphDelta` appends one CRC-guarded,
  fsync'd record to ``delta.log`` (:class:`repro.storage.edge_store.DeltaLog`);
* ``engine.save(dir)`` / periodic compaction serialize the engine's derived
  state to ``snapshot-<seq>.npz`` (+ a checksummed JSON sidecar), fold the
  live edge list into the SQLite baseline and truncate the log;
* :func:`repro.storage.store.restore_engine` reloads the snapshot, replays
  the log suffix past it and resumes **bitwise-identical** to the
  uninterrupted run (the crash-injection suite in ``tests/storage`` enforces
  this at every log-record boundary for all seven engines);
* a missing, corrupt (checksum mismatch) or version-mismatched snapshot
  *demotes* to cold batch initialization on the logged graph — a warning is
  surfaced and the :class:`repro.storage.store.RestoreReport` records which
  path ran.

Environment knobs:

* ``REPRO_STORE=0`` — escape hatch: ``engine.save`` becomes a no-op and
  nothing is ever written (everything stays in memory);
* ``REPRO_STORE_AUTOSAVE=1`` — every ``engine.initialize`` saves to a fresh
  temporary store and logs every subsequent delta (the CI persistence leg
  runs the whole tier-1 suite in this mode);
* ``REPRO_STORE_COMPACT_EVERY`` — log records between automatic compactions
  (default 16).
"""

from __future__ import annotations

import os

from repro.graph.csr_cache import env_flag_enabled

#: escape hatch: set to 0 to keep everything in memory
STORE_ENV_VAR = "REPRO_STORE"
#: opt-in: autosave every initialized engine to a temporary store
AUTOSAVE_ENV_VAR = "REPRO_STORE_AUTOSAVE"
#: log records between automatic compactions
COMPACT_EVERY_ENV_VAR = "REPRO_STORE_COMPACT_EVERY"
#: default compaction threshold
DEFAULT_COMPACT_EVERY = 16


def storage_enabled() -> bool:
    """Whether the durable store is enabled (the ``REPRO_STORE`` knob)."""
    return env_flag_enabled(STORE_ENV_VAR)


def autosave_enabled() -> bool:
    """Whether ``initialize`` auto-saves engines (CI persistence leg)."""
    if not storage_enabled():
        return False
    raw = os.environ.get(AUTOSAVE_ENV_VAR, "").strip()
    if not raw:
        return False
    return env_flag_enabled(AUTOSAVE_ENV_VAR, default="0")


def compact_every_default() -> int:
    """The configured automatic-compaction threshold."""
    raw = os.environ.get(COMPACT_EVERY_ENV_VAR)
    if raw is None:
        return DEFAULT_COMPACT_EVERY
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_COMPACT_EVERY
    return value if value > 0 else DEFAULT_COMPACT_EVERY


from repro.storage.edge_store import (  # noqa: E402
    DeltaLog,
    DurableEdgeStore,
    LogRecord,
    StoreError,
)
from repro.storage.store import (  # noqa: E402
    EngineStore,
    RestoreReport,
    SnapshotUnusable,
    restore_engine,
)

__all__ = [
    "STORE_ENV_VAR",
    "AUTOSAVE_ENV_VAR",
    "COMPACT_EVERY_ENV_VAR",
    "DEFAULT_COMPACT_EVERY",
    "storage_enabled",
    "autosave_enabled",
    "compact_every_default",
    "DeltaLog",
    "DurableEdgeStore",
    "LogRecord",
    "StoreError",
    "EngineStore",
    "RestoreReport",
    "SnapshotUnusable",
    "restore_engine",
]
