"""Array codecs for the snapshot halves of the durable store.

Each codec turns one expensive derived structure — :class:`FactorCSR` arrays,
:class:`MemoTable` matrices, :class:`DepTable` forests, ordered state dicts,
:class:`FactorAdjacency` rows — into plain numpy arrays (packed into one
``.npz`` under a key prefix) plus a JSON-able meta fragment, and back.  The
round-trip contract is **bitwise**: every float travels as its raw 8 bytes,
every id list keeps its order, and ``NaN`` columns (a :class:`MemoTable`'s
"absent vertex" marker) survive because the arrays are stored, not re-derived.

Decoders copy by default so the restored structures are mutable even when the
snapshot was opened with ``mmap_mode="r"``; pass ``copy=False`` for read-only
consumers (the out-of-core path keeps CSR arrays memory-mapped this way).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.propagation import FactorAdjacency
from repro.graph.csr import FactorCSR
from repro.incremental.dep_table import DepTable
from repro.incremental.memo import MemoTable

Arrays = Dict[str, np.ndarray]


def pack(prefix: str, arrays: Arrays) -> Arrays:
    """Prefix every key (``pack("memo", {"ids": a})`` → ``{"memo/ids": a}``)."""
    return {f"{prefix}/{key}": value for key, value in arrays.items()}


def unpack(prefix: str, arrays: Mapping[str, np.ndarray]) -> Arrays:
    """Select and strip one prefix out of a packed array mapping."""
    lead = f"{prefix}/"
    return {
        key[len(lead) :]: value for key, value in arrays.items() if key.startswith(lead)
    }


def _materialise(array: np.ndarray, copy: bool) -> np.ndarray:
    return np.array(array) if copy else array


# ----------------------------------------------------------------------
# ordered {vertex: float} maps (engine states, Layph proxy states, ...)
# ----------------------------------------------------------------------
def encode_float_map(mapping: Mapping[int, float]) -> Arrays:
    """Encode an ordered ``{vertex: float}`` dict as parallel arrays."""
    n = len(mapping)
    return {
        "ids": np.fromiter(mapping.keys(), np.int64, count=n),
        "values": np.fromiter(mapping.values(), np.float64, count=n),
    }


def decode_float_map(arrays: Mapping[str, np.ndarray]) -> Dict[int, float]:
    """Decode :func:`encode_float_map` output (insertion order preserved)."""
    return {
        int(vertex): float(value)
        for vertex, value in zip(arrays["ids"], arrays["values"])
    }


# ----------------------------------------------------------------------
# whole-graph adjacency (the snapshot's fast-path copy of the edge list)
# ----------------------------------------------------------------------
def encode_graph_arrays(graph) -> Tuple[dict, Arrays]:
    """Encode a :class:`Graph` as offset-indexed adjacency arrays.

    The snapshot carries the full adjacency (both orientations, in exact
    insertion order) next to the SQLite baseline: the baseline stays the
    durable, queryable edge list, while the arrays are what a warm restore
    decodes — ``dict(zip(...))`` over array slices costs no Python-level work
    per edge, unlike the row-by-row SQLite rebuild the demote path uses.
    """
    num_vertices = graph.num_vertices()
    ids = np.fromiter(graph.vertices(), np.int64, count=num_vertices)
    arrays: Arrays = {"ids": ids}
    for orientation, neighbors_of in (
        ("out", graph.out_neighbors),
        ("in", graph.in_neighbors),
    ):
        rows = [neighbors_of(vertex) for vertex in graph.vertices()]
        counts = np.fromiter((len(row) for row in rows), np.int64, count=num_vertices)
        offsets = np.zeros(num_vertices + 1, np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1]) if num_vertices else 0
        arrays[f"{orientation}_offsets"] = offsets
        arrays[f"{orientation}_neighbors"] = np.fromiter(
            (neighbor for row in rows for neighbor in row), np.int64, count=total
        )
        arrays[f"{orientation}_weights"] = np.fromiter(
            (weight for row in rows for weight in row.values()),
            np.float64,
            count=total,
        )
    meta = {"directed": graph.directed, "version": graph.version}
    return meta, arrays


def decode_graph_arrays(meta: dict, arrays: Mapping[str, np.ndarray]):
    """Decode :func:`encode_graph_arrays` output into a :class:`Graph`.

    Orders and the mutation counter round-trip exactly, so the rebuilt graph
    is interchangeable with the live one for every order- and
    version-sensitive consumer.
    """
    from repro.graph.graph import Graph

    ids = arrays["ids"].tolist()
    adjacency: Dict[str, Dict[int, Dict[int, float]]] = {}
    for orientation in ("out", "in"):
        offsets = arrays[f"{orientation}_offsets"].tolist()
        neighbors = arrays[f"{orientation}_neighbors"].tolist()
        weights = arrays[f"{orientation}_weights"].tolist()
        rows: Dict[int, Dict[int, float]] = {}
        for position, vertex in enumerate(ids):
            lo, hi = offsets[position], offsets[position + 1]
            rows[vertex] = dict(zip(neighbors[lo:hi], weights[lo:hi]))
        adjacency[orientation] = rows
    return Graph.from_adjacency_order(
        bool(meta["directed"]),
        adjacency["out"],
        adjacency["in"],
        version=int(meta["version"]),
    )


# ----------------------------------------------------------------------
# FactorCSR
# ----------------------------------------------------------------------
def encode_factor_csr(csr: FactorCSR) -> Arrays:
    """Encode a compiled factor CSR (ids + offsets + targets + factors)."""
    return {
        "ids": np.asarray(csr.vertex_ids, dtype=np.int64),
        "offsets": np.asarray(csr.offsets, dtype=np.int64),
        "targets": np.asarray(csr.targets, dtype=np.int64),
        "factors": np.asarray(csr.factors, dtype=np.float64),
    }


def decode_factor_csr(arrays: Mapping[str, np.ndarray], copy: bool = True) -> FactorCSR:
    """Decode into a :class:`FactorCSR` without counting as a compile.

    The direct constructor rebuilds the id index and does not bump
    ``FactorCSR.compile_count`` — restoring a snapshot is a load, not a
    recompile, and the warm-start tests assert exactly that.
    """
    return FactorCSR(
        [int(vertex) for vertex in arrays["ids"]],
        _materialise(arrays["offsets"], copy),
        _materialise(arrays["targets"], copy),
        _materialise(arrays["factors"], copy),
    )


# ----------------------------------------------------------------------
# MemoTable
# ----------------------------------------------------------------------
def encode_memo_table(memo: MemoTable) -> Tuple[dict, Arrays]:
    """Encode a memo table (live levels only; NaN absence markers survive)."""
    meta = {"graph_version": memo.graph_version}
    arrays = {
        "ids": np.asarray(memo.vertex_ids, dtype=np.int64),
        "matrix": memo._matrix[: memo.num_levels].copy(),
    }
    return meta, arrays


def decode_memo_table(meta: dict, arrays: Mapping[str, np.ndarray]) -> MemoTable:
    """Decode into a :class:`MemoTable` (always writable; levels grow)."""
    matrix = np.array(arrays["matrix"], dtype=np.float64)
    graph_version = meta.get("graph_version")
    memo = MemoTable(
        [int(vertex) for vertex in arrays["ids"]],
        graph_version=int(graph_version) if graph_version is not None else None,
        capacity=max(matrix.shape[0], 1),
    )
    memo._matrix[: matrix.shape[0]] = matrix
    memo.num_levels = matrix.shape[0]
    return memo


# ----------------------------------------------------------------------
# DepTable
# ----------------------------------------------------------------------
def encode_dep_table(table: DepTable) -> Tuple[dict, Arrays]:
    """Encode a dependency table (parents + values; levels are derived)."""
    meta = {"graph_version": table.graph_version}
    arrays = {
        "ids": np.asarray(table.vertex_ids, dtype=np.int64),
        "parent_pos": np.asarray(table.parent_pos, dtype=np.int64),
        "values": np.asarray(table.values, dtype=np.float64),
    }
    return meta, arrays


def decode_dep_table(meta: dict, arrays: Mapping[str, np.ndarray]) -> DepTable:
    """Decode into a :class:`DepTable`.

    The forest levels, child index and move overlays are deliberately *not*
    persisted: they are deterministic functions of ``parent_pos`` rebuilt
    lazily (pointer doubling) on the first taint after restore, so dropping
    them keeps the snapshot small without breaking bitwise equivalence.
    """
    ids = [int(vertex) for vertex in arrays["ids"]]
    graph_version = meta.get("graph_version")
    return DepTable(
        ids,
        {vertex: position for position, vertex in enumerate(ids)},
        np.array(arrays["parent_pos"], dtype=np.int64),
        np.array(arrays["values"], dtype=np.float64),
        graph_version=int(graph_version) if graph_version is not None else None,
    )


# ----------------------------------------------------------------------
# GraphBolt's dict-backed iteration store (Python backend)
# ----------------------------------------------------------------------
def encode_iteration_dicts(iterations: List[Dict[int, float]]) -> Tuple[dict, Arrays]:
    """Encode a ``List[Dict[int, float]]`` memo as per-level id/value arrays.

    The dict store is what the BSP engines memoize under the Python backend;
    arrays (not JSON) keep the warm-start load O(load) even for hundreds of
    levels.
    """
    arrays: Arrays = {}
    for level, iteration in enumerate(iterations):
        level_arrays = encode_float_map(iteration)
        arrays[f"level{level}/ids"] = level_arrays["ids"]
        arrays[f"level{level}/values"] = level_arrays["values"]
    return {"num_levels": len(iterations)}, arrays


def decode_iteration_dicts(
    meta: dict, arrays: Mapping[str, np.ndarray]
) -> List[Dict[int, float]]:
    """Decode :func:`encode_iteration_dicts` output."""
    return [
        decode_float_map(unpack(f"level{level}", arrays))
        for level in range(int(meta["num_levels"]))
    ]


# ----------------------------------------------------------------------
# FactorAdjacency (Layph's upper layer and subgraph-local adjacencies)
# ----------------------------------------------------------------------
def encode_factor_adjacency(adjacency: FactorAdjacency) -> dict:
    """JSON-able form of a factor adjacency (row order + version preserved)."""
    return {
        "rows": [
            [source, [[target, factor] for target, factor in row]]
            for source, row in adjacency._adjacency.items()
        ],
        "version": adjacency._version,
    }


def decode_factor_adjacency(payload: dict) -> FactorAdjacency:
    """Decode :func:`encode_factor_adjacency` output."""
    adjacency = FactorAdjacency(
        {
            int(source): [(int(target), float(factor)) for target, factor in row]
            for source, row in payload["rows"]
        }
    )
    adjacency._version = int(payload["version"])
    return adjacency


# ----------------------------------------------------------------------
# generic {int: Optional[int]} maps (the selective engines' parents dict)
# ----------------------------------------------------------------------
def encode_parent_map(parents: Mapping[int, Optional[int]]) -> Arrays:
    """Encode an ordered ``{vertex: parent-or-None}`` dict (-1 = ``None``)."""
    n = len(parents)
    return {
        "ids": np.fromiter(parents.keys(), np.int64, count=n),
        "parents": np.fromiter(
            (-1 if parent is None else parent for parent in parents.values()),
            np.int64,
            count=n,
        ),
    }


def decode_parent_map(arrays: Mapping[str, np.ndarray]) -> Dict[int, Optional[int]]:
    """Decode :func:`encode_parent_map` output (insertion order preserved)."""
    return {
        int(vertex): (None if parent < 0 else int(parent))
        for vertex, parent in zip(arrays["ids"], arrays["parents"])
    }
