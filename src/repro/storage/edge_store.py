"""Durable edge store: SQLite baseline + append-only crash-safe delta log.

Two complementary halves, mirroring the storage strategy in ROADMAP/SNIPPETS:

* :class:`DurableEdgeStore` — the *queryable* half.  One SQLite database
  holds the live edge list of the baseline graph plus a small ``meta``
  key/value table.  SQLite ``REAL`` columns are 8-byte IEEE doubles, so edge
  weights round-trip bit-exactly.  The adjacency **insertion orders** of
  :class:`repro.graph.graph.Graph` are load-bearing (in-CSR slot order drives
  the bitwise-reproducible float sums of the accumulative engines), so the
  tables store an explicit ``position`` column for the ``_out``-key order,
  the ``edges()`` order and the ``_in`` traversal order, and the rebuild
  reconstructs both adjacency dicts in exactly the saved order.
* :class:`DeltaLog` — the *crash-safe* half.  One JSON line per applied
  :class:`repro.graph.delta.GraphDelta`, guarded by a CRC32 prefix, flushed
  and ``fsync``'d before ``apply_delta`` returns.  The reader accepts the
  longest valid prefix and discards a torn tail (a crash mid-write loses at
  most the unacknowledged record — exactly the write-ahead guarantee).
"""

from __future__ import annotations

import json
import os
import sqlite3
import zlib
from dataclasses import dataclass

import numpy as np
from typing import Dict, List, Optional, Tuple

from repro.graph.delta import GraphDelta
from repro.graph.graph import Graph

#: bumped when the on-disk layout changes incompatibly
STORE_FORMAT = 1


class StoreError(RuntimeError):
    """A store directory is missing, incomplete or unreadable."""


def fsync_dir(path: str) -> None:
    """``fsync`` a directory so renames/creates/truncates in it are durable.

    ``os.replace`` and ``open(..., "wb")`` make the *data* durable once the
    file itself is fsync'd, but the directory entry pointing at it lives in
    the directory inode — without this, a crash right after a log rewrite or
    snapshot rename can resurrect the old name.  Best-effort: platforms or
    filesystems that refuse to fsync a directory fd are silently skipped.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _fill_grouped_rows(rows, dest: Dict[int, Dict[int, float]]) -> None:
    """Rebuild adjacency dicts from grouped ``(key, neighbor, weight)`` rows.

    The rows were written in one contiguous run per key (``Graph.edges()``
    emits per-source runs, the in-edge dump per-target runs), so the rebuild
    transposes the row list once (C speed), finds the run boundaries with one
    array compare, and materialises each adjacency row as ``dict(zip(...))``
    over tuple slices — no Python-level work per edge.  This is the hot path
    of a warm restore; the naive one-store-per-row loop is ~5x slower on the
    100k-edge benchmark graph.
    """
    if not rows:
        return
    keys, neighbors, weights = zip(*rows)
    key_array = np.fromiter(keys, np.int64, count=len(keys))
    breaks = np.flatnonzero(key_array[1:] != key_array[:-1]) + 1
    starts = (0, *breaks.tolist(), len(keys))
    for i in range(len(starts) - 1):
        lo, hi = starts[i], starts[i + 1]
        dest[keys[lo]] = dict(zip(neighbors[lo:hi], weights[lo:hi]))


# ----------------------------------------------------------------------
# SQLite baseline
# ----------------------------------------------------------------------
class DurableEdgeStore:
    """SQLite-backed baseline of the live edge list (order-preserving).

    Schema::

        meta(key TEXT PRIMARY KEY, value TEXT)
        vertices(position INTEGER PRIMARY KEY, vertex INTEGER)
        edges(position INTEGER PRIMARY KEY, source INTEGER,
              target INTEGER, weight REAL)
        in_edges(position INTEGER PRIMARY KEY, target INTEGER, source INTEGER)

    ``meta`` carries the store format, the graph's ``directed`` flag and
    mutation counter, the sequence number of the last compacted delta and
    the engine identity (enough to rebuild the engine even when every other
    store file is lost).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        # the store has a single owner at any moment, but ownership moves
        # between threads (the service constructs it on the caller thread,
        # then its writer thread applies and compacts) — sqlite's same-thread
        # check would reject that handoff even though access never overlaps
        self._connection = sqlite3.connect(path, check_same_thread=False)
        self._ensure_schema()

    def close(self) -> None:
        self._connection.close()

    def _ensure_schema(self) -> None:
        cursor = self._connection.cursor()
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS vertices "
            "(position INTEGER PRIMARY KEY, vertex INTEGER NOT NULL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS edges "
            "(position INTEGER PRIMARY KEY, source INTEGER NOT NULL, "
            "target INTEGER NOT NULL, weight REAL NOT NULL)"
        )
        cursor.execute(
            "CREATE TABLE IF NOT EXISTS in_edges "
            "(position INTEGER PRIMARY KEY, target INTEGER NOT NULL, "
            "source INTEGER NOT NULL, weight REAL NOT NULL)"
        )
        self._connection.commit()

    # ------------------------------------------------------------------
    # meta
    # ------------------------------------------------------------------
    def get_meta(self, key: str) -> Optional[str]:
        """The stored ``meta`` value for ``key``, or ``None``."""
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row is not None else None

    def meta_dict(self) -> Dict[str, str]:
        """Every ``meta`` key/value pair."""
        return dict(self._connection.execute("SELECT key, value FROM meta"))

    # ------------------------------------------------------------------
    # baseline write/read
    # ------------------------------------------------------------------
    def write_baseline(
        self, graph: Graph, last_seq: int, extra_meta: Optional[Dict[str, str]] = None
    ) -> None:
        """Replace the baseline with ``graph`` in one transaction.

        ``last_seq`` is the sequence number of the last delta folded into the
        baseline (0 for the initial graph); log records at or below it are
        skipped during recovery, which is what makes a crash between the
        baseline commit and the log truncation harmless.
        """
        connection = self._connection
        cursor = connection.cursor()
        try:
            cursor.execute("BEGIN")
            cursor.execute("DELETE FROM vertices")
            cursor.execute("DELETE FROM edges")
            cursor.execute("DELETE FROM in_edges")
            cursor.executemany(
                "INSERT INTO vertices (position, vertex) VALUES (?, ?)",
                list(enumerate(graph.vertices())),
            )
            cursor.executemany(
                "INSERT INTO edges (position, source, target, weight) "
                "VALUES (?, ?, ?, ?)",
                [
                    (position, source, target, weight)
                    for position, (source, target, weight) in enumerate(graph.edges())
                ],
            )
            in_rows: List[Tuple[int, int, int, float]] = []
            for target in graph.vertices():
                for source, weight in graph.in_neighbors(target).items():
                    in_rows.append((len(in_rows), target, source, weight))
            cursor.executemany(
                "INSERT INTO in_edges (position, target, source, weight) "
                "VALUES (?, ?, ?, ?)",
                in_rows,
            )
            meta = {
                "format": str(STORE_FORMAT),
                "directed": "1" if graph.directed else "0",
                "graph_version": str(graph.version),
                "last_seq": str(last_seq),
            }
            if extra_meta:
                meta.update(extra_meta)
            cursor.executemany(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                list(meta.items()),
            )
            connection.commit()
        except BaseException:
            connection.rollback()
            raise

    def baseline_meta(self) -> Dict[str, str]:
        """The format-validated ``meta`` table of a written baseline.

        Raises:
            StoreError: no baseline was ever written, or it was written by an
                incompatible store format.
        """
        meta = self.meta_dict()
        if "format" not in meta:
            raise StoreError(f"{self.path} holds no baseline")
        stored_format = int(meta["format"])
        if stored_format != STORE_FORMAT:
            raise StoreError(
                f"baseline format {stored_format} != supported {STORE_FORMAT}"
            )
        return meta

    def load_baseline(self) -> Tuple[Graph, int]:
        """Rebuild ``(graph, last_seq)`` from the baseline tables.

        The adjacency dicts are reconstructed in the exact saved insertion
        orders and the graph's mutation counter is restored, so the rebuilt
        object is interchangeable with the live one for every order- and
        version-sensitive consumer (CSR compiles, cache staleness checks).
        """
        meta = self.baseline_meta()
        directed = meta.get("directed", "1") == "1"
        out_rows: Dict[int, Dict[int, float]] = {}
        in_rows: Dict[int, Dict[int, float]] = {}
        for (vertex,) in self._connection.execute(
            "SELECT vertex FROM vertices ORDER BY position"
        ):
            out_rows[vertex] = {}
            in_rows[vertex] = {}
        _fill_grouped_rows(
            self._connection.execute(
                "SELECT source, target, weight FROM edges ORDER BY position"
            ).fetchall(),
            out_rows,
        )
        _fill_grouped_rows(
            self._connection.execute(
                "SELECT target, source, weight FROM in_edges ORDER BY position"
            ).fetchall(),
            in_rows,
        )
        graph = Graph.from_adjacency_order(
            directed, out_rows, in_rows, version=int(meta.get("graph_version", "0"))
        )
        return graph, int(meta.get("last_seq", "0"))

    # ------------------------------------------------------------------
    # point queries (the "SQLite for the queryable graph" story)
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        """Number of vertices in the baseline."""
        return self._connection.execute("SELECT COUNT(*) FROM vertices").fetchone()[0]

    def num_edges(self) -> int:
        """Number of directed edges in the baseline."""
        return self._connection.execute("SELECT COUNT(*) FROM edges").fetchone()[0]

    def has_edge(self, source: int, target: int) -> bool:
        """Whether the baseline holds edge ``source -> target``."""
        row = self._connection.execute(
            "SELECT 1 FROM edges WHERE source = ? AND target = ? LIMIT 1",
            (source, target),
        ).fetchone()
        return row is not None

    def edge_weight(self, source: int, target: int) -> float:
        """Baseline weight of ``source -> target``.

        Raises:
            KeyError: if the edge is not in the baseline.
        """
        row = self._connection.execute(
            "SELECT weight FROM edges WHERE source = ? AND target = ?",
            (source, target),
        ).fetchone()
        if row is None:
            raise KeyError(f"edge ({source}, {target}) not in baseline")
        return row[0]

    def out_edges_of(self, vertex: int) -> List[Tuple[int, float]]:
        """Baseline out-edges of ``vertex`` in stored adjacency order."""
        return [
            (target, weight)
            for target, weight in self._connection.execute(
                "SELECT target, weight FROM edges WHERE source = ? ORDER BY position",
                (vertex,),
            )
        ]


# ----------------------------------------------------------------------
# append-only CRC log (shared by the delta log and the service event WAL)
# ----------------------------------------------------------------------
class CrcLog:
    """Append-only JSONL log with per-record CRC and fsync.

    Line format: ``<crc32 hex> <payload json>\\n`` where the CRC covers the
    payload bytes.  ``append_payload`` flushes and ``fsync``s before
    returning, so an acknowledged record survives a crash;
    ``read_payloads`` returns the longest valid record prefix and the number
    of discarded (torn or corrupt) tail lines.  Subclasses add record typing
    and ordering rules on top (:class:`DeltaLog` here,
    :class:`repro.service.events.EventLog` for the service WAL).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._file = open(path, "ab")

    def close(self) -> None:
        self._file.close()

    def append_payload(self, payload: dict) -> None:
        """Durably append one JSON payload (flush + fsync).

        On an ``OSError`` (disk full) the partially written line is truncated
        away before re-raising: a torn line in the *middle* of the log would
        otherwise hide every later record from the longest-valid-prefix read,
        turning one transient failure into permanent data loss.
        """
        data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        line = b"%08x %s\n" % (zlib.crc32(data) & 0xFFFFFFFF, data)
        offset = self._file.tell()
        try:
            self._file.write(line)
            self._file.flush()
            os.fsync(self._file.fileno())
        except OSError:
            try:
                self._file.truncate(offset)
                self._file.flush()
            except OSError:
                pass
            raise

    def read_payloads(self) -> Tuple[List[dict], int]:
        """``(payloads, discarded)``: the valid prefix and dropped tail lines.

        Reading stops at the first torn or corrupt line; every line from
        there on counts as discarded (a torn record can only be the tail of a
        crashed write, so nothing after it was acknowledged).
        """
        payloads: List[dict] = []
        discarded = 0
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return payloads, discarded
        lines = raw.split(b"\n")
        # a trailing newline leaves one empty chunk; it is not a torn record
        if lines and lines[-1] == b"":
            lines.pop()
        valid = True
        for line in lines:
            if valid:
                payload = self._parse_payload(line)
                if payload is not None:
                    payloads.append(payload)
                    continue
                valid = False
            discarded += 1
        return payloads, discarded

    @staticmethod
    def _parse_payload(line: bytes) -> Optional[dict]:
        if b" " not in line:
            return None
        prefix, payload = line.split(b" ", 1)
        try:
            expected = int(prefix, 16)
        except ValueError:
            return None
        if zlib.crc32(payload) & 0xFFFFFFFF != expected:
            return None
        try:
            body = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return body if isinstance(body, dict) else None

    def truncate(self) -> None:
        """Drop every record, durably (file rewrite + directory fsync)."""
        self._file.close()
        self._file = open(self.path, "wb")
        self._file.flush()
        os.fsync(self._file.fileno())
        fsync_dir(os.path.dirname(os.path.abspath(self.path)))


# ----------------------------------------------------------------------
# append-only delta log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LogRecord:
    """One durable delta: sequence number, post-delta graph version, payload.

    ``meta`` is an optional application-level annotation carried verbatim
    (the streaming service stamps the WAL event range each delta covers, so
    recovery knows the exact replay floor without a separate applied-marker
    file).
    """

    seq: int
    graph_version: int
    delta: dict
    meta: Optional[dict] = None

    def to_delta(self) -> GraphDelta:
        """Materialise the payload back into a :class:`GraphDelta`."""
        return GraphDelta.from_payload(self.delta)


class DeltaLog(CrcLog):
    """Append-only JSONL delta log: :class:`CrcLog` + contiguous sequencing.

    ``read`` additionally stops at the first out-of-order sequence number, so
    the returned records always form one contiguous run.
    """

    def append(self, record: LogRecord) -> None:
        """Durably append one record (flush + fsync)."""
        payload = {
            "seq": record.seq,
            "graph_version": record.graph_version,
            "delta": record.delta,
        }
        if record.meta is not None:
            payload["meta"] = record.meta
        self.append_payload(payload)

    def read(self) -> Tuple[List[LogRecord], int]:
        """``(records, discarded)``: the valid prefix and dropped tail lines."""
        payloads, discarded = self.read_payloads()
        records: List[LogRecord] = []
        for index, body in enumerate(payloads):
            record = self._parse_record(body)
            if record is None or (records and record.seq != records[-1].seq + 1):
                discarded += len(payloads) - index
                break
            records.append(record)
        return records, discarded

    @staticmethod
    def _parse_record(body: dict) -> Optional[LogRecord]:
        try:
            meta = body.get("meta")
            return LogRecord(
                seq=int(body["seq"]),
                graph_version=int(body["graph_version"]),
                delta=body["delta"],
                meta=dict(meta) if meta is not None else None,
            )
        except (KeyError, TypeError, ValueError):
            return None
