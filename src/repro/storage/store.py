"""Engine-level durable store: snapshots, compaction and warm restore.

One :class:`EngineStore` binds an engine to a store directory::

    graph.db            SQLite baseline of the live edge list (+ identity meta)
    delta.log           append-only fsync'd log of deltas past the baseline
    snapshot-<seq>.npz  array snapshot of the derived state at sequence <seq>
    snapshot-<seq>.json sidecar: snapshot meta + sha256 of the ``.npz``
    MANIFEST.json       atomic pointer to the live snapshot (+ sidecar sha256)
    snapshot-<seq>.arrays/  extracted members for ``mmap_mode="r"`` loading

``save`` writes in crash-safe order — snapshot arrays, sidecar, manifest (each
``os.replace``'d into place), then the SQLite baseline in one transaction,
then the log truncation — so a kill at *any* point leaves either the old or
the new snapshot fully restorable: log records at or below the baseline's
``last_seq`` are skipped during recovery, and a snapshot ahead of the baseline
carries its own adjacency arrays, so it never needs the pre-baseline rows.
The warm path decodes the graph from those arrays (no per-edge Python work);
the SQLite rows back the demote path and stay independently queryable.

:func:`restore_engine` is the single recovery entry point.  The warm path
rebuilds the engine from the snapshot and replays the log suffix through the
live ``apply_delta`` — bitwise-identical to the uninterrupted run.  Any
defect — missing/corrupt (checksum) snapshot, format or engine-identity
mismatch, log/graph version disagreement — raises :class:`SnapshotUnusable`
internally and *demotes* to cold batch initialization on the fully replayed
graph, surfacing a warning and recording the path in the returned
:class:`RestoreReport`.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import warnings
import zipfile
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.engine.algorithms import make_algorithm
from repro.engine.metrics import ExecutionMetrics
from repro.graph.delta import GraphDelta
from repro.layph.layered_graph import LayphConfig
from repro.storage import compact_every_default, storage_enabled
from repro.storage.codecs import (
    decode_factor_csr,
    decode_float_map,
    decode_graph_arrays,
    encode_factor_csr,
    encode_float_map,
    encode_graph_arrays,
    pack,
    unpack,
)
from repro.storage.edge_store import (
    STORE_FORMAT,
    DeltaLog,
    DurableEdgeStore,
    LogRecord,
    StoreError,
    fsync_dir,
)


class SnapshotUnusable(StoreError):
    """A snapshot exists but cannot be trusted; recovery demotes to cold."""


@dataclass(frozen=True)
class RestoreReport:
    """Which recovery path ran, and how much work each half did."""

    #: ``True``: snapshot restored + log suffix replayed (bitwise-identical);
    #: ``False``: demoted to cold batch initialization on the replayed graph
    warm: bool
    #: ``"snapshot"`` for the warm path, else why the snapshot was unusable
    reason: str
    #: sequence number the SQLite baseline was compacted at
    baseline_seq: int
    #: sequence number of the restored snapshot (``None`` when demoted)
    snapshot_seq: Optional[int]
    #: log records replayed through the live ``apply_delta`` after the
    #: snapshot (warm) — the demote path instead folds every record into the
    #: graph before the cold run, which this field does not count
    replayed_deltas: int
    #: torn/corrupt/stale log lines dropped by the longest-valid-prefix read
    discarded_log_records: int


# ----------------------------------------------------------------------
# restore re-entrancy guard (suppresses autosave during a demote's cold init)
# ----------------------------------------------------------------------
_RESTORE_DEPTH = 0


def restoring_active() -> bool:
    """Whether a restore is running (``_maybe_autosave`` checks this)."""
    return _RESTORE_DEPTH > 0


@contextlib.contextmanager
def _restoring():
    global _RESTORE_DEPTH
    _RESTORE_DEPTH += 1
    try:
        yield
    finally:
        _RESTORE_DEPTH -= 1


# ----------------------------------------------------------------------
# small helpers
# ----------------------------------------------------------------------
def _sha256_bytes(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_atomic(path: str, data: bytes) -> None:
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(os.path.abspath(path)))


def _metrics_state(metrics: Optional[ExecutionMetrics]) -> Optional[dict]:
    if metrics is None:
        return None
    return {
        "edge_activations": metrics.edge_activations,
        "vertex_updates": metrics.vertex_updates,
        "iterations": metrics.iterations,
        "activations_per_round": list(metrics.activations_per_round),
        "active_vertices_per_round": list(metrics.active_vertices_per_round),
    }


def _metrics_from_state(state: Optional[dict]) -> Optional[ExecutionMetrics]:
    if state is None:
        return None
    return ExecutionMetrics(
        edge_activations=int(state["edge_activations"]),
        vertex_updates=int(state["vertex_updates"]),
        iterations=int(state["iterations"]),
        activations_per_round=[int(count) for count in state["activations_per_round"]],
        active_vertices_per_round=[
            int(count) for count in state["active_vertices_per_round"]
        ],
    )


def _engine_identity(target) -> dict:
    """Everything needed to rebuild the engine object from scratch."""
    spec = target.spec
    identity = {
        "engine": target.name,
        "algorithm": spec.name,
        "source": getattr(spec, "source", None),
        "damping": getattr(spec, "damping", None),
        "backend": target.backend,
        "layph_config": None,
    }
    config = getattr(target, "config", None)
    if isinstance(config, LayphConfig):
        identity["layph_config"] = asdict(config)
    return identity


def _spec_from_identity(identity: dict):
    kwargs = {}
    if identity.get("source") is not None:
        kwargs["source"] = int(identity["source"])
    if identity.get("damping") is not None:
        kwargs["damping"] = float(identity["damping"])
    return make_algorithm(identity["algorithm"], **kwargs)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class EngineStore:
    """A store directory bound to (at most) one live engine.

    Attach happens through ``engine.save(directory)`` or
    :func:`restore_engine`; once attached, every ``apply_delta`` appends one
    fsync'd log record and ``compact_every`` records trigger a full
    :meth:`save` (snapshot + baseline fold + log truncation).
    """

    GRAPH_DB = "graph.db"
    DELTA_LOG = "delta.log"
    MANIFEST = "MANIFEST.json"

    def __init__(self, directory: str, compact_every: Optional[int] = None) -> None:
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.edge_store = DurableEdgeStore(os.path.join(directory, self.GRAPH_DB))
        self.log = DeltaLog(os.path.join(directory, self.DELTA_LOG))
        self.compact_every = (
            compact_every if compact_every is not None else compact_every_default()
        )
        #: sequence number the next logged delta receives
        self.next_seq = 1
        #: log records appended since the last :meth:`save`
        self.records_since_compact = 0
        #: statistics (exposed for tests and the fallback-path assertions)
        self.saves = 0
        self.compactions = 0
        self.logged = 0
        #: small application key/value annotations persisted with every
        #: baseline fold (the streaming service keeps its applied-event
        #: watermark here); values must be strings
        self.app_meta: Dict[str, str] = {}

    def close(self) -> None:
        self.edge_store.close()
        self.log.close()

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_delta(
        self, delta: GraphDelta, graph_version: int, meta: Optional[dict] = None
    ) -> None:
        """Durably append one applied delta (fsync before returning)."""
        self.log.append(
            LogRecord(
                seq=self.next_seq,
                graph_version=graph_version,
                delta=delta.to_payload(),
                meta=meta,
            )
        )
        self.next_seq += 1
        self.records_since_compact += 1
        self.logged += 1

    def compaction_due(self) -> bool:
        """Whether enough records accumulated to fold the log into SQLite."""
        return self.records_since_compact >= self.compact_every

    # ------------------------------------------------------------------
    # save / compaction
    # ------------------------------------------------------------------
    def _snapshot_paths(self, seq: int) -> Tuple[str, str, str]:
        base = os.path.join(self.directory, f"snapshot-{seq}")
        return base + ".npz", base + ".json", base + ".arrays"

    def save(self, engine) -> None:
        """Full save: snapshot, manifest, SQLite baseline, log truncation.

        The write order is what makes every kill point recoverable; see the
        module docstring.
        """
        target = engine._storage_target()
        graph = target.graph
        if graph is None:
            raise RuntimeError("initialize() must be called before save()")
        last_seq = self.next_seq - 1
        identity = _engine_identity(target)

        meta: dict = {
            "format": STORE_FORMAT,
            "seq": last_seq,
            "graph_version": graph.version,
            "identity": identity,
            "initial_metrics": _metrics_state(target.initial_metrics),
        }
        arrays: Dict[str, np.ndarray] = {}
        # the snapshot carries its own adjacency arrays: a warm restore then
        # decodes the graph at C speed instead of re-walking the SQLite rows
        # (which remain the durable baseline the demote path rebuilds from)
        graph_meta, graph_arrays = encode_graph_arrays(graph)
        meta["graph"] = graph_meta
        arrays.update(pack("graph", graph_arrays))
        arrays.update(pack("states", encode_float_map(target.states)))
        captured_csr: List[str] = []
        for orientation in ("out", "in"):
            csr = target.csr_cache.peek_csr(orientation, target.spec, graph)
            if csr is not None:
                captured_csr.append(orientation)
                arrays.update(pack(f"csr_{orientation}", encode_factor_csr(csr)))
        meta["csr"] = captured_csr
        extras_meta, extras_arrays = target._snapshot_extras()
        meta["extras"] = extras_meta
        arrays.update(pack("extras", extras_arrays))

        npz_path, sidecar_path, _arrays_dir = self._snapshot_paths(last_seq)
        tmp = npz_path + ".tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, npz_path)
        fsync_dir(self.directory)

        sidecar = {"meta": meta, "npz_sha256": _sha256_file(npz_path)}
        sidecar_bytes = json.dumps(sidecar, sort_keys=True).encode("utf-8")
        _write_atomic(sidecar_path, sidecar_bytes)
        manifest = {
            "format": STORE_FORMAT,
            "snapshot_seq": last_seq,
            "sidecar_sha256": _sha256_bytes(sidecar_bytes),
        }
        _write_atomic(
            os.path.join(self.directory, self.MANIFEST),
            json.dumps(manifest, sort_keys=True).encode("utf-8"),
        )

        extra_meta = {"identity": json.dumps(identity)}
        for key, value in self.app_meta.items():
            extra_meta[f"app:{key}"] = str(value)
        self.edge_store.write_baseline(graph, last_seq, extra_meta=extra_meta)
        self.log.truncate()
        if self.records_since_compact:
            self.compactions += 1
        self.records_since_compact = 0
        self.saves += 1
        self._drop_stale_snapshots(keep_seq=last_seq)

    def _drop_stale_snapshots(self, keep_seq: int) -> None:
        keep = {f"snapshot-{keep_seq}.npz", f"snapshot-{keep_seq}.json"}
        for entry in os.listdir(self.directory):
            if not entry.startswith("snapshot-") or entry in keep:
                continue
            path = os.path.join(self.directory, entry)
            if entry.endswith(".arrays"):
                shutil.rmtree(path, ignore_errors=True)
            elif entry.endswith((".npz", ".json", ".tmp")):
                with contextlib.suppress(OSError):
                    os.remove(path)

    # ------------------------------------------------------------------
    # snapshot loading
    # ------------------------------------------------------------------
    def load_snapshot(
        self, mmap: bool = False
    ) -> Tuple[int, dict, Mapping[str, np.ndarray]]:
        """``(seq, meta, arrays)`` of the manifest's snapshot, fully verified.

        Raises:
            SnapshotUnusable: manifest/sidecar/npz missing, checksums broken,
                or the snapshot format is not this build's.
        """
        manifest_path = os.path.join(self.directory, self.MANIFEST)
        try:
            with open(manifest_path, "rb") as handle:
                manifest = json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            raise SnapshotUnusable("no snapshot manifest") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise SnapshotUnusable(f"unreadable manifest: {error}") from None
        if manifest.get("format") != STORE_FORMAT:
            raise SnapshotUnusable(
                f"manifest format {manifest.get('format')} != {STORE_FORMAT}"
            )
        seq = int(manifest["snapshot_seq"])
        npz_path, sidecar_path, arrays_dir = self._snapshot_paths(seq)
        try:
            with open(sidecar_path, "rb") as handle:
                sidecar_bytes = handle.read()
        except FileNotFoundError:
            raise SnapshotUnusable(f"missing snapshot sidecar for seq {seq}") from None
        if _sha256_bytes(sidecar_bytes) != manifest.get("sidecar_sha256"):
            raise SnapshotUnusable("snapshot sidecar checksum mismatch")
        sidecar = json.loads(sidecar_bytes.decode("utf-8"))
        if not os.path.exists(npz_path):
            raise SnapshotUnusable(f"missing snapshot arrays for seq {seq}")
        if _sha256_file(npz_path) != sidecar.get("npz_sha256"):
            raise SnapshotUnusable("snapshot array checksum mismatch")
        meta = sidecar["meta"]
        if meta.get("format") != STORE_FORMAT:
            raise SnapshotUnusable(
                f"snapshot format {meta.get('format')} != {STORE_FORMAT}"
            )
        if mmap:
            # ``np.load(npz, mmap_mode=...)`` cannot map zip members; extract
            # them once and map each ``.npy`` read-only.
            arrays: Dict[str, np.ndarray] = {}
            with zipfile.ZipFile(npz_path) as archive:
                members = archive.namelist()
                archive.extractall(arrays_dir)
            for member in members:
                key = member[: -len(".npy")] if member.endswith(".npy") else member
                arrays[key] = np.load(
                    os.path.join(arrays_dir, member), mmap_mode="r"
                )
            return seq, meta, arrays
        with np.load(npz_path) as archive:
            return seq, meta, {key: archive[key] for key in archive.files}


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
def _usable_log_suffix(
    records: List[LogRecord], baseline_seq: int
) -> Tuple[List[LogRecord], int]:
    """Records past the baseline forming a contiguous run, + extra discards."""
    suffix = [record for record in records if record.seq > baseline_seq]
    usable: List[LogRecord] = []
    expected = baseline_seq + 1
    for record in suffix:
        if record.seq != expected:
            break
        usable.append(record)
        expected += 1
    return usable, len(suffix) - len(usable)


def _advance_graph(graph, records: List[LogRecord]):
    """Replay ``records`` onto ``graph`` exactly as the live engine did.

    ``GraphDelta.apply`` copies then mutates, which is the same path
    ``IncrementalEngine._update_graph`` takes — so the mutation counter
    evolves identically, and each record's stored post-delta version is a
    checksum of the replay.
    """
    for record in records:
        graph = record.to_delta().apply(graph)
        if graph.version != record.graph_version:
            raise SnapshotUnusable(
                f"log record {record.seq}: replayed graph version "
                f"{graph.version} != recorded {record.graph_version}"
            )
    return graph


def restore_engine(
    directory: str,
    mmap: bool = False,
    compact_every: Optional[int] = None,
):
    """Rebuild an engine from a store directory.

    Returns ``(engine, report)``.  The warm path resumes bitwise-identical to
    the uninterrupted run; every snapshot defect demotes to cold batch
    initialization on the fully replayed graph (with a warning).  The engine
    comes back attached to the store, so subsequent deltas keep logging.

    Raises:
        StoreError: the directory holds no usable baseline at all, or the
            ``REPRO_STORE=0`` escape hatch is set.
    """
    from repro.bench.harness import build_engine

    if not storage_enabled():
        raise StoreError("durable storage is disabled (REPRO_STORE=0)")
    store = EngineStore(directory, compact_every=compact_every)
    try:
        baseline_meta = store.edge_store.baseline_meta()
        identity_raw = baseline_meta.get("identity")
        if identity_raw is None:
            raise StoreError(f"{directory} holds no engine identity")
    except StoreError:
        store.close()
        raise
    baseline_seq = int(baseline_meta.get("last_seq", "0"))
    store.app_meta = {
        key[len("app:") :]: value
        for key, value in baseline_meta.items()
        if key.startswith("app:")
    }
    identity = json.loads(identity_raw)
    spec = _spec_from_identity(identity)
    layph_config = (
        LayphConfig(**identity["layph_config"])
        if identity.get("layph_config") is not None
        else None
    )

    records, discarded = store.log.read()
    usable, extra_discards = _usable_log_suffix(records, baseline_seq)
    discarded += extra_discards
    if discarded or len(records) != len(usable):
        # Drop torn tails and stale pre-baseline records *now*: the log is
        # opened in append mode, and appending after a torn line would put
        # valid records beyond the longest-valid-prefix horizon forever.
        store.log.truncate()
        for record in usable:
            store.log.append(record)

    last_seq = baseline_seq + len(usable)

    with _restoring():
        try:
            snapshot_seq, meta, arrays = store.load_snapshot(mmap=mmap)
            if meta.get("identity") != identity:
                raise SnapshotUnusable("snapshot belongs to a different engine")
            if snapshot_seq != int(meta.get("seq", -1)):
                raise SnapshotUnusable("snapshot sequence disagrees with sidecar")
            if not baseline_seq <= snapshot_seq <= last_seq:
                raise SnapshotUnusable(
                    f"snapshot seq {snapshot_seq} outside recoverable range "
                    f"[{baseline_seq}, {last_seq}]"
                )
            graph_meta = meta.get("graph")
            if graph_meta is None:
                raise SnapshotUnusable("snapshot holds no graph arrays")
            # the snapshot's own adjacency arrays are the warm path's graph;
            # the SQLite rows back only the demote path (this keeps the warm
            # restore free of the row-by-row edge-list rebuild)
            graph_at = decode_graph_arrays(graph_meta, unpack("graph", arrays))
            if graph_at.version != int(meta["graph_version"]):
                raise SnapshotUnusable(
                    f"snapshot graph version {meta['graph_version']} != "
                    f"decoded {graph_at.version}"
                )
        except SnapshotUnusable as error:
            warnings.warn(
                f"durable store {directory}: {error}; demoting to cold "
                "batch initialization",
                RuntimeWarning,
                stacklevel=2,
            )
            baseline_graph, _baseline_seq = store.edge_store.load_baseline()
            graph_full = _advance_graph(baseline_graph, usable)
            engine = build_engine(
                identity["engine"],
                spec,
                layph_config,
                backend=identity.get("backend"),
            )
            engine.initialize(graph_full)
            store.next_seq = last_seq + 1
            store.save(engine)
            target = engine._storage_target()
            target._store = store
            report = RestoreReport(
                warm=False,
                reason=str(error),
                baseline_seq=baseline_seq,
                snapshot_seq=None,
                replayed_deltas=0,
                discarded_log_records=discarded,
            )
            engine.last_restore_report = report
            return engine, report

        engine = build_engine(
            identity["engine"],
            spec,
            layph_config,
            backend=identity.get("backend"),
        )
        target = engine._storage_target()
        target.graph = graph_at
        target.states = decode_float_map(unpack("states", arrays))
        target.initial_metrics = _metrics_from_state(meta.get("initial_metrics"))
        for orientation in meta.get("csr", ()):
            csr = decode_factor_csr(
                unpack(f"csr_{orientation}", arrays), copy=not mmap
            )
            target.csr_cache.install_csr(orientation, target.spec, graph_at, csr)
        target._restore_extras(meta.get("extras", {}), unpack("extras", arrays))
        engine._post_restore_sync()

        # Replay the log suffix through the *live* path (the store is not
        # attached yet, so replayed deltas cannot double-log).
        replay = usable[snapshot_seq - baseline_seq :]
        for record in replay:
            engine.apply_delta(record.to_delta())

    store.next_seq = last_seq + 1
    store.records_since_compact = len(usable)
    target._store = store
    report = RestoreReport(
        warm=True,
        reason="snapshot",
        baseline_seq=baseline_seq,
        snapshot_seq=snapshot_seq,
        replayed_deltas=len(replay),
        discarded_log_records=discarded,
    )
    engine.last_restore_report = report
    return engine, report
