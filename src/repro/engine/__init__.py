"""Vertex-centric delta-accumulative iterative engine (Equations (1)–(3)).

The engine executes algorithms expressed as a message-generation function
``F`` and an aggregation function ``G`` in the asynchronous accumulative model
of the paper (Section II-A).  Every engine in :mod:`repro.incremental` and
:mod:`repro.layph` builds on the propagation core defined here so that edge
activation counts are directly comparable across systems.
"""

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.algorithms import BFS, PHP, PageRank, SSSP
from repro.engine.backends import available_backends, register_backend, resolve_backend
from repro.engine.metrics import ExecutionMetrics, PhaseTimer
from repro.engine.propagation import (
    FactorAdjacency,
    NonConvergenceError,
    SilencedAdjacency,
    propagate,
)
from repro.engine.runner import BatchResult, run_batch
from repro.engine.convergence import states_close, states_equal

__all__ = [
    "AlgorithmSpec",
    "SSSP",
    "BFS",
    "PageRank",
    "PHP",
    "ExecutionMetrics",
    "PhaseTimer",
    "FactorAdjacency",
    "SilencedAdjacency",
    "NonConvergenceError",
    "propagate",
    "BatchResult",
    "run_batch",
    "states_equal",
    "states_close",
    "available_backends",
    "register_backend",
    "resolve_backend",
]
