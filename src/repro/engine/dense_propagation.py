"""Vectorized (numpy) implementation of the delta-accumulative loop.

This is the ``"numpy"`` propagation backend: it compiles an
:class:`AlgorithmSpec` plus a factor adjacency into CSR factor arrays
(:class:`repro.graph.csr.FactorCSR`) and runs the frontier rounds with numpy
— ``np.minimum.at`` for selective min-aggregation (SSSP/BFS style) and
``np.add.at`` for accumulative sums (PageRank/PHP style).

The backend is a drop-in replacement for the pure-Python loop in
:mod:`repro.engine.propagation`: it mutates the same ``states``/``pending``
dicts and records the same :class:`ExecutionMetrics`.  It is engineered for
*exact* metric compatibility — identical converged states, round counts,
per-round edge activations and vertex-update counts — so that the paper's
Figure 1/6 comparisons are backend-independent:

* active vertices are processed in ascending vertex-id order, matching the
  ``sorted(...)`` snapshot of the Python loop;
* CSR rows preserve the adjacency's edge order, and ``np.add.at`` /
  ``np.minimum.at`` apply element-wise *in order* (unbuffered), so even the
  non-associative float sums of accumulative algorithms reproduce the Python
  loop's results bit for bit;
* "pending dict" membership is tracked explicitly (a boolean array) so the
  subtle termination behaviour of the dict-based loop — insignificant
  leftovers keep the loop alive for one final, unrecorded clearing round —
  is replayed exactly.

The backend handles the standard algebra of the delta-accumulative model
(``G`` = ``min`` with identity ``+inf`` or ``+`` with identity ``0``;
``combine`` = ``+`` with unit ``0`` or ``×`` with unit ``1``, tolerance-based
significance).  Specs opt in by declaring
:attr:`AlgorithmSpec.dense_algebra`; the declaration is sanity-checked with
point probes at call time — including through the delegation wrappers
Layph's shortcut computations use — and undeclared or mismatching specs
silently fall back to the Python loop.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics
from repro.graph.csr import FactorCSR, FactorCSRView, expand_edges
from repro.parallel.slabs import PropagationSlab, run_propagation

AGGREGATE_MIN = "min"
AGGREGATE_SUM = "sum"
COMBINE_ADD = "add"
COMBINE_MUL = "mul"


def _uses_default_significance(spec) -> bool:
    """Whether messages are filtered by the base-class significance rule.

    The vectorized significance masks implement exactly
    :meth:`AlgorithmSpec.is_significant`; point probes cannot distinguish a
    custom rule that happens to agree on the sampled values, so the bound
    method itself is checked.  Delegating wrappers (Layph's shortcut specs)
    resolve to the wrapped spec's bound method, which passes as long as the
    underlying algorithm keeps the default.
    """
    return getattr(spec.is_significant, "__func__", None) is AlgorithmSpec.is_significant


def classify_spec(spec) -> Optional[Tuple[str, str]]:
    """The declared-and-verified algebra of ``spec``: ``(aggregate, combine)``.

    The vectorized backend only runs specs that *opt in* by declaring
    :attr:`AlgorithmSpec.dense_algebra` — point probes alone cannot prove
    that an operator is unclamped/unsaturated everywhere, so an undeclared
    spec always falls back to the Python loop rather than risking silently
    different states.  The declaration is then sanity-checked: the probes
    below catch declarations that contradict the actual operators or an
    overridden :meth:`AlgorithmSpec.is_significant` (delegating wrappers,
    like Layph's shortcut specs, resolve both the declaration and the bound
    methods to the wrapped algorithm).  Returns ``None`` — Python fallback —
    on any mismatch.
    """
    try:
        declared = getattr(spec, "dense_algebra", None)
        if declared is None:
            return None
        aggregate_kind, combine_kind = declared
        if not _uses_default_significance(spec):
            return None
        selective = bool(spec.is_selective())
        identity = spec.aggregate_identity()
        unit = spec.combine_identity()
        if aggregate_kind == AGGREGATE_MIN:
            if not selective or identity != math.inf:
                return None
            if spec.aggregate(1.5, 2.5) != 1.5 or spec.aggregate(2.5, 1.5) != 1.5:
                return None
            if spec.is_significant(identity) or not spec.is_significant(1.5):
                return None
        elif aggregate_kind == AGGREGATE_SUM:
            if selective or identity != 0.0:
                return None
            if spec.aggregate(1.5, 2.25) != 3.75:
                return None
            tolerance = float(spec.tolerance())
            if not tolerance > 0.0:
                return None
            if spec.is_significant(0.0) or spec.is_significant(tolerance / 2.0):
                return None
            if not spec.is_significant(2.0 * tolerance):
                return None
            if not spec.is_significant(-2.0 * tolerance):
                return None
        else:
            return None
        if combine_kind == COMBINE_ADD:
            if unit != 0.0 or spec.combine(1.5, 2.25) != 3.75:
                return None
        elif combine_kind == COMBINE_MUL:
            if unit != 1.0 or spec.combine(1.5, 2.0) != 3.0:
                return None
        else:
            return None
    except Exception:
        return None
    return aggregate_kind, combine_kind


def _compile_adjacency(
    adjacency,
) -> Optional[Callable[[Iterable[int]], Tuple[FactorCSR, bool]]]:
    """A compiler closure for ``adjacency``, or ``None`` if not materialisable.

    The closure returns ``(csr, stable)`` — ``stable`` marks snapshots served
    by a cache (identity-stable while the graph version is unchanged), which
    the persistent arena layer may key resident shared-memory blocks on.
    Fresh universe-specific compiles are per-call objects and are not
    arena-cacheable.

    Three shapes compile to CSR:

    * a cache-backed adjacency (anything exposing ``compiled_csr``, i.e.
      :class:`repro.graph.csr_cache.CachedGraphAdjacency`) hands back its
      engine's cached snapshot — no row enumeration at all;
    * :class:`FactorAdjacency` and :class:`SilencedAdjacency` compile through
      the :func:`repro.graph.csr_cache.master_factor_csr` memo: one master
      compile per adjacency version, with silenced variants derived as cheap
      :class:`FactorCSRView` row masks (so repeated ``propagate`` calls over
      the same adjacency — or Layph's B per-boundary shortcut computations —
      no longer recompile per call);
    * arbitrary callables (the general ``AdjacencyFn`` contract) stay on the
      Python loop.
    """
    from repro.engine.propagation import FactorAdjacency, SilencedAdjacency
    from repro.graph.csr_cache import master_factor_csr

    compiled_csr = getattr(adjacency, "compiled_csr", None)
    if compiled_csr is not None:

        def compile_cached(universe: Iterable[int]) -> Tuple[FactorCSR, bool]:
            csr = compiled_csr(universe)
            if csr is not None:
                # With the CSR cache disabled, ``compiled_csr`` compiles a
                # fresh per-call snapshot — not identity-stable, so not a
                # valid arena key.
                cache = getattr(adjacency, "cache", None)
                return csr, bool(getattr(cache, "enabled", True))
            # Universe reaches outside the cached index space: compile a
            # universe-specific snapshot from the adjacency view.
            return FactorCSR.from_factor_adjacency(adjacency, universe=universe), False

        return compile_cached

    if isinstance(adjacency, SilencedAdjacency):
        base, silenced = adjacency.base, adjacency.silenced
    elif isinstance(adjacency, FactorAdjacency):
        base, silenced = adjacency, None
    else:
        return None

    def compile_with_universe(universe: Iterable[int]) -> Tuple[FactorCSR, bool]:
        master = master_factor_csr(base, universe)
        if master is None:
            # Caching disabled: the original fresh, universe-exact compile.
            return (
                FactorCSR.from_factor_adjacency(base, universe=universe, silenced=silenced),
                False,
            )
        if not silenced:
            return master, True
        return FactorCSRView(master, silenced), True

    return compile_with_universe


#: flat slot indices of concatenated CSR rows, in exact scatter order
#: (shared with the cache patching and the vectorized Layph/BSP kernels)
_expand_edges = expand_edges


def build_propagation_slab(
    spec,
    adjacency,
    states: Dict[int, float],
    pending: Dict[int, float],
    allowed_targets: Optional[Callable[[int], bool]] = None,
) -> Optional[Tuple[PropagationSlab, list]]:
    """Compile one propagate call into an array slab; ``None`` = fall back.

    Returns ``(slab, vertex_ids)`` — the slab carries only arrays and
    scalars (:class:`repro.parallel.slabs.PropagationSlab`), so it can be
    exported to shared memory and consumed by worker processes.
    Incompatibility — an algebra the array kernels cannot express, an
    adjacency that cannot be materialised, or NaN-carrying inputs — is
    detected here, before anything is mutated.
    """
    kinds = classify_spec(spec)
    if kinds is None:
        return None
    compiler = _compile_adjacency(adjacency)
    if compiler is None:
        return None
    aggregate_kind, combine_kind = kinds
    selective = aggregate_kind == AGGREGATE_MIN

    csr, stable = compiler(set(states) | set(pending))
    ids = csr.vertex_ids
    index = csr.index
    n = csr.num_vertices
    identity = math.inf if selective else 0.0
    tolerance = 0.0 if selective else float(spec.tolerance())

    state_arr = np.fromiter(
        (
            states[vertex] if vertex in states else float(spec.initial_state(vertex))
            for vertex in ids
        ),
        dtype=np.float64,
        count=n,
    )

    pending_arr = np.full(n, identity, dtype=np.float64)
    in_dict = np.zeros(n, dtype=bool)
    for vertex, message in pending.items():
        position = index[vertex]
        pending_arr[position] = message
        in_dict[position] = True

    # NaN inputs make `min`/comparison semantics diverge between numpy and
    # the Python loop (np.minimum propagates NaN, Python's branchy min keeps
    # the non-NaN operand), so the metric-identical contract only covers
    # NaN-free inputs — hand anything else to the Python loop untouched.
    if (
        np.isnan(csr.factors).any()
        or np.isnan(state_arr).any()
        or np.isnan(pending_arr).any()
    ):
        return None

    absorb = np.fromiter((bool(spec.absorbs(vertex)) for vertex in ids), dtype=bool, count=n)
    allowed = (
        np.fromiter((bool(allowed_targets(vertex)) for vertex in ids), dtype=bool, count=n)
        if allowed_targets is not None
        else None
    )

    slab = PropagationSlab(
        offsets=csr.offsets,
        targets=csr.targets,
        factors=csr.factors,
        out_degree=csr.out_degree,
        state=state_arr,
        pending=pending_arr,
        in_dict=in_dict,
        state_touched=np.zeros(n, dtype=bool),
        absorb=absorb,
        allowed=allowed,
        selective=selective,
        combine_add=combine_kind == COMBINE_ADD,
        identity=identity,
        tolerance=tolerance,
        block_token=csr if stable else None,
    )
    return slab, ids


def write_back_slab(
    slab: PropagationSlab,
    ids: list,
    states: Dict[int, float],
    pending: Dict[int, float],
) -> None:
    """Split a finished slab back into the ``states``/``pending`` dicts."""
    for position in np.nonzero(slab.state_touched)[0]:
        states[ids[position]] = float(slab.state[position])
    pending.clear()
    for position in np.nonzero(slab.in_dict)[0]:
        pending[ids[position]] = float(slab.pending[position])


def record_propagation_rounds(
    metrics: ExecutionMetrics, rounds: list
) -> None:
    """Replay a slab run's per-round triples into the metrics object."""
    for total, active, updates in rounds:
        metrics.vertex_updates += updates
        metrics.record_round(total, active)


def propagate_numpy(
    spec,
    adjacency,
    states: Dict[int, float],
    pending: Dict[int, float],
    metrics: Optional[ExecutionMetrics] = None,
    max_rounds: Optional[int] = None,
    allowed_targets: Optional[Callable[[int], bool]] = None,
) -> Optional[Dict[int, float]]:
    """Run the delta-accumulative loop vectorized; ``None`` = cannot handle.

    Mirrors :func:`repro.engine.propagation.propagate` exactly (see module
    docstring).  This is now a thin adapter: :func:`build_propagation_slab`
    compiles the call into an array slab and the loop itself runs in the
    engine-object-free kernel :func:`repro.parallel.slabs.run_propagation`.
    A ``None`` return leaves ``states``/``pending``/``metrics`` untouched
    for the Python fallback.
    """
    if not pending:
        # Nothing to propagate; skip the O(V+E) CSR compile the way the
        # Python loop's ``while pending`` exits immediately.
        return states
    built = build_propagation_slab(spec, adjacency, states, pending, allowed_targets)
    if built is None:
        return None
    slab, ids = built
    if metrics is None:
        metrics = ExecutionMetrics()
    rounds = run_propagation(slab, max_rounds)
    record_propagation_rounds(metrics, rounds)
    write_back_slab(slab, ids, states, pending)
    return states
