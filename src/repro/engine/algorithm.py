"""Algorithm specification for the delta-accumulative model.

An iterative graph algorithm ``A = (F, G, X0, M0)`` is expressed through two
operations (Equation (1) of the paper):

* message generation ``F(m_u, w_{u,v})`` applied along every out-edge, and
* message aggregation ``G`` applied at every destination vertex.

This reproduction factors ``F`` as ``F(m, w) = combine(m, edge_factor(u, v))``
where ``combine`` is the *path-composition* operator (``+`` for SSSP/BFS,
``×`` for PageRank/PHP) and ``edge_factor`` is a per-edge constant (the edge
weight for SSSP, ``d / N_u`` for PageRank, ...).  Factoring ``F`` this way is
what lets Layph compute shortcut weights generically: a shortcut's weight is
the aggregation of the path compositions of edge factors along every path
between its endpoints (Definition 3 / Equation (6)), and a message crosses a
shortcut with the very same ``combine`` operator.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Optional, Tuple

from repro.graph.graph import Graph

VertexStates = Dict[int, float]
Messages = Dict[int, float]


class AlgorithmSpec(abc.ABC):
    """Specification of one vertex-centric algorithm.

    Subclasses provide the aggregation operator, the path-composition
    operator, per-edge factors and initial states/messages.  Two families are
    distinguished:

    * **selective** algorithms (``is_selective() == True``) aggregate with a
      selection operator such as ``min``; their propagation is monotone and
      their incremental engines rely on dependency tracking (KickStarter,
      RisGraph, Ingress memoization-path);
    * **accumulative** algorithms aggregate with an invertible operator such
      as ``+``; their incremental engines rely on cancellation /
      compensation messages (GraphBolt, DZiG, Ingress memoization-free).
    """

    #: human-readable name used by the benchmark harness
    name: str = "algorithm"

    #: whether :meth:`edge_factor` depends on the edge alone (its weight, a
    #: constant) rather than on the source's whole out-adjacency.  SSSP/BFS
    #: qualify; degree-normalized factors (PageRank's ``d/N_u``, PHP) do
    #: not.  The incremental CSR cache uses this to patch only the rows of
    #: the updated edges' endpoints instead of re-enumerating every
    #: neighbor row of every touched source.
    edge_local_factors: bool = False

    #: declared operator algebra for the vectorized propagation backend: an
    #: ``(aggregate, combine)`` pair — ``("min", "add")`` for SSSP/BFS-style
    #: selective specs, ``("sum", "mul")`` for PageRank/PHP-style accumulative
    #: specs — or ``None`` (the default), which keeps the spec on the Python
    #: loop.  Only declare it when ``aggregate``/``combine``/``is_significant``
    #: have exactly those standard semantics (no clamping, saturation or
    #: custom significance): the numpy backend runs plain array ``min``/``+``/
    #: ``×`` in their place, so a declaration on a spec that deviates produces
    #: silently wrong states.  Subclasses of the built-in algorithms that
    #: change operator semantics must reset it to ``None``.
    dense_algebra: Optional[Tuple[str, str]] = None

    # ------------------------------------------------------------------
    # aggregation G
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def aggregate(self, left: float, right: float) -> float:
        """The aggregation operator ``G`` (e.g. ``min`` or ``+``)."""

    @abc.abstractmethod
    def aggregate_identity(self) -> float:
        """Identity element of ``G`` (``+inf`` for min, ``0`` for sum)."""

    # ------------------------------------------------------------------
    # path composition (the core of F)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def combine(self, message: float, factor: float) -> float:
        """Compose a message with an edge (or shortcut) factor."""

    @abc.abstractmethod
    def combine_identity(self) -> float:
        """Identity element of ``combine`` — the paper's *unit message*.

        Injecting this value at an entry vertex and propagating it through a
        subgraph yields the shortcut weights (Example 2).
        """

    @abc.abstractmethod
    def edge_factor(self, graph: Graph, source: int, target: int) -> float:
        """Per-edge factor of edge ``source -> target`` in ``graph``."""

    # ------------------------------------------------------------------
    # initial values
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def initial_state(self, vertex: int) -> float:
        """Initial vertex state ``x^0_v``."""

    @abc.abstractmethod
    def initial_message(self, vertex: int) -> float:
        """Initial (root) message ``m^0_v``."""

    # ------------------------------------------------------------------
    # algorithm family and convergence
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def is_selective(self) -> bool:
        """``True`` for min/max style algorithms, ``False`` for sum style."""

    def tolerance(self) -> float:
        """Messages with magnitude below this are dropped (accumulative)."""
        return 1e-6

    def is_significant(self, message: float) -> bool:
        """Whether a pending message is worth propagating."""
        identity = self.aggregate_identity()
        if self.is_selective():
            return message != identity
        return abs(message - identity) > self.tolerance()

    def absorbs(self, vertex: int) -> bool:
        """Whether ``vertex`` absorbs incoming messages (drops them).

        PHP uses this for its source: a random walk that returns to the
        source is penalized, i.e. its mass is not re-propagated.
        """
        return False

    # ------------------------------------------------------------------
    # inverses (accumulative algorithms only)
    # ------------------------------------------------------------------
    def is_invertible(self) -> bool:
        """Whether ``G`` has an inverse (needed for cancellation messages)."""
        return not self.is_selective()

    def negate(self, message: float) -> float:
        """Inverse of ``message`` under ``G`` (only if invertible)."""
        if not self.is_invertible():
            raise NotImplementedError(
                f"{self.name} has no aggregation inverse; use dependency "
                "tracking instead of cancellation messages"
            )
        return -message

    # ------------------------------------------------------------------
    # derived helpers shared by all engines
    # ------------------------------------------------------------------
    def contribution(self, graph: Graph, state_source: float, source: int, target: int) -> float:
        """Total converged message mass sent along one edge.

        For accumulative algorithms the mass a vertex has propagated at
        convergence equals its state change (its state minus its initial
        state, which is the aggregate identity), so the per-edge contribution
        is ``combine(x_u, edge_factor(u, v))``.  For selective algorithms the
        contribution is the candidate value ``combine(x_u, w_{u,v})`` offered
        to the target.  Both reduce to the same expression.
        """
        return self.combine(state_source, self.edge_factor(graph, source, target))

    def initial_states(self, graph: Graph) -> VertexStates:
        """Initial state for every vertex of ``graph``."""
        return {vertex: self.initial_state(vertex) for vertex in graph.vertices()}

    def initial_messages(self, graph: Graph) -> Messages:
        """Initial root message for every vertex of ``graph``."""
        return {vertex: self.initial_message(vertex) for vertex in graph.vertices()}

    def aggregate_all(self, values: Iterable[float]) -> float:
        """Fold ``values`` with ``G`` starting from the identity."""
        result = self.aggregate_identity()
        for value in values:
            result = self.aggregate(result, value)
        return result

    def states_match(
        self, left: VertexStates, right: VertexStates, tolerance: Optional[float] = None
    ) -> bool:
        """Whether two state maps agree (within a family-appropriate tolerance).

        Selective results are path compositions and agree up to floating-point
        re-association (different engines group the same sums differently);
        accumulative results agree up to the convergence tolerance.
        """
        if set(left) != set(right):
            return False
        if self.is_selective():
            limit = 1e-9 if tolerance is None else tolerance
            for vertex in left:
                a, b = left[vertex], right[vertex]
                if a == b:
                    continue
                if abs(a - b) > limit * max(1.0, abs(a), abs(b)):
                    return False
            return True
        limit = self.tolerance() * 10 if tolerance is None else tolerance
        return all(abs(left[v] - right[v]) <= limit for v in left)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"
