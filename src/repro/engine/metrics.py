"""Instrumentation: edge activations, phase timers and cost accounting.

The paper's primary explanatory metric is the *number of edge activations* —
the number of applications of the message-generation function ``F``
(Figure 1, Figure 6).  Runtime in a pure-Python reproduction is dominated by
interpreter overhead, so the harness reports activations as the main metric
and a deterministic cost-model runtime (see :mod:`repro.parallel`) as the
secondary one, in addition to wall-clock time.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class ExecutionMetrics:
    """Counters accumulated while an engine runs."""

    edge_activations: int = 0
    vertex_updates: int = 0
    iterations: int = 0
    #: per-superstep counts of edge activations, used by the parallel cost model
    activations_per_round: List[int] = field(default_factory=list)
    #: per-superstep counts of distinct active vertices
    active_vertices_per_round: List[int] = field(default_factory=list)

    def record_round(self, activations: int, active_vertices: int) -> None:
        """Record one superstep."""
        self.iterations += 1
        self.edge_activations += activations
        self.activations_per_round.append(activations)
        self.active_vertices_per_round.append(active_vertices)

    def merge(self, other: "ExecutionMetrics") -> None:
        """Fold another metrics object into this one."""
        self.edge_activations += other.edge_activations
        self.vertex_updates += other.vertex_updates
        self.iterations += other.iterations
        self.activations_per_round.extend(other.activations_per_round)
        self.active_vertices_per_round.extend(other.active_vertices_per_round)

    def copy(self) -> "ExecutionMetrics":
        """Return an independent copy."""
        clone = ExecutionMetrics(
            edge_activations=self.edge_activations,
            vertex_updates=self.vertex_updates,
            iterations=self.iterations,
        )
        clone.activations_per_round = list(self.activations_per_round)
        clone.active_vertices_per_round = list(self.active_vertices_per_round)
        return clone


class PhaseTimer:
    """Wall-clock timer keyed by phase name (Figure 7 runtime breakdown)."""

    def __init__(self) -> None:
        self._elapsed: Dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Context manager that accumulates time under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self._elapsed[name] = self._elapsed.get(name, 0.0) + (
                time.perf_counter() - start
            )

    def add(self, name: str, seconds: float) -> None:
        """Add an externally measured duration."""
        self._elapsed[name] = self._elapsed.get(name, 0.0) + seconds

    def elapsed(self, name: str) -> float:
        """Seconds accumulated under ``name`` (0.0 if never timed)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        """Total seconds across all phases."""
        return sum(self._elapsed.values())

    def as_dict(self) -> Dict[str, float]:
        """Snapshot of all phase durations."""
        return dict(self._elapsed)

    def proportions(self) -> Dict[str, float]:
        """Per-phase share of the total time (empty dict if nothing timed)."""
        total = self.total()
        if total == 0.0:
            return {}
        return {name: value / total for name, value in self._elapsed.items()}
