"""Helpers for comparing converged vertex-state maps."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple


def states_equal(left: Dict[int, float], right: Dict[int, float]) -> bool:
    """Exact equality of two state maps (same keys, same values)."""
    return set(left) == set(right) and all(left[v] == right[v] for v in left)


def states_close(
    left: Dict[int, float],
    right: Dict[int, float],
    tolerance: float = 1e-5,
) -> bool:
    """Whether two state maps agree within ``tolerance`` on every vertex.

    Infinite values must match exactly.
    """
    if set(left) != set(right):
        return False
    for vertex in left:
        a, b = left[vertex], right[vertex]
        if math.isinf(a) or math.isinf(b):
            if a != b:
                return False
        elif abs(a - b) > tolerance:
            return False
    return True


def max_divergence(
    left: Dict[int, float], right: Dict[int, float]
) -> Tuple[Optional[int], float]:
    """Vertex with the largest absolute state difference and that difference.

    Vertices where exactly one side is infinite count as infinitely
    divergent.  Returns ``(None, 0.0)`` for empty or disjoint maps.
    """
    worst_vertex: Optional[int] = None
    worst_gap = 0.0
    for vertex in set(left) & set(right):
        a, b = left[vertex], right[vertex]
        if math.isinf(a) and math.isinf(b):
            continue
        gap = abs(a - b) if not (math.isinf(a) or math.isinf(b)) else math.inf
        if gap > worst_gap:
            worst_gap = gap
            worst_vertex = vertex
    return worst_vertex, worst_gap


def finite_vertices(states: Dict[int, float]) -> Iterable[int]:
    """Vertices whose state is finite (reached vertices for SSSP/BFS)."""
    return (vertex for vertex, value in states.items() if not math.isinf(value))
