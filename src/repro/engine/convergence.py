"""Helpers for comparing converged vertex-state maps."""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional, Tuple


def states_equal(left: Dict[int, float], right: Dict[int, float]) -> bool:
    """Exact equality of two state maps (same keys, same values).

    NaN is treated as a *value*, not through IEEE comparison semantics: two
    NaN entries are equal (identically corrupted maps compare equal), a NaN
    on one side only is a mismatch.  Without this, ``NaN != NaN`` made every
    corrupted map silently unequal even to itself.
    """
    if set(left) != set(right):
        return False
    for vertex in left:
        a, b = left[vertex], right[vertex]
        if a != b and not (math.isnan(a) and math.isnan(b)):
            return False
    return True


def states_close(
    left: Dict[int, float],
    right: Dict[int, float],
    tolerance: float = 1e-5,
) -> bool:
    """Whether two state maps agree within ``tolerance`` on every vertex.

    Infinite values must match exactly.  NaN entries must be NaN on both
    sides — a NaN against any number is *never* close (``abs(nan - x) >
    tolerance`` is False, so the naive check would wave corrupted states
    through).
    """
    if set(left) != set(right):
        return False
    for vertex in left:
        a, b = left[vertex], right[vertex]
        if math.isnan(a) or math.isnan(b):
            if not (math.isnan(a) and math.isnan(b)):
                return False
        elif math.isinf(a) or math.isinf(b):
            if a != b:
                return False
        elif abs(a - b) > tolerance:
            return False
    return True


def max_divergence(
    left: Dict[int, float], right: Dict[int, float]
) -> Tuple[Optional[int], float]:
    """Vertex with the largest absolute state difference and that difference.

    Infinite values must match exactly (``+inf`` against anything else,
    ``-inf`` included, is infinitely divergent), mirroring
    :func:`states_close`.  A NaN on exactly one side also counts as
    infinitely divergent (a NaN-vs-number gap is NaN under IEEE arithmetic,
    which every ``>`` comparison drops, so corrupted states used to look
    "divergent by 0.0"); vertices that are NaN on both sides count as
    agreeing.  Returns ``(None, 0.0)`` for empty or disjoint maps.
    """
    worst_vertex: Optional[int] = None
    worst_gap = 0.0
    for vertex in set(left) & set(right):
        a, b = left[vertex], right[vertex]
        if math.isnan(a) or math.isnan(b):
            if math.isnan(a) and math.isnan(b):
                continue
            gap = math.inf
        elif math.isinf(a) or math.isinf(b):
            if a == b:
                continue
            gap = math.inf
        else:
            gap = abs(a - b)
        if gap > worst_gap:
            worst_gap = gap
            worst_vertex = vertex
    return worst_vertex, worst_gap


def finite_vertices(states: Dict[int, float]) -> Iterable[int]:
    """Vertices whose state is finite (reached vertices for SSSP/BFS)."""
    return (vertex for vertex, value in states.items() if not math.isinf(value))
