"""Batch runner: run an algorithm on a whole graph from scratch.

This is the paper's ``A(G)`` — the batched iterative computation whose result
is then maintained incrementally.  It is also the *Restart* baseline and the
correctness oracle used by every test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.engine.algorithm import AlgorithmSpec
from repro.engine.metrics import ExecutionMetrics
from repro.engine.propagation import FactorAdjacency, propagate
from repro.graph.graph import Graph


@dataclass
class BatchResult:
    """Converged vertex states plus execution metrics."""

    states: Dict[int, float]
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)

    def state(self, vertex: int) -> float:
        """Converged state of one vertex."""
        return self.states[vertex]


def run_batch(
    spec: AlgorithmSpec,
    graph: Graph,
    metrics: Optional[ExecutionMetrics] = None,
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
    adjacency=None,
) -> BatchResult:
    """Run ``spec`` on ``graph`` to convergence from the initial values.

    Returns converged states for every vertex in the graph (unreached
    vertices keep their initial state, e.g. ``inf`` for SSSP).  ``backend``
    selects the propagation backend (see :mod:`repro.engine.backends`);
    ``adjacency`` optionally injects a pre-built factor adjacency of
    ``graph`` (engines pass their cache-backed view so the CSR compile is
    reused across calls) — it must be equivalent to
    ``FactorAdjacency.from_graph(spec, graph)``.
    """
    if metrics is None:
        metrics = ExecutionMetrics()
    if adjacency is None:
        adjacency = FactorAdjacency.from_graph(spec, graph)
    states = spec.initial_states(graph)
    pending = {
        vertex: message
        for vertex, message in spec.initial_messages(graph).items()
        if spec.is_significant(message)
    }
    propagate(spec, adjacency, states, pending, metrics, max_rounds=max_rounds, backend=backend)
    return BatchResult(states=states, metrics=metrics)
