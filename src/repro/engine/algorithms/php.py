"""Penalized hitting probability (PHP), the fourth workload of the paper.

PHP ranks vertices by the probability that a decayed random walk started at a
source vertex ``s`` reaches them *before returning to* ``s`` (returning walks
are penalized, i.e. killed).  In the accumulative model:

* ``F(m_u, w_{u,v}) = m_u · d · w_{u,v} / W_u`` where ``W_u`` is the total
  outgoing weight of ``u``;
* ``G = +``;
* ``x^0_s = 0`` with root message ``m^0_s = 1`` and ``m^0_v = 0`` elsewhere;
* messages arriving back at ``s`` are absorbed (the penalty).

Like PageRank it is accumulative and invertible, so the same
cancellation/compensation machinery applies; unlike PageRank it is rooted and
weight-sensitive, which is why the paper evaluates it separately.
"""

from __future__ import annotations

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph


class PHP(AlgorithmSpec):
    """Penalized hitting probability from ``source`` with decay ``d``."""

    name = "php"
    dense_algebra = ("sum", "mul")

    def __init__(
        self, source: int = 0, damping: float = 0.85, tolerance: float = 1e-6
    ) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.source = source
        self.damping = damping
        self._tolerance = tolerance

    # aggregation -------------------------------------------------------
    def aggregate(self, left: float, right: float) -> float:
        return left + right

    def aggregate_identity(self) -> float:
        return 0.0

    # path composition --------------------------------------------------
    def combine(self, message: float, factor: float) -> float:
        return message * factor

    def combine_identity(self) -> float:
        return 1.0

    def edge_factor(self, graph: Graph, source: int, target: int) -> float:
        total_weight = graph.total_out_weight(source)
        if total_weight == 0.0:
            return 0.0
        return self.damping * graph.edge_weight(source, target) / total_weight

    # initial values ----------------------------------------------------
    def initial_state(self, vertex: int) -> float:
        return 0.0

    def initial_message(self, vertex: int) -> float:
        return 1.0 if vertex == self.source else 0.0

    # family ------------------------------------------------------------
    def is_selective(self) -> bool:
        return False

    def tolerance(self) -> float:
        return self._tolerance

    def absorbs(self, vertex: int) -> bool:
        return vertex == self.source

    def __repr__(self) -> str:
        return f"PHP(source={self.source}, damping={self.damping})"
