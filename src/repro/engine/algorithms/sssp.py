"""Single-source shortest path in the accumulative model (Example 1a).

``F(m_u, w_{u,v}) = m_u + w_{u,v}``, ``G = min``; the state of a vertex is the
shortest known distance from the source.  The algorithm is *selective*: its
aggregation keeps only the best incoming value, so incremental maintenance
after deletions requires dependency tracking rather than cancellation
messages.
"""

from __future__ import annotations

import math

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph

INFINITY = math.inf


class SSSP(AlgorithmSpec):
    """Single-source shortest path from ``source``."""

    name = "sssp"
    dense_algebra = ("min", "add")
    edge_local_factors = True  # the factor is the edge's own weight

    def __init__(self, source: int = 0) -> None:
        self.source = source

    # aggregation -------------------------------------------------------
    def aggregate(self, left: float, right: float) -> float:
        return left if left <= right else right

    def aggregate_identity(self) -> float:
        return INFINITY

    # path composition --------------------------------------------------
    def combine(self, message: float, factor: float) -> float:
        return message + factor

    def combine_identity(self) -> float:
        return 0.0

    def edge_factor(self, graph: Graph, source: int, target: int) -> float:
        return graph.edge_weight(source, target)

    # initial values ----------------------------------------------------
    def initial_state(self, vertex: int) -> float:
        # Every vertex starts at the aggregate identity; the source's root
        # message (0) establishes its distance on the first superstep, which
        # keeps the delta-accumulative loop uniform ("a value only changes
        # when a strictly better message arrives").
        return INFINITY

    def initial_message(self, vertex: int) -> float:
        return 0.0 if vertex == self.source else INFINITY

    # family ------------------------------------------------------------
    def is_selective(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"SSSP(source={self.source})"
