"""Breadth-first search (hop distance) in the accumulative model.

Identical to SSSP except that every edge contributes one hop regardless of
its weight: ``F(m_u, w_{u,v}) = m_u + 1``, ``G = min``.
"""

from __future__ import annotations

import math

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph

INFINITY = math.inf


class BFS(AlgorithmSpec):
    """Hop distance from ``source``."""

    name = "bfs"
    dense_algebra = ("min", "add")
    edge_local_factors = True  # every edge contributes one constant hop

    def __init__(self, source: int = 0) -> None:
        self.source = source

    # aggregation -------------------------------------------------------
    def aggregate(self, left: float, right: float) -> float:
        return left if left <= right else right

    def aggregate_identity(self) -> float:
        return INFINITY

    # path composition --------------------------------------------------
    def combine(self, message: float, factor: float) -> float:
        return message + factor

    def combine_identity(self) -> float:
        return 0.0

    def edge_factor(self, graph: Graph, source: int, target: int) -> float:
        return 1.0

    # initial values ----------------------------------------------------
    def initial_state(self, vertex: int) -> float:
        # As for SSSP: start at the identity and let the source's root
        # message set hop 0 on the first superstep.
        return INFINITY

    def initial_message(self, vertex: int) -> float:
        return 0.0 if vertex == self.source else INFINITY

    # family ------------------------------------------------------------
    def is_selective(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"BFS(source={self.source})"
