"""Asynchronous accumulative PageRank (Example 1b).

``F(m_u, w_{u,v}) = m_u · d / N_u``, ``G = +``, ``x^0_v = 0``,
``m^0_v = 1 - d``.  The fixed point of this accumulative formulation is the
standard PageRank score with teleport mass ``1 - d`` (proved equivalent to
the power-method PageRank in the Maiter line of work the paper builds on).

The per-edge factor ``d / N_u`` depends on the out-degree of the *source*
vertex, so structural updates change the factor of every out-edge of the
touched vertices.  The revision-message machinery in
:mod:`repro.incremental.revision` accounts for that.
"""

from __future__ import annotations

from repro.engine.algorithm import AlgorithmSpec
from repro.graph.graph import Graph


class PageRank(AlgorithmSpec):
    """Accumulative PageRank with damping factor ``d``."""

    name = "pagerank"
    dense_algebra = ("sum", "mul")

    def __init__(self, damping: float = 0.85, tolerance: float = 1e-6) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.damping = damping
        self._tolerance = tolerance

    # aggregation -------------------------------------------------------
    def aggregate(self, left: float, right: float) -> float:
        return left + right

    def aggregate_identity(self) -> float:
        return 0.0

    # path composition --------------------------------------------------
    def combine(self, message: float, factor: float) -> float:
        return message * factor

    def combine_identity(self) -> float:
        return 1.0

    def edge_factor(self, graph: Graph, source: int, target: int) -> float:
        out_degree = graph.out_degree(source)
        if out_degree == 0:
            return 0.0
        return self.damping / out_degree

    # initial values ----------------------------------------------------
    def initial_state(self, vertex: int) -> float:
        return 0.0

    def initial_message(self, vertex: int) -> float:
        return 1.0 - self.damping

    # family ------------------------------------------------------------
    def is_selective(self) -> bool:
        return False

    def tolerance(self) -> float:
        return self._tolerance

    def __repr__(self) -> str:
        return f"PageRank(damping={self.damping})"
