"""The four graph workloads evaluated in the paper.

* :class:`SSSP` — single-source shortest path (selective, weighted).
* :class:`BFS` — breadth-first search / hop distance (selective, unweighted).
* :class:`PageRank` — asynchronous accumulative PageRank (accumulative).
* :class:`PHP` — penalized hitting probability (accumulative, rooted).
"""

from repro.engine.algorithms.sssp import SSSP
from repro.engine.algorithms.bfs import BFS
from repro.engine.algorithms.pagerank import PageRank
from repro.engine.algorithms.php import PHP

ALL_ALGORITHMS = ("sssp", "bfs", "pagerank", "php")

__all__ = ["SSSP", "BFS", "PageRank", "PHP", "ALL_ALGORITHMS", "make_algorithm"]


def make_algorithm(name: str, source: int = 0, damping: float = 0.85):
    """Factory used by the benchmark harness and the examples.

    Args:
        name: one of ``sssp``, ``bfs``, ``pagerank``, ``php``.
        source: source vertex for the rooted algorithms.
        damping: damping/decay factor for PageRank and PHP.
    """
    lowered = name.lower()
    if lowered == "sssp":
        return SSSP(source=source)
    if lowered == "bfs":
        return BFS(source=source)
    if lowered in ("pagerank", "pr"):
        return PageRank(damping=damping)
    if lowered == "php":
        return PHP(source=source, damping=damping)
    raise ValueError(f"unknown algorithm {name!r}; expected one of {ALL_ALGORITHMS}")
