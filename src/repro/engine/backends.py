"""Propagation backend registry.

The round-based delta-accumulative loop (:func:`repro.engine.propagation.
propagate`) has interchangeable implementations:

* ``"python"`` — the reference pure-Python loop over ``(target, factor)``
  lists.  Always available, handles every :class:`AlgorithmSpec`.
* ``"numpy"`` — the vectorized CSR engine in
  :mod:`repro.engine.dense_propagation`.  It compiles the factor adjacency
  into ``offsets``/``targets``/``factors`` arrays and runs each superstep
  with array operations (``np.minimum.at`` for selective min-aggregation,
  ``np.add.at`` for accumulative sums).  It produces identical converged
  states, round counts and edge-activation counts as the Python loop, and
  falls back to it transparently for algorithm specs whose algebra it cannot
  express.
* ``"numpy-parallel"`` — the numpy engine with the big supersteps
  row-partitioned across a persistent process pool
  (:mod:`repro.engine.parallel_propagation`), sized by ``REPRO_WORKERS``.
  Bitwise-identical to ``"numpy"``; falls back to it transparently when
  the worker count is 1, shared memory is unavailable, or the work unit is
  below the fan-out threshold.

Selection precedence, from strongest to weakest:

1. the explicit ``backend=`` argument of :func:`propagate` /
   :func:`repro.engine.runner.run_batch` / an engine constructor /
   ``LayphConfig.backend``;
2. the ``REPRO_BACKEND`` environment variable;
3. the default, ``"python"``.

The numpy backend additionally reuses compiled CSR snapshots across calls
through :mod:`repro.graph.csr_cache`: each incremental engine owns a
:class:`~repro.graph.csr_cache.CSRCache` that compiles the factor CSR once
and patches each :class:`~repro.graph.delta.GraphDelta` into the arrays in
place (amortized rebuild past a threshold), and repeated compiles of the
same ``FactorAdjacency`` are memoized on the adjacency object.  Set
``REPRO_CSR_CACHE=0`` (re-exported here as :data:`CSR_CACHE_ENV_VAR`) to
force fresh compiles everywhere — CI exercises both modes.

On top of the CSR cache, the BSP engines (GraphBolt/DZiG) keep their
memoized iterations in a dense matrix keyed by the cached in-edge CSR's
vertex index (:mod:`repro.incremental.memo`) whenever the numpy backend is
selected; ``REPRO_MEMO_DENSE=0`` (re-exported here as
:data:`MEMO_DENSE_ENV_VAR`) drops them back onto the metric-identical
dict-of-dicts reference store — CI exercises that mode too.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

from repro.graph.csr_cache import (  # noqa: F401 (re-export)
    CSR_CACHE_ENV_VAR,
    csr_cache_enabled,
    env_flag_enabled,
)

PYTHON_BACKEND = "python"
NUMPY_BACKEND = "numpy"
NUMPY_PARALLEL_BACKEND = "numpy-parallel"

#: the backends that run the vectorized (CSR/dense) code paths — the
#: parallel backend is the numpy backend plus a process pool, so every
#: ``backend == NUMPY_BACKEND`` gate in the engines accepts both
NUMPY_BACKENDS = (NUMPY_BACKEND, NUMPY_PARALLEL_BACKEND)

#: environment variable consulted when no explicit backend is requested
BACKEND_ENV_VAR = "REPRO_BACKEND"

#: worker count for the ``numpy-parallel`` backend (re-exported from
#: :mod:`repro.parallel.executor`; default 1 = serial fallback)
WORKERS_ENV_VAR = "REPRO_WORKERS"

#: environment variable that drops the BSP engines' dense memoized-iteration
#: store (:mod:`repro.incremental.memo`) back onto the dict reference
MEMO_DENSE_ENV_VAR = "REPRO_MEMO_DENSE"

#: environment variable that drops the selective engines' dense dependency
#: table (:mod:`repro.incremental.dep_table`) back onto the dict reference
DEP_DENSE_ENV_VAR = "REPRO_DEP_DENSE"


def memo_dense_enabled() -> bool:
    """Whether the dense memo store is enabled (the ``REPRO_MEMO_DENSE`` knob)."""
    return env_flag_enabled(MEMO_DENSE_ENV_VAR)


def dep_dense_enabled() -> bool:
    """Whether the dense dependency table is enabled (``REPRO_DEP_DENSE``)."""
    return env_flag_enabled(DEP_DENSE_ENV_VAR)


def _load_numpy_backend() -> Callable:
    from repro.engine.dense_propagation import propagate_numpy

    return propagate_numpy


def _load_numpy_parallel_backend() -> Callable:
    from repro.engine.parallel_propagation import propagate_parallel

    return propagate_parallel


def is_numpy_backend(name: Optional[str] = None) -> bool:
    """Whether the resolved backend runs the vectorized code paths.

    True for both ``"numpy"`` and ``"numpy-parallel"`` — the engines gate
    their CSR/dense fast paths on this, and the parallel backend shares all
    of them (adding process fan-out only where work units are independent).
    """
    return resolve_backend(name) in NUMPY_BACKENDS


#: backend name -> zero-argument loader returning the propagate implementation
#: (``None`` marks the built-in Python loop, which needs no indirection).
_REGISTRY: Dict[str, Optional[Callable[[], Callable]]] = {
    PYTHON_BACKEND: None,
    NUMPY_BACKEND: _load_numpy_backend,
    NUMPY_PARALLEL_BACKEND: _load_numpy_parallel_backend,
}

_LOADED: Dict[str, Callable] = {}


def register_backend(name: str, loader: Callable[[], Callable]) -> None:
    """Register (or replace) a propagation backend.

    ``loader`` is called lazily, once, and must return a callable with the
    signature of :func:`repro.engine.dense_propagation.propagate_numpy`:
    ``(spec, adjacency, states, pending, metrics, max_rounds,
    allowed_targets) -> Optional[states]`` — returning ``None`` signals
    "cannot handle this spec/adjacency, fall back to the Python loop".
    """
    lowered = name.strip().lower()
    if not lowered:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[lowered] = loader
    _LOADED.pop(lowered, None)


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to a registered backend name.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable and
    then to ``"python"``.

    Raises:
        ValueError: if the requested backend is not registered.
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR) or PYTHON_BACKEND
    lowered = str(name).strip().lower() or PYTHON_BACKEND
    if lowered not in _REGISTRY:
        raise ValueError(
            f"unknown propagation backend {name!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return lowered


def get_backend(name: str) -> Optional[Callable]:
    """The propagate implementation for a *resolved* backend name.

    Returns ``None`` for the built-in ``"python"`` loop (callers run it
    directly); loads and caches the implementation otherwise.
    """
    loader = _REGISTRY[name]
    if loader is None:
        return None
    if name not in _LOADED:
        _LOADED[name] = loader()
    return _LOADED[name]
